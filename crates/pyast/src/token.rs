//! Lexical tokens for the Python subset.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a lexical token.
///
/// Keyword variants (`Kw*`) and operator variants carry no payload; their
/// names mirror the Python surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TokenKind {
    /// Identifier or keyword-like name (keywords get their own kinds below).
    Name,
    /// Integer or floating point literal.
    Number,
    /// String literal (any quoting style, including f-strings).
    Str,
    /// Logical newline terminating a statement.
    Newline,
    /// Increase of indentation level.
    Indent,
    /// Decrease of indentation level.
    Dedent,
    /// End of file.
    EndOfFile,

    // Keywords.
    KwDef,
    KwClass,
    KwReturn,
    KwYield,
    KwIf,
    KwElif,
    KwElse,
    KwWhile,
    KwFor,
    KwIn,
    KwNotIn,
    KwIs,
    KwIsNot,
    KwNot,
    KwAnd,
    KwOr,
    KwPass,
    KwBreak,
    KwContinue,
    KwImport,
    KwFrom,
    KwAs,
    KwTry,
    KwExcept,
    KwFinally,
    KwRaise,
    KwWith,
    KwAssert,
    KwLambda,
    KwGlobal,
    KwNonlocal,
    KwDel,
    KwTrue,
    KwFalse,
    KwNone,
    KwAwait,
    KwAsync,

    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semicolon,
    Dot,
    Arrow,
    At,
    Assign,
    /// Augmented assignment such as `+=`; the exact operator is in the lexeme.
    AugAssign,
    /// The walrus operator `:=`.
    Walrus,
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    DoubleSlash,
    Percent,
    Pipe,
    Amp,
    Caret,
    Tilde,
    LShift,
    RShift,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    Ellipsis,
}

impl TokenKind {
    /// Whether this token kind is a keyword.
    pub fn is_keyword(self) -> bool {
        matches!(
            self,
            TokenKind::KwDef
                | TokenKind::KwClass
                | TokenKind::KwReturn
                | TokenKind::KwYield
                | TokenKind::KwIf
                | TokenKind::KwElif
                | TokenKind::KwElse
                | TokenKind::KwWhile
                | TokenKind::KwFor
                | TokenKind::KwIn
                | TokenKind::KwIs
                | TokenKind::KwNot
                | TokenKind::KwAnd
                | TokenKind::KwOr
                | TokenKind::KwPass
                | TokenKind::KwBreak
                | TokenKind::KwContinue
                | TokenKind::KwImport
                | TokenKind::KwFrom
                | TokenKind::KwAs
                | TokenKind::KwTry
                | TokenKind::KwExcept
                | TokenKind::KwFinally
                | TokenKind::KwRaise
                | TokenKind::KwWith
                | TokenKind::KwAssert
                | TokenKind::KwLambda
                | TokenKind::KwGlobal
                | TokenKind::KwNonlocal
                | TokenKind::KwDel
                | TokenKind::KwTrue
                | TokenKind::KwFalse
                | TokenKind::KwNone
                | TokenKind::KwAwait
                | TokenKind::KwAsync
        )
    }

    /// Whether the token is purely structural (no lexeme of interest).
    pub fn is_layout(self) -> bool {
        matches!(
            self,
            TokenKind::Newline | TokenKind::Indent | TokenKind::Dedent | TokenKind::EndOfFile
        )
    }

    /// Looks up the keyword kind for an identifier, if it is a keyword.
    pub fn keyword(name: &str) -> Option<TokenKind> {
        Some(match name {
            "def" => TokenKind::KwDef,
            "class" => TokenKind::KwClass,
            "return" => TokenKind::KwReturn,
            "yield" => TokenKind::KwYield,
            "if" => TokenKind::KwIf,
            "elif" => TokenKind::KwElif,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "in" => TokenKind::KwIn,
            "is" => TokenKind::KwIs,
            "not" => TokenKind::KwNot,
            "and" => TokenKind::KwAnd,
            "or" => TokenKind::KwOr,
            "pass" => TokenKind::KwPass,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "import" => TokenKind::KwImport,
            "from" => TokenKind::KwFrom,
            "as" => TokenKind::KwAs,
            "try" => TokenKind::KwTry,
            "except" => TokenKind::KwExcept,
            "finally" => TokenKind::KwFinally,
            "raise" => TokenKind::KwRaise,
            "with" => TokenKind::KwWith,
            "assert" => TokenKind::KwAssert,
            "lambda" => TokenKind::KwLambda,
            "global" => TokenKind::KwGlobal,
            "nonlocal" => TokenKind::KwNonlocal,
            "del" => TokenKind::KwDel,
            "True" => TokenKind::KwTrue,
            "False" => TokenKind::KwFalse,
            "None" => TokenKind::KwNone,
            "await" => TokenKind::KwAwait,
            "async" => TokenKind::KwAsync,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A lexical token: a kind, its source text and its span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// What sort of token this is.
    pub kind: TokenKind,
    /// The raw source text of the token (empty for layout tokens).
    pub lexeme: String,
    /// Where the token occurs in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, lexeme: impl Into<String>, span: Span) -> Self {
        Token {
            kind,
            lexeme: lexeme.into(),
            span,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lexeme.is_empty() {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "{}({})", self.kind, self.lexeme)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("def"), Some(TokenKind::KwDef));
        assert_eq!(TokenKind::keyword("definitely"), None);
        assert_eq!(TokenKind::keyword("None"), Some(TokenKind::KwNone));
    }

    #[test]
    fn keyword_predicate_matches_lookup() {
        for kw in ["def", "class", "lambda", "True", "await"] {
            assert!(TokenKind::keyword(kw).unwrap().is_keyword(), "{kw}");
        }
        assert!(!TokenKind::Name.is_keyword());
        assert!(!TokenKind::Plus.is_keyword());
    }

    #[test]
    fn layout_tokens() {
        assert!(TokenKind::Indent.is_layout());
        assert!(TokenKind::EndOfFile.is_layout());
        assert!(!TokenKind::Name.is_layout());
    }
}
