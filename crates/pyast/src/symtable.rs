//! Symbol table construction for parsed modules.
//!
//! The symbol table mirrors what CPython's `symtable` module provides and
//! what Typilus' graph construction needs: a unique *symbol* per binding
//! (variable, parameter, function return, function, class, import, class
//! member), the scope it lives in, its type annotation if one was written,
//! and the source-ordered list of *occurrences* — the name tokens bound to
//! it. Function returns get a dedicated symbol, as in the paper.

use crate::ast::*;
use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Identifier of a scope within one [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScopeId(pub u32);

/// Identifier of a symbol within one [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

/// What kind of program entity a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymbolKind {
    /// A local or module-level variable.
    Variable,
    /// A function parameter.
    Parameter,
    /// The return "slot" of a function; one per function definition.
    Return,
    /// A function or method name.
    Function,
    /// A class name.
    Class,
    /// A name introduced by an import.
    Import,
    /// An attribute of `self`, i.e. an instance member.
    ClassMember,
    /// A free name never bound in the file (builtin or external).
    Unresolved,
}

impl SymbolKind {
    /// Whether Typilus predicts a type for symbols of this kind
    /// (the paper predicts variables, parameters and function returns).
    pub fn is_annotatable(self) -> bool {
        matches!(
            self,
            SymbolKind::Variable
                | SymbolKind::Parameter
                | SymbolKind::Return
                | SymbolKind::ClassMember
        )
    }
}

/// The kind of a lexical scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScopeKind {
    /// The file/module scope.
    Module,
    /// A function or method body (also lambdas).
    Function,
    /// A class body.
    Class,
}

/// One lexical scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scope {
    /// This scope's id.
    pub id: ScopeId,
    /// Enclosing scope, `None` for the module scope.
    pub parent: Option<ScopeId>,
    /// Function/class/module kind.
    pub kind: ScopeKind,
    /// Name of the defining construct (function or class name; `<module>`).
    pub name: String,
}

/// A unique program symbol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Symbol {
    /// This symbol's id.
    pub id: SymbolId,
    /// Surface name (`x`, `self.weight`, function name for returns).
    pub name: String,
    /// Entity kind.
    pub kind: SymbolKind,
    /// Scope the symbol is defined in.
    pub scope: ScopeId,
    /// Annotation text (`List[int]`) if the source annotates this symbol.
    pub annotation: Option<String>,
    /// Span of the annotation expression, if any.
    pub annotation_span: Option<Span>,
    /// Span of the defining occurrence (first binding).
    pub def_span: Span,
    /// All name-token spans bound to this symbol, in source order.
    pub occurrences: Vec<Span>,
}

impl Symbol {
    /// Whether this symbol is a prediction target for Typilus.
    ///
    /// `self`/`cls` receivers are excluded, as is CPython convention
    /// (they are never annotated).
    pub fn is_annotatable(&self) -> bool {
        self.kind.is_annotatable() && self.name != "self" && self.name != "cls"
    }
}

/// The symbol table of one module.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    scopes: Vec<Scope>,
    symbols: Vec<Symbol>,
    /// Occurrence start offset -> symbol. Spans of name tokens are unique
    /// by their start offset within one file. Ordered so a serialized
    /// table is bit-stable.
    occurrence_index: BTreeMap<usize, SymbolId>,
    /// Function-def node id -> return symbol. Ordered for the same
    /// reason.
    return_symbols: BTreeMap<NodeId, SymbolId>,
}

impl SymbolTable {
    /// Builds the symbol table for a parsed module.
    pub fn build(module: &Module) -> SymbolTable {
        let mut builder = Builder::new();
        builder.run(module);
        builder.table
    }

    /// All scopes, module scope first.
    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }

    /// All symbols in creation order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Looks up a symbol by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// Resolves the symbol bound at a name-token span, if any.
    pub fn symbol_at(&self, span: Span) -> Option<&Symbol> {
        self.occurrence_index
            .get(&span.start.offset)
            .map(|&id| self.symbol(id))
    }

    /// The return symbol of a function definition statement.
    pub fn return_symbol(&self, func_node: NodeId) -> Option<&Symbol> {
        self.return_symbols
            .get(&func_node)
            .map(|&id| self.symbol(id))
    }

    /// Iterates over the symbols Typilus may predict types for.
    pub fn annotatable_symbols(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter().filter(|s| s.is_annotatable())
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table contains no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

struct Builder {
    table: SymbolTable,
    /// Per-scope name -> symbol map.
    bindings: Vec<HashMap<String, SymbolId>>,
    /// Names declared `global` in each scope.
    globals: Vec<Vec<String>>,
    /// Class scope owning `self` members, per active method chain.
    current_class: Vec<ScopeId>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            table: SymbolTable::default(),
            bindings: Vec::new(),
            globals: Vec::new(),
            current_class: Vec::new(),
        }
    }

    fn push_scope(&mut self, parent: Option<ScopeId>, kind: ScopeKind, name: &str) -> ScopeId {
        let id = ScopeId(self.table.scopes.len() as u32);
        self.table.scopes.push(Scope {
            id,
            parent,
            kind,
            name: name.to_string(),
        });
        self.bindings.push(HashMap::new());
        self.globals.push(Vec::new());
        id
    }

    fn new_symbol(
        &mut self,
        name: &str,
        kind: SymbolKind,
        scope: ScopeId,
        def_span: Span,
    ) -> SymbolId {
        let id = SymbolId(self.table.symbols.len() as u32);
        self.table.symbols.push(Symbol {
            id,
            name: name.to_string(),
            kind,
            scope,
            annotation: None,
            annotation_span: None,
            def_span,
            occurrences: Vec::new(),
        });
        id
    }

    fn bind(&mut self, scope: ScopeId, name: &str, kind: SymbolKind, span: Span) -> SymbolId {
        if let Some(&existing) = self.bindings[scope.0 as usize].get(name) {
            return existing;
        }
        let id = self.new_symbol(name, kind, scope, span);
        self.bindings[scope.0 as usize].insert(name.to_string(), id);
        id
    }

    fn record_occurrence(&mut self, id: SymbolId, span: Span) {
        let sym = &mut self.table.symbols[id.0 as usize];
        // Occurrences arrive roughly in source order; keep the list sorted.
        match sym
            .occurrences
            .binary_search_by_key(&span.start.offset, |s| s.start.offset)
        {
            Ok(_) => {} // same token seen twice: ignore
            Err(pos) => sym.occurrences.insert(pos, span),
        }
        self.table.occurrence_index.insert(span.start.offset, id);
    }

    fn resolve(&self, scope: ScopeId, name: &str) -> Option<SymbolId> {
        let mut cur = Some(scope);
        let mut first = true;
        while let Some(sid) = cur {
            let s = &self.table.scopes[sid.0 as usize];
            // Python name resolution skips class scopes for nested
            // functions; only the scope itself sees class-level names.
            let visible = first || s.kind != ScopeKind::Class;
            if visible {
                if let Some(&sym) = self.bindings[sid.0 as usize].get(name) {
                    return Some(sym);
                }
            }
            cur = s.parent;
            first = false;
        }
        None
    }

    fn run(&mut self, module: &Module) {
        let scope = self.push_scope(None, ScopeKind::Module, "<module>");
        self.collect_bindings(scope, &module.body);
        for stmt in &module.body {
            self.visit_stmt(scope, stmt);
        }
    }

    /// Pass 1 for one scope: create symbols for every name the scope binds.
    fn collect_bindings(&mut self, scope: ScopeId, body: &[Stmt]) {
        for stmt in body {
            self.collect_stmt(scope, stmt);
        }
    }

    fn collect_stmt(&mut self, scope: ScopeId, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::FunctionDef(f) => {
                self.bind(scope, &f.name, SymbolKind::Function, f.name_span);
            }
            StmtKind::ClassDef(c) => {
                self.bind(scope, &c.name, SymbolKind::Class, c.name_span);
            }
            StmtKind::Assign { targets, .. } => {
                for t in targets {
                    self.collect_target(scope, t);
                }
            }
            StmtKind::AugAssign { target, .. } => self.collect_target(scope, target),
            StmtKind::AnnAssign {
                target, annotation, ..
            } => {
                if let Some(name) = target.as_name() {
                    let id = self.bind(scope, name, SymbolKind::Variable, target.meta.span);
                    let sym = &mut self.table.symbols[id.0 as usize];
                    if sym.annotation.is_none() {
                        sym.annotation = annotation.annotation_text();
                        sym.annotation_span = Some(annotation.meta.span);
                    }
                } else {
                    self.collect_target(scope, target);
                }
            }
            StmtKind::For {
                target,
                body,
                orelse,
                ..
            } => {
                self.collect_target(scope, target);
                self.collect_bindings(scope, body);
                self.collect_bindings(scope, orelse);
            }
            StmtKind::While { body, orelse, .. } | StmtKind::If { body, orelse, .. } => {
                self.collect_bindings(scope, body);
                self.collect_bindings(scope, orelse);
            }
            StmtKind::With { items, body } => {
                for item in items {
                    if let Some(t) = &item.target {
                        self.collect_target(scope, t);
                    }
                }
                self.collect_bindings(scope, body);
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                self.collect_bindings(scope, body);
                for h in handlers {
                    if let (Some(name), Some(span)) = (&h.name, h.name_span) {
                        self.bind(scope, name, SymbolKind::Variable, span);
                    }
                    self.collect_bindings(scope, &h.body);
                }
                self.collect_bindings(scope, orelse);
                self.collect_bindings(scope, finalbody);
            }
            StmtKind::Import(aliases) | StmtKind::ImportFrom { names: aliases, .. } => {
                for a in aliases {
                    if a.name == "*" {
                        continue;
                    }
                    let bound = a
                        .asname
                        .clone()
                        .unwrap_or_else(|| a.name.split('.').next().unwrap_or(&a.name).to_string());
                    self.bind(scope, &bound, SymbolKind::Import, a.bind_span);
                }
            }
            StmtKind::Global(names) => {
                // Bind eagerly so later assignments in pass 1 reuse the
                // module-level symbol instead of creating a shadow local.
                for n in names {
                    self.globals[scope.0 as usize].push(n.clone());
                    let module_scope = ScopeId(0);
                    let id = self.bind(module_scope, n, SymbolKind::Variable, stmt.meta.span);
                    self.bindings[scope.0 as usize].insert(n.clone(), id);
                }
            }
            _ => {}
        }
    }

    fn collect_target(&mut self, scope: ScopeId, target: &Expr) {
        match &target.kind {
            ExprKind::Name(n) => {
                self.bind(scope, n, SymbolKind::Variable, target.meta.span);
            }
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                for e in items {
                    self.collect_target(scope, e);
                }
            }
            ExprKind::Starred(inner) => self.collect_target(scope, inner),
            ExprKind::Attribute { value, attr, attr_span }
                // `self.x = ...` binds a class member.
                if value.as_name() == Some("self") => {
                    if let Some(class_scope) = self.current_class.last().copied() {
                        self.bind(
                            class_scope,
                            &format!("self.{attr}"),
                            SymbolKind::ClassMember,
                            *attr_span,
                        );
                    }
                }
            _ => {}
        }
    }

    /// Pass 2: resolve uses, attach occurrences, recurse into nested scopes.
    fn visit_stmt(&mut self, scope: ScopeId, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::FunctionDef(f) => {
                // The function name occurrence in the enclosing scope.
                if let Some(id) = self.resolve(scope, &f.name) {
                    self.record_occurrence(id, f.name_span);
                }
                for d in &f.decorators {
                    self.visit_expr(scope, d);
                }
                // Annotations and defaults evaluate in the enclosing scope.
                for p in &f.params {
                    if let Some(a) = &p.annotation {
                        self.visit_expr(scope, a);
                    }
                    if let Some(d) = &p.default {
                        self.visit_expr(scope, d);
                    }
                }
                if let Some(r) = &f.returns {
                    self.visit_expr(scope, r);
                }
                // New function scope.
                let fscope = self.push_scope(Some(scope), ScopeKind::Function, &f.name);
                for p in &f.params {
                    let id = self.bind(fscope, &p.name, SymbolKind::Parameter, p.name_span);
                    self.record_occurrence(id, p.name_span);
                    let sym = &mut self.table.symbols[id.0 as usize];
                    if sym.annotation.is_none() {
                        sym.annotation = p.annotation.as_ref().and_then(|a| a.annotation_text());
                        sym.annotation_span = p.annotation.as_ref().map(|a| a.meta.span);
                    }
                }
                // Dedicated return symbol, anchored at the function name.
                let ret = self.new_symbol(&f.name, SymbolKind::Return, fscope, f.name_span);
                self.table.symbols[ret.0 as usize].annotation =
                    f.returns.as_ref().and_then(|r| r.annotation_text());
                self.table.symbols[ret.0 as usize].annotation_span =
                    f.returns.as_ref().map(|r| r.meta.span);
                self.table.return_symbols.insert(stmt.meta.id, ret);
                self.collect_bindings(fscope, &f.body);
                for s in &f.body {
                    self.visit_stmt(fscope, s);
                }
            }
            StmtKind::ClassDef(c) => {
                if let Some(id) = self.resolve(scope, &c.name) {
                    self.record_occurrence(id, c.name_span);
                }
                for d in &c.decorators {
                    self.visit_expr(scope, d);
                }
                for b in &c.bases {
                    self.visit_expr(scope, b);
                }
                for k in &c.keywords {
                    self.visit_expr(scope, &k.value);
                }
                let cscope = self.push_scope(Some(scope), ScopeKind::Class, &c.name);
                self.current_class.push(cscope);
                // Pre-collect `self.x` member bindings from all methods so
                // member reads in any method resolve.
                self.collect_members(cscope, &c.body);
                self.collect_bindings(cscope, &c.body);
                for s in &c.body {
                    self.visit_stmt(cscope, s);
                }
                self.current_class.pop();
            }
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    self.visit_expr(scope, e);
                }
            }
            StmtKind::Assign { targets, value } => {
                self.visit_expr(scope, value);
                for t in targets {
                    self.visit_expr(scope, t);
                }
            }
            StmtKind::AugAssign { target, value, .. } => {
                self.visit_expr(scope, value);
                self.visit_expr(scope, target);
            }
            StmtKind::AnnAssign {
                target,
                annotation,
                value,
            } => {
                if let Some(e) = value {
                    self.visit_expr(scope, e);
                }
                self.visit_expr(scope, annotation);
                self.visit_expr(scope, target);
                // Annotate `self.x: T` members.
                if let ExprKind::Attribute {
                    value: recv, attr, ..
                } = &target.kind
                {
                    if recv.as_name() == Some("self") {
                        if let Some(class_scope) = self.current_class.last().copied() {
                            if let Some(id) = self.resolve(class_scope, &format!("self.{attr}")) {
                                let sym = &mut self.table.symbols[id.0 as usize];
                                if sym.annotation.is_none() {
                                    sym.annotation = annotation.annotation_text();
                                    sym.annotation_span = Some(annotation.meta.span);
                                }
                            }
                        }
                    }
                }
            }
            StmtKind::For {
                target,
                iter,
                body,
                orelse,
                ..
            } => {
                self.visit_expr(scope, iter);
                self.visit_expr(scope, target);
                for s in body.iter().chain(orelse) {
                    self.visit_stmt(scope, s);
                }
            }
            StmtKind::While { test, body, orelse } | StmtKind::If { test, body, orelse } => {
                self.visit_expr(scope, test);
                for s in body.iter().chain(orelse) {
                    self.visit_stmt(scope, s);
                }
            }
            StmtKind::With { items, body } => {
                for item in items {
                    self.visit_expr(scope, &item.context);
                    if let Some(t) = &item.target {
                        self.visit_expr(scope, t);
                    }
                }
                for s in body {
                    self.visit_stmt(scope, s);
                }
            }
            StmtKind::Raise { exc, cause } => {
                for e in [exc, cause].into_iter().flatten() {
                    self.visit_expr(scope, e);
                }
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                for s in body {
                    self.visit_stmt(scope, s);
                }
                for h in handlers {
                    if let Some(e) = &h.exc_type {
                        self.visit_expr(scope, e);
                    }
                    if let (Some(name), Some(span)) = (&h.name, h.name_span) {
                        if let Some(id) = self.resolve(scope, name) {
                            self.record_occurrence(id, span);
                        }
                    }
                    for s in &h.body {
                        self.visit_stmt(scope, s);
                    }
                }
                for s in orelse.iter().chain(finalbody) {
                    self.visit_stmt(scope, s);
                }
            }
            StmtKind::Assert { test, msg } => {
                self.visit_expr(scope, test);
                if let Some(m) = msg {
                    self.visit_expr(scope, m);
                }
            }
            StmtKind::Import(aliases) | StmtKind::ImportFrom { names: aliases, .. } => {
                for a in aliases {
                    if a.name == "*" {
                        continue;
                    }
                    let bound = a
                        .asname
                        .clone()
                        .unwrap_or_else(|| a.name.split('.').next().unwrap_or(&a.name).to_string());
                    if let Some(id) = self.resolve(scope, &bound) {
                        self.record_occurrence(id, a.bind_span);
                    }
                }
            }
            StmtKind::Expr(e) => self.visit_expr(scope, e),
            StmtKind::Delete(targets) => {
                for t in targets {
                    self.visit_expr(scope, t);
                }
            }
            StmtKind::Global(names) => {
                // Rebind the listed names to module-scope symbols.
                for n in names {
                    let module_scope = ScopeId(0);
                    let id = self.bind(module_scope, n, SymbolKind::Variable, stmt.meta.span);
                    self.bindings[scope.0 as usize].insert(n.clone(), id);
                }
            }
            StmtKind::Nonlocal(names) => {
                for n in names {
                    if let Some(parent) = self.table.scopes[scope.0 as usize].parent {
                        if let Some(id) = self.resolve(parent, n) {
                            self.bindings[scope.0 as usize].insert(n.clone(), id);
                        }
                    }
                }
            }
            StmtKind::Pass | StmtKind::Break | StmtKind::Continue => {}
        }
    }

    /// Scans method bodies of a class for `self.x` bindings (pass 1b).
    fn collect_members(&mut self, class_scope: ScopeId, body: &[Stmt]) {
        struct MemberScan<'b> {
            builder: &'b mut Builder,
            class_scope: ScopeId,
        }
        impl crate::visit::Visitor for MemberScan<'_> {
            fn visit_stmt(&mut self, stmt: &Stmt) {
                let targets: Vec<&Expr> = match &stmt.kind {
                    StmtKind::Assign { targets, .. } => targets.iter().collect(),
                    StmtKind::AnnAssign { target, .. } | StmtKind::AugAssign { target, .. } => {
                        vec![target]
                    }
                    _ => return,
                };
                for t in targets {
                    if let ExprKind::Attribute {
                        value,
                        attr,
                        attr_span,
                    } = &t.kind
                    {
                        if value.as_name() == Some("self") {
                            self.builder.bind(
                                self.class_scope,
                                &format!("self.{attr}"),
                                SymbolKind::ClassMember,
                                *attr_span,
                            );
                        }
                    }
                }
            }
        }
        let mut scan = MemberScan {
            builder: self,
            class_scope,
        };
        for s in body {
            crate::visit::walk_stmt(&mut scan, s);
        }
    }

    fn visit_expr(&mut self, scope: ScopeId, expr: &Expr) {
        match &expr.kind {
            ExprKind::Name(n) => {
                let id = match self.resolve(scope, n) {
                    Some(id) => id,
                    None => {
                        // Free name: builtin or external. One symbol per
                        // name at module scope so repeated uses connect.
                        let module_scope = ScopeId(0);
                        let id = self.bind(module_scope, n, SymbolKind::Unresolved, expr.meta.span);
                        self.bindings[scope.0 as usize].insert(n.clone(), id);
                        id
                    }
                };
                self.record_occurrence(id, expr.meta.span);
            }
            ExprKind::Attribute {
                value,
                attr,
                attr_span,
            } => {
                self.visit_expr(scope, value);
                if value.as_name() == Some("self") {
                    if let Some(class_scope) = self.current_class.last().copied() {
                        if let Some(id) = self.resolve(class_scope, &format!("self.{attr}")) {
                            self.record_occurrence(id, *attr_span);
                        }
                    }
                }
            }
            ExprKind::Lambda { params, body } => {
                for p in params {
                    if let Some(d) = &p.default {
                        self.visit_expr(scope, d);
                    }
                }
                let lscope = self.push_scope(Some(scope), ScopeKind::Function, "<lambda>");
                for p in params {
                    let id = self.bind(lscope, &p.name, SymbolKind::Parameter, p.name_span);
                    self.record_occurrence(id, p.name_span);
                }
                self.visit_expr(lscope, body);
            }
            ExprKind::Comprehension {
                element,
                value,
                clauses,
                ..
            } => {
                // Comprehension targets bind in the current scope
                // (a simplification of Python's comprehension scopes that
                // matches how the graph uses them).
                for c in clauses {
                    self.visit_expr(scope, &c.iter);
                    self.collect_target(scope, &c.target);
                    self.visit_expr(scope, &c.target);
                    for i in &c.ifs {
                        self.visit_expr(scope, i);
                    }
                }
                self.visit_expr(scope, element);
                if let Some(v) = value {
                    self.visit_expr(scope, v);
                }
            }
            ExprKind::Walrus { target, value } => {
                self.visit_expr(scope, value);
                self.collect_target(scope, target);
                self.visit_expr(scope, target);
            }
            // Everything else: plain recursion.
            ExprKind::Tuple(items) | ExprKind::List(items) | ExprKind::Set(items) => {
                for e in items {
                    self.visit_expr(scope, e);
                }
            }
            ExprKind::Dict { keys, values } => {
                for k in keys.iter().flatten() {
                    self.visit_expr(scope, k);
                }
                for e in values {
                    self.visit_expr(scope, e);
                }
            }
            ExprKind::BinOp { left, right, .. } => {
                self.visit_expr(scope, left);
                self.visit_expr(scope, right);
            }
            ExprKind::UnaryOp { operand, .. } => self.visit_expr(scope, operand),
            ExprKind::BoolOp { values, .. } => {
                for e in values {
                    self.visit_expr(scope, e);
                }
            }
            ExprKind::Compare {
                left, comparators, ..
            } => {
                self.visit_expr(scope, left);
                for e in comparators {
                    self.visit_expr(scope, e);
                }
            }
            ExprKind::Call {
                func,
                args,
                keywords,
            } => {
                self.visit_expr(scope, func);
                for e in args {
                    self.visit_expr(scope, e);
                }
                for k in keywords {
                    self.visit_expr(scope, &k.value);
                }
            }
            ExprKind::Subscript { value, index } => {
                self.visit_expr(scope, value);
                self.visit_expr(scope, index);
            }
            ExprKind::Slice { lower, upper, step } => {
                for e in [lower, upper, step].into_iter().flatten() {
                    self.visit_expr(scope, e);
                }
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.visit_expr(scope, test);
                self.visit_expr(scope, body);
                self.visit_expr(scope, orelse);
            }
            ExprKind::Starred(inner) => self.visit_expr(scope, inner),
            ExprKind::Yield(v) => {
                if let Some(e) = v {
                    self.visit_expr(scope, e);
                }
            }
            ExprKind::YieldFrom(e) | ExprKind::Await(e) => self.visit_expr(scope, e),
            ExprKind::Num(_)
            | ExprKind::Str(_)
            | ExprKind::FString(_)
            | ExprKind::Bool(_)
            | ExprKind::NoneLit
            | ExprKind::EllipsisLit => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table(src: &str) -> SymbolTable {
        SymbolTable::build(&parse(src).unwrap().module)
    }

    fn find<'t>(t: &'t SymbolTable, name: &str, kind: SymbolKind) -> &'t Symbol {
        t.symbols()
            .iter()
            .find(|s| s.name == name && s.kind == kind)
            .unwrap_or_else(|| panic!("symbol {name} ({kind:?}) not found"))
    }

    #[test]
    fn parameters_and_locals() {
        let t = table("def f(a: int, b):\n    c = a + b\n    return c\n");
        let a = find(&t, "a", SymbolKind::Parameter);
        assert_eq!(a.annotation.as_deref(), Some("int"));
        assert_eq!(a.occurrences.len(), 2); // declaration + use
        let c = find(&t, "c", SymbolKind::Variable);
        assert_eq!(c.occurrences.len(), 2); // assignment + return
    }

    #[test]
    fn return_symbol_created() {
        let src = "def f() -> str:\n    return 'x'\n";
        let parsed = parse(src).unwrap();
        let t = SymbolTable::build(&parsed.module);
        let func_node = parsed.module.body[0].meta.id;
        let ret = t.return_symbol(func_node).expect("return symbol");
        assert_eq!(ret.kind, SymbolKind::Return);
        assert_eq!(ret.annotation.as_deref(), Some("str"));
    }

    #[test]
    fn self_members_bind_in_class_scope() {
        let src = "\
class A:
    def __init__(self):
        self.count = 0
    def inc(self):
        self.count += 1
";
        let t = table(src);
        let m = find(&t, "self.count", SymbolKind::ClassMember);
        assert_eq!(m.occurrences.len(), 2, "member used in both methods");
    }

    #[test]
    fn annotated_member() {
        let src = "\
class A:
    def __init__(self):
        self.items: List[int] = []
";
        let t = table(src);
        let m = find(&t, "self.items", SymbolKind::ClassMember);
        assert_eq!(m.annotation.as_deref(), Some("List[int]"));
    }

    #[test]
    fn module_and_function_scopes_are_distinct() {
        let t = table("x = 1\ndef f():\n    x = 2\n    return x\n");
        let xs: Vec<&Symbol> = t
            .symbols()
            .iter()
            .filter(|s| s.name == "x" && s.kind == SymbolKind::Variable)
            .collect();
        assert_eq!(xs.len(), 2, "two distinct x symbols");
        assert_ne!(xs[0].scope, xs[1].scope);
    }

    #[test]
    fn global_links_to_module_symbol() {
        let t = table("count = 0\ndef bump():\n    global count\n    count = count + 1\n");
        let counts: Vec<&Symbol> = t
            .symbols()
            .iter()
            .filter(|s| s.name == "count" && s.kind == SymbolKind::Variable)
            .collect();
        assert_eq!(counts.len(), 1, "global shares the module symbol");
        assert_eq!(counts[0].occurrences.len(), 3);
    }

    #[test]
    fn closure_reads_enclosing() {
        let t = table(
            "def outer():\n    n = 1\n    def inner():\n        return n\n    return inner\n",
        );
        let n = find(&t, "n", SymbolKind::Variable);
        assert_eq!(n.occurrences.len(), 2, "definition + closure read");
    }

    #[test]
    fn unresolved_names_are_shared() {
        let t = table("a = range(3)\nb = range(5)\n");
        let r = find(&t, "range", SymbolKind::Unresolved);
        assert_eq!(r.occurrences.len(), 2);
    }

    #[test]
    fn imports_bind() {
        let t = table(
            "import os.path as osp\nfrom typing import List\np = osp.join('a')\nxs: List = []\n",
        );
        assert_eq!(find(&t, "osp", SymbolKind::Import).occurrences.len(), 2);
        assert_eq!(find(&t, "List", SymbolKind::Import).occurrences.len(), 2);
    }

    #[test]
    fn for_and_with_targets() {
        let t = table("for i in range(3):\n    print(i)\nwith open('f') as fh:\n    fh.read()\n");
        assert_eq!(find(&t, "i", SymbolKind::Variable).occurrences.len(), 2);
        assert_eq!(find(&t, "fh", SymbolKind::Variable).occurrences.len(), 2);
    }

    #[test]
    fn tuple_unpacking_targets() {
        let t = table("a, (b, c) = 1, (2, 3)\n");
        for name in ["a", "b", "c"] {
            find(&t, name, SymbolKind::Variable);
        }
    }

    #[test]
    fn annotatable_excludes_self_and_functions() {
        let src = "\
class A:
    def m(self, x: int) -> int:
        return x
";
        let t = table(src);
        let names: Vec<&str> = t.annotatable_symbols().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"x"));
        assert!(!names.contains(&"self"));
        // `m` appears only as the return symbol, not the function symbol.
        let m_syms: Vec<SymbolKind> = t
            .annotatable_symbols()
            .filter(|s| s.name == "m")
            .map(|s| s.kind)
            .collect();
        assert_eq!(m_syms, vec![SymbolKind::Return]);
    }

    #[test]
    fn occurrence_lookup_by_span() {
        let src = "value = 1\nresult = value + 2\n";
        let parsed = parse(src).unwrap();
        let t = SymbolTable::build(&parsed.module);
        // Find the second `value` token.
        let tok = parsed
            .tokens
            .iter()
            .filter(|tk| tk.lexeme == "value")
            .nth(1)
            .unwrap();
        let sym = t.symbol_at(tok.span).expect("resolved");
        assert_eq!(sym.name, "value");
        assert_eq!(sym.kind, SymbolKind::Variable);
    }

    #[test]
    fn walrus_binds() {
        let t = table("if (n := compute()) > 0:\n    print(n)\n");
        assert_eq!(find(&t, "n", SymbolKind::Variable).occurrences.len(), 2);
    }

    #[test]
    fn comprehension_targets_bind() {
        let t = table("ys = [x * x for x in range(5)]\n");
        let x = find(&t, "x", SymbolKind::Variable);
        assert_eq!(x.occurrences.len(), 3); // two in element, one as target
    }

    #[test]
    fn except_as_binds() {
        let t = table("try:\n    pass\nexcept ValueError as err:\n    print(err)\n");
        assert_eq!(find(&t, "err", SymbolKind::Variable).occurrences.len(), 2);
    }

    #[test]
    fn lambda_params_bind() {
        let t = table("f = lambda u, v: u + v\n");
        assert_eq!(find(&t, "u", SymbolKind::Parameter).occurrences.len(), 2);
    }
}
