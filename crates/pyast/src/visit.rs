//! Generic AST traversal.
//!
//! Implement [`Visitor`] and override the hooks you care about; the `walk_*`
//! free functions perform the recursive descent. Hooks are called *before*
//! children are walked.

use crate::ast::*;

/// A read-only AST visitor with pre-order hooks.
pub trait Visitor {
    /// Called for every statement before its children.
    fn visit_stmt(&mut self, _stmt: &Stmt) {}
    /// Called for every expression before its children.
    fn visit_expr(&mut self, _expr: &Expr) {}
    /// Called for every function parameter.
    fn visit_param(&mut self, _param: &Param) {}

    /// Controls whether the walker descends into nested function/class
    /// bodies. Defaults to `true`.
    fn enter_scopes(&self) -> bool {
        true
    }
}

/// Walks a whole module.
pub fn walk_module<V: Visitor>(v: &mut V, module: &Module) {
    for stmt in &module.body {
        walk_stmt(v, stmt);
    }
}

/// Walks one statement and its children.
pub fn walk_stmt<V: Visitor>(v: &mut V, stmt: &Stmt) {
    v.visit_stmt(stmt);
    match &stmt.kind {
        StmtKind::FunctionDef(f) => {
            for d in &f.decorators {
                walk_expr(v, d);
            }
            for p in &f.params {
                v.visit_param(p);
                if let Some(a) = &p.annotation {
                    walk_expr(v, a);
                }
                if let Some(d) = &p.default {
                    walk_expr(v, d);
                }
            }
            if let Some(r) = &f.returns {
                walk_expr(v, r);
            }
            if v.enter_scopes() {
                for s in &f.body {
                    walk_stmt(v, s);
                }
            }
        }
        StmtKind::ClassDef(c) => {
            for d in &c.decorators {
                walk_expr(v, d);
            }
            for b in &c.bases {
                walk_expr(v, b);
            }
            for k in &c.keywords {
                walk_expr(v, &k.value);
            }
            if v.enter_scopes() {
                for s in &c.body {
                    walk_stmt(v, s);
                }
            }
        }
        StmtKind::Return(value) => {
            if let Some(e) = value {
                walk_expr(v, e);
            }
        }
        StmtKind::Assign { targets, value } => {
            for t in targets {
                walk_expr(v, t);
            }
            walk_expr(v, value);
        }
        StmtKind::AugAssign { target, value, .. } => {
            walk_expr(v, target);
            walk_expr(v, value);
        }
        StmtKind::AnnAssign {
            target,
            annotation,
            value,
        } => {
            walk_expr(v, target);
            walk_expr(v, annotation);
            if let Some(e) = value {
                walk_expr(v, e);
            }
        }
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
            ..
        } => {
            walk_expr(v, target);
            walk_expr(v, iter);
            for s in body.iter().chain(orelse) {
                walk_stmt(v, s);
            }
        }
        StmtKind::While { test, body, orelse } => {
            walk_expr(v, test);
            for s in body.iter().chain(orelse) {
                walk_stmt(v, s);
            }
        }
        StmtKind::If { test, body, orelse } => {
            walk_expr(v, test);
            for s in body.iter().chain(orelse) {
                walk_stmt(v, s);
            }
        }
        StmtKind::With { items, body } => {
            for item in items {
                walk_expr(v, &item.context);
                if let Some(t) = &item.target {
                    walk_expr(v, t);
                }
            }
            for s in body {
                walk_stmt(v, s);
            }
        }
        StmtKind::Raise { exc, cause } => {
            if let Some(e) = exc {
                walk_expr(v, e);
            }
            if let Some(e) = cause {
                walk_expr(v, e);
            }
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            for s in body {
                walk_stmt(v, s);
            }
            for h in handlers {
                if let Some(e) = &h.exc_type {
                    walk_expr(v, e);
                }
                for s in &h.body {
                    walk_stmt(v, s);
                }
            }
            for s in orelse.iter().chain(finalbody) {
                walk_stmt(v, s);
            }
        }
        StmtKind::Assert { test, msg } => {
            walk_expr(v, test);
            if let Some(m) = msg {
                walk_expr(v, m);
            }
        }
        StmtKind::Expr(e) => walk_expr(v, e),
        StmtKind::Delete(targets) => {
            for t in targets {
                walk_expr(v, t);
            }
        }
        StmtKind::Import(_)
        | StmtKind::ImportFrom { .. }
        | StmtKind::Global(_)
        | StmtKind::Nonlocal(_)
        | StmtKind::Pass
        | StmtKind::Break
        | StmtKind::Continue => {}
    }
}

/// Walks one expression and its children.
pub fn walk_expr<V: Visitor>(v: &mut V, expr: &Expr) {
    v.visit_expr(expr);
    match &expr.kind {
        ExprKind::Name(_)
        | ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::FString(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::EllipsisLit => {}
        ExprKind::Tuple(items) | ExprKind::List(items) | ExprKind::Set(items) => {
            for e in items {
                walk_expr(v, e);
            }
        }
        ExprKind::Dict { keys, values } => {
            for k in keys.iter().flatten() {
                walk_expr(v, k);
            }
            for e in values {
                walk_expr(v, e);
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            walk_expr(v, left);
            walk_expr(v, right);
        }
        ExprKind::UnaryOp { operand, .. } => walk_expr(v, operand),
        ExprKind::BoolOp { values, .. } => {
            for e in values {
                walk_expr(v, e);
            }
        }
        ExprKind::Compare {
            left, comparators, ..
        } => {
            walk_expr(v, left);
            for e in comparators {
                walk_expr(v, e);
            }
        }
        ExprKind::Call {
            func,
            args,
            keywords,
        } => {
            walk_expr(v, func);
            for e in args {
                walk_expr(v, e);
            }
            for k in keywords {
                walk_expr(v, &k.value);
            }
        }
        ExprKind::Attribute { value, .. } => walk_expr(v, value),
        ExprKind::Subscript { value, index } => {
            walk_expr(v, value);
            walk_expr(v, index);
        }
        ExprKind::Slice { lower, upper, step } => {
            for e in [lower, upper, step].into_iter().flatten() {
                walk_expr(v, e);
            }
        }
        ExprKind::Lambda { params, body } => {
            for p in params {
                v.visit_param(p);
                if let Some(d) = &p.default {
                    walk_expr(v, d);
                }
            }
            walk_expr(v, body);
        }
        ExprKind::IfExp { test, body, orelse } => {
            walk_expr(v, test);
            walk_expr(v, body);
            walk_expr(v, orelse);
        }
        ExprKind::Starred(inner) => walk_expr(v, inner),
        ExprKind::Comprehension {
            element,
            value,
            clauses,
            ..
        } => {
            for c in clauses {
                walk_expr(v, &c.target);
                walk_expr(v, &c.iter);
                for i in &c.ifs {
                    walk_expr(v, i);
                }
            }
            walk_expr(v, element);
            if let Some(val) = value {
                walk_expr(v, val);
            }
        }
        ExprKind::Yield(value) => {
            if let Some(e) = value {
                walk_expr(v, e);
            }
        }
        ExprKind::YieldFrom(e) | ExprKind::Await(e) => walk_expr(v, e),
        ExprKind::Walrus { target, value } => {
            walk_expr(v, target);
            walk_expr(v, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    struct Counter {
        stmts: usize,
        exprs: usize,
        names: Vec<String>,
    }

    impl Visitor for Counter {
        fn visit_stmt(&mut self, _s: &Stmt) {
            self.stmts += 1;
        }
        fn visit_expr(&mut self, e: &Expr) {
            self.exprs += 1;
            if let ExprKind::Name(n) = &e.kind {
                self.names.push(n.clone());
            }
        }
    }

    #[test]
    fn visits_all_names() {
        let parsed = parse("def f(a, b):\n    c = a + b\n    return c\n").unwrap();
        let mut v = Counter {
            stmts: 0,
            exprs: 0,
            names: Vec::new(),
        };
        walk_module(&mut v, &parsed.module);
        assert_eq!(v.stmts, 3); // def, assign, return
        assert_eq!(v.names, vec!["c", "a", "b", "c"]);
    }

    #[test]
    fn scope_skipping() {
        struct TopOnly {
            stmts: usize,
        }
        impl Visitor for TopOnly {
            fn visit_stmt(&mut self, _s: &Stmt) {
                self.stmts += 1;
            }
            fn enter_scopes(&self) -> bool {
                false
            }
        }
        let parsed = parse("def f():\n    x = 1\n    y = 2\nz = 3\n").unwrap();
        let mut v = TopOnly { stmts: 0 };
        walk_module(&mut v, &parsed.module);
        assert_eq!(v.stmts, 2); // def + z assignment, body skipped
    }

    #[test]
    fn visits_comprehension_parts() {
        let parsed = parse("r = [f(x) for x in xs if x]\n").unwrap();
        let mut v = Counter {
            stmts: 0,
            exprs: 0,
            names: Vec::new(),
        };
        walk_module(&mut v, &parsed.module);
        assert!(v.names.contains(&"xs".to_string()));
        assert!(v.names.contains(&"f".to_string()));
    }
}
