//! Recursive-descent parser for the Python subset.
//!
//! The parser consumes the token stream produced by [`crate::lexer`] and
//! builds a [`Module`]. It covers the statement and expression forms that
//! occur in idiomatic annotated Python: functions and classes (with
//! decorators, default arguments, `*args`/`**kwargs`, annotations),
//! assignments of all flavours, control flow, imports, comprehensions,
//! lambdas, slices, chained comparisons and conditional expressions.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// The result of parsing one source file: the module AST plus the exact
/// token stream it was parsed from (the graph builder needs both).
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The module AST.
    pub module: Module,
    /// The token stream, including layout tokens.
    pub tokens: Vec<Token>,
}

/// Lexes and parses `source`.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Parsed, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(&tokens);
    let module = parser.module()?;
    Ok(Parsed { module, tokens })
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
    next_id: u32,
}

impl<'t> Parser<'t> {
    fn new(tokens: &'t [Token]) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_id: 0,
        }
    }

    fn fresh(&mut self, span: Span) -> NodeMeta {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        NodeMeta { id, span }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> TokenKind {
        self.peek().kind
    }

    fn peek2_kind(&self) -> TokenKind {
        self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, context: &str) -> Result<&Token, ParseError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(context))
        }
    }

    fn unexpected(&self, context: &str) -> ParseError {
        let tok = self.peek();
        let kind = if tok.kind == TokenKind::EndOfFile {
            ParseErrorKind::UnexpectedEof
        } else {
            ParseErrorKind::UnexpectedToken {
                found: tok.to_string(),
                expected: context.to_string(),
            }
        };
        ParseError::new(kind, tok.span)
    }

    fn span_here(&self) -> Span {
        self.peek().span
    }

    // ----- module and statements ------------------------------------------

    fn module(&mut self) -> Result<Module, ParseError> {
        let start = self.span_here();
        let meta_placeholder = self.fresh(start);
        let mut body = Vec::new();
        while !self.at(TokenKind::EndOfFile) {
            // Tolerate stray newlines between statements.
            if self.eat(TokenKind::Newline) {
                continue;
            }
            body.push(self.statement()?);
        }
        let end = self.span_here();
        let meta = NodeMeta {
            id: meta_placeholder.id,
            span: start.merge(end),
        };
        Ok(Module {
            body,
            meta,
            node_count: self.next_id,
        })
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind() {
            TokenKind::At => self.decorated(),
            TokenKind::KwDef => self.function_def(Vec::new(), false),
            TokenKind::KwAsync => {
                let start = self.span_here();
                self.bump();
                match self.peek_kind() {
                    TokenKind::KwDef => self.function_def(Vec::new(), true),
                    TokenKind::KwFor => self.for_stmt(true),
                    TokenKind::KwWith => self.with_stmt(),
                    _ => Err(ParseError::new(
                        ParseErrorKind::Unsupported("async statement".into()),
                        start,
                    )),
                }
            }
            TokenKind::KwClass => self.class_def(Vec::new()),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwFor => self.for_stmt(false),
            TokenKind::KwTry => self.try_stmt(),
            TokenKind::KwWith => self.with_stmt(),
            _ => self.simple_stmt_line(),
        }
    }

    fn decorated(&mut self) -> Result<Stmt, ParseError> {
        let mut decorators = Vec::new();
        while self.at(TokenKind::At) {
            self.bump();
            let d = self.expression()?;
            decorators.push(d);
            self.expect(TokenKind::Newline, "newline after decorator")?;
            while self.eat(TokenKind::Newline) {}
        }
        match self.peek_kind() {
            TokenKind::KwDef => self.function_def(decorators, false),
            TokenKind::KwAsync => {
                self.bump();
                self.function_def(decorators, true)
            }
            TokenKind::KwClass => self.class_def(decorators),
            _ => Err(self.unexpected("function or class after decorator")),
        }
    }

    fn function_def(&mut self, decorators: Vec<Expr>, is_async: bool) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwDef, "`def`")?;
        let name_tok = self.expect(TokenKind::Name, "function name")?;
        let name = name_tok.lexeme.clone();
        let name_span = name_tok.span;
        self.expect(TokenKind::LParen, "`(` after function name")?;
        let params = self.param_list()?;
        self.expect(TokenKind::RParen, "`)` after parameters")?;
        let returns = if self.eat(TokenKind::Arrow) {
            Some(self.expression()?)
        } else {
            None
        };
        self.expect(TokenKind::Colon, "`:` before function body")?;
        let body = self.block()?;
        let end = body.last().map(|s| s.meta.span).unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Stmt {
            meta,
            kind: StmtKind::FunctionDef(FunctionDef {
                name,
                name_span,
                params,
                returns,
                body,
                decorators,
                is_async,
            }),
        })
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = Vec::new();
        let mut kw_only = false;
        while !self.at(TokenKind::RParen) {
            if self.eat(TokenKind::Star) {
                if self.at(TokenKind::Comma) || self.at(TokenKind::RParen) {
                    kw_only = true; // bare `*`
                } else {
                    params.push(self.param(ParamKind::VarArgs)?);
                    kw_only = true;
                }
            } else if self.eat(TokenKind::DoubleStar) {
                params.push(self.param(ParamKind::KwArgs)?);
            } else if self.eat(TokenKind::Slash) {
                // Positional-only marker: accepted and ignored.
            } else {
                let kind = if kw_only {
                    ParamKind::KwOnly
                } else {
                    ParamKind::Plain
                };
                params.push(self.param(kind)?);
            }
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn param(&mut self, kind: ParamKind) -> Result<Param, ParseError> {
        let name_tok = self.expect(TokenKind::Name, "parameter name")?;
        let name = name_tok.lexeme.clone();
        let name_span = name_tok.span;
        let annotation = if self.eat(TokenKind::Colon) {
            Some(self.expression()?)
        } else {
            None
        };
        let default = if self.eat(TokenKind::Assign) {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Param {
            name,
            name_span,
            annotation,
            default,
            kind,
        })
    }

    fn class_def(&mut self, decorators: Vec<Expr>) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwClass, "`class`")?;
        let name_tok = self.expect(TokenKind::Name, "class name")?;
        let name = name_tok.lexeme.clone();
        let name_span = name_tok.span;
        let mut bases = Vec::new();
        let mut keywords = Vec::new();
        if self.eat(TokenKind::LParen) {
            while !self.at(TokenKind::RParen) {
                if self.at(TokenKind::Name) && self.peek2_kind() == TokenKind::Assign {
                    let kw_name = self.bump().lexeme.clone();
                    self.bump(); // `=`
                    let value = self.expression()?;
                    keywords.push(Keyword {
                        arg: Some(kw_name),
                        value,
                    });
                } else {
                    bases.push(self.expression()?);
                }
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen, "`)` after base classes")?;
        }
        self.expect(TokenKind::Colon, "`:` before class body")?;
        let body = self.block()?;
        let end = body.last().map(|s| s.meta.span).unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Stmt {
            meta,
            kind: StmtKind::ClassDef(ClassDef {
                name,
                name_span,
                bases,
                keywords,
                body,
                decorators,
            }),
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat(TokenKind::Newline) {
            self.expect(TokenKind::Indent, "indented block")?;
            let mut body = Vec::new();
            while !self.at(TokenKind::Dedent) && !self.at(TokenKind::EndOfFile) {
                if self.eat(TokenKind::Newline) {
                    continue;
                }
                body.push(self.statement()?);
            }
            self.expect(TokenKind::Dedent, "dedent closing block")?;
            Ok(body)
        } else {
            // Inline suite: `if x: pass` on one line.
            self.simple_stmt_line().map(|s| vec![s])
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.bump(); // if / elif
        let test = self.expression()?;
        self.expect(TokenKind::Colon, "`:` after if condition")?;
        let body = self.block()?;
        let orelse = if self.at(TokenKind::KwElif) {
            vec![self.if_stmt()?]
        } else if self.eat(TokenKind::KwElse) {
            self.expect(TokenKind::Colon, "`:` after else")?;
            self.block()?
        } else {
            Vec::new()
        };
        let end = orelse
            .last()
            .map(|s| s.meta.span)
            .or_else(|| body.last().map(|s| s.meta.span))
            .unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Stmt {
            meta,
            kind: StmtKind::If { test, body, orelse },
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.bump();
        let test = self.expression()?;
        self.expect(TokenKind::Colon, "`:` after while condition")?;
        let body = self.block()?;
        let orelse = if self.eat(TokenKind::KwElse) {
            self.expect(TokenKind::Colon, "`:` after else")?;
            self.block()?
        } else {
            Vec::new()
        };
        let end = body.last().map(|s| s.meta.span).unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Stmt {
            meta,
            kind: StmtKind::While { test, body, orelse },
        })
    }

    fn for_stmt(&mut self, is_async: bool) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwFor, "`for`")?;
        let target = self.target_list()?;
        self.expect(TokenKind::KwIn, "`in` in for statement")?;
        let iter = self.expression_list()?;
        self.expect(TokenKind::Colon, "`:` after for header")?;
        let body = self.block()?;
        let orelse = if self.eat(TokenKind::KwElse) {
            self.expect(TokenKind::Colon, "`:` after else")?;
            self.block()?
        } else {
            Vec::new()
        };
        let end = body.last().map(|s| s.meta.span).unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Stmt {
            meta,
            kind: StmtKind::For {
                target,
                iter,
                body,
                orelse,
                is_async,
            },
        })
    }

    fn try_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.bump();
        self.expect(TokenKind::Colon, "`:` after try")?;
        let body = self.block()?;
        let mut handlers = Vec::new();
        while self.at(TokenKind::KwExcept) {
            self.bump();
            let mut exc_type = None;
            let mut name = None;
            let mut name_span = None;
            if !self.at(TokenKind::Colon) {
                exc_type = Some(self.expression()?);
                if self.eat(TokenKind::KwAs) {
                    let t = self.expect(TokenKind::Name, "name after `as`")?;
                    name = Some(t.lexeme.clone());
                    name_span = Some(t.span);
                }
            }
            self.expect(TokenKind::Colon, "`:` after except clause")?;
            let hbody = self.block()?;
            handlers.push(ExceptHandler {
                exc_type,
                name,
                name_span,
                body: hbody,
            });
        }
        let orelse = if self.eat(TokenKind::KwElse) {
            self.expect(TokenKind::Colon, "`:` after else")?;
            self.block()?
        } else {
            Vec::new()
        };
        let finalbody = if self.eat(TokenKind::KwFinally) {
            self.expect(TokenKind::Colon, "`:` after finally")?;
            self.block()?
        } else {
            Vec::new()
        };
        let end = body.last().map(|s| s.meta.span).unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Stmt {
            meta,
            kind: StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            },
        })
    }

    fn with_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwWith, "`with`")?;
        let mut items = Vec::new();
        loop {
            let context = self.expression()?;
            let target = if self.eat(TokenKind::KwAs) {
                Some(self.primary_target()?)
            } else {
                None
            };
            items.push(WithItem { context, target });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Colon, "`:` after with items")?;
        let body = self.block()?;
        let end = body.last().map(|s| s.meta.span).unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Stmt {
            meta,
            kind: StmtKind::With { items, body },
        })
    }

    fn simple_stmt_line(&mut self) -> Result<Stmt, ParseError> {
        let first = self.small_stmt()?;
        // A trailing semicolon is tolerated; genuine multi-statement
        // lines (`a; b`) are outside the supported subset.
        if self.eat(TokenKind::Semicolon)
            && !self.at(TokenKind::Newline)
            && !self.at(TokenKind::EndOfFile)
        {
            return Err(ParseError::new(
                ParseErrorKind::Unsupported("multiple statements on one line".into()),
                self.span_here(),
            ));
        }
        self.eat(TokenKind::Newline);
        Ok(first)
    }

    fn small_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        match self.peek_kind() {
            TokenKind::KwReturn => {
                let meta = self.fresh(start);
                self.bump();
                let value = if self.at(TokenKind::Newline)
                    || self.at(TokenKind::Semicolon)
                    || self.at(TokenKind::EndOfFile)
                {
                    None
                } else {
                    Some(self.expression_list()?)
                };
                let span = value
                    .as_ref()
                    .map(|v| start.merge(v.meta.span))
                    .unwrap_or(start);
                Ok(Stmt {
                    meta: NodeMeta { id: meta.id, span },
                    kind: StmtKind::Return(value),
                })
            }
            TokenKind::KwPass => {
                let meta = self.fresh(start);
                self.bump();
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Pass,
                })
            }
            TokenKind::KwBreak => {
                let meta = self.fresh(start);
                self.bump();
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Break,
                })
            }
            TokenKind::KwContinue => {
                let meta = self.fresh(start);
                self.bump();
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Continue,
                })
            }
            TokenKind::KwImport => self.import_stmt(),
            TokenKind::KwFrom => self.import_from_stmt(),
            TokenKind::KwGlobal | TokenKind::KwNonlocal => {
                let is_global = self.at(TokenKind::KwGlobal);
                let meta = self.fresh(start);
                self.bump();
                let mut names = Vec::new();
                loop {
                    names.push(self.expect(TokenKind::Name, "name")?.lexeme.clone());
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                let kind = if is_global {
                    StmtKind::Global(names)
                } else {
                    StmtKind::Nonlocal(names)
                };
                Ok(Stmt { meta, kind })
            }
            TokenKind::KwDel => {
                let meta = self.fresh(start);
                self.bump();
                let mut targets = Vec::new();
                loop {
                    targets.push(self.primary_target()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Delete(targets),
                })
            }
            TokenKind::KwRaise => {
                let meta = self.fresh(start);
                self.bump();
                let mut exc = None;
                let mut cause = None;
                if !self.at(TokenKind::Newline) && !self.at(TokenKind::EndOfFile) {
                    exc = Some(self.expression()?);
                    if self.at(TokenKind::KwFrom) {
                        self.bump();
                        cause = Some(self.expression()?);
                    }
                }
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Raise { exc, cause },
                })
            }
            TokenKind::KwAssert => {
                let meta = self.fresh(start);
                self.bump();
                let test = self.expression()?;
                let msg = if self.eat(TokenKind::Comma) {
                    Some(self.expression()?)
                } else {
                    None
                };
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Assert { test, msg },
                })
            }
            _ => self.expr_stmt(),
        }
    }

    fn import_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwImport, "`import`")?;
        let mut names = Vec::new();
        loop {
            names.push(self.import_alias()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok(Stmt {
            meta,
            kind: StmtKind::Import(names),
        })
    }

    fn import_alias(&mut self) -> Result<Alias, ParseError> {
        let first = self.expect(TokenKind::Name, "module name")?;
        let first_span = first.span;
        let mut name = first.lexeme.clone();
        while self.eat(TokenKind::Dot) {
            let part = self.expect(TokenKind::Name, "dotted name component")?;
            name.push('.');
            name.push_str(&part.lexeme);
        }
        if self.eat(TokenKind::KwAs) {
            let t = self.expect(TokenKind::Name, "alias name")?;
            Ok(Alias {
                name,
                asname: Some(t.lexeme.clone()),
                bind_span: t.span,
            })
        } else {
            Ok(Alias {
                name,
                asname: None,
                bind_span: first_span,
            })
        }
    }

    fn import_from_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwFrom, "`from`")?;
        let mut level = 0u32;
        while self.at(TokenKind::Dot) || self.at(TokenKind::Ellipsis) {
            level += if self.at(TokenKind::Ellipsis) { 3 } else { 1 };
            self.bump();
        }
        let mut module = String::new();
        if self.at(TokenKind::Name) {
            module = self.bump().lexeme.clone();
            while self.eat(TokenKind::Dot) {
                let part = self.expect(TokenKind::Name, "dotted module component")?;
                module.push('.');
                module.push_str(&part.lexeme);
            }
        }
        self.expect(TokenKind::KwImport, "`import` in from-import")?;
        let mut names = Vec::new();
        if self.at(TokenKind::Star) {
            let t = self.bump();
            names.push(Alias {
                name: "*".into(),
                asname: None,
                bind_span: t.span,
            });
        } else {
            let parenthesised = self.eat(TokenKind::LParen);
            loop {
                if parenthesised {
                    while self.eat(TokenKind::Newline) {}
                }
                names.push(self.import_alias()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
                if parenthesised {
                    while self.eat(TokenKind::Newline) {}
                    if self.at(TokenKind::RParen) {
                        break;
                    }
                }
            }
            if parenthesised {
                self.expect(TokenKind::RParen, "`)` closing import list")?;
            }
        }
        Ok(Stmt {
            meta,
            kind: StmtKind::ImportFrom {
                module,
                names,
                level,
            },
        })
    }

    fn expr_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        let first = self.expression_list()?;
        match self.peek_kind() {
            TokenKind::Colon => {
                self.bump();
                let annotation = self.expression()?;
                let value = if self.eat(TokenKind::Assign) {
                    Some(self.expression_list()?)
                } else {
                    None
                };
                let end = value
                    .as_ref()
                    .map(|v| v.meta.span)
                    .unwrap_or(annotation.meta.span);
                let meta = NodeMeta {
                    id: meta.id,
                    span: start.merge(end),
                };
                Ok(Stmt {
                    meta,
                    kind: StmtKind::AnnAssign {
                        target: first,
                        annotation,
                        value,
                    },
                })
            }
            TokenKind::Assign => {
                let mut targets = vec![first];
                let mut value = None;
                while self.eat(TokenKind::Assign) {
                    let e = self.expression_list()?;
                    if self.at(TokenKind::Assign) {
                        targets.push(e);
                    } else {
                        value = Some(e);
                    }
                }
                let value = value.ok_or_else(|| self.unexpected("assignment value"))?;
                let end = value.meta.span;
                let meta = NodeMeta {
                    id: meta.id,
                    span: start.merge(end),
                };
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Assign { targets, value },
                })
            }
            TokenKind::AugAssign => {
                let op_tok = self.bump();
                let mut op = op_tok.lexeme.clone();
                op.pop(); // strip the trailing `=`
                let value = self.expression_list()?;
                let end = value.meta.span;
                let meta = NodeMeta {
                    id: meta.id,
                    span: start.merge(end),
                };
                Ok(Stmt {
                    meta,
                    kind: StmtKind::AugAssign {
                        target: first,
                        op,
                        value,
                    },
                })
            }
            _ => {
                let meta = NodeMeta {
                    id: meta.id,
                    span: first.meta.span,
                };
                Ok(Stmt {
                    meta,
                    kind: StmtKind::Expr(first),
                })
            }
        }
    }

    // ----- expressions ------------------------------------------------------

    /// `a, b, c` — a comma-separated list parsed as a tuple when more than
    /// one element is present.
    fn expression_list(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let first = self.expression()?;
        if !self.at(TokenKind::Comma) {
            return Ok(first);
        }
        let meta = self.fresh(start);
        let mut items = vec![first];
        while self.eat(TokenKind::Comma) {
            if self.starts_expression() {
                items.push(self.expression()?);
            } else {
                break; // trailing comma
            }
        }
        let end = items.last().map(|e| e.meta.span).unwrap_or(start);
        let meta = NodeMeta {
            id: meta.id,
            span: start.merge(end),
        };
        Ok(Expr {
            meta,
            kind: ExprKind::Tuple(items),
        })
    }

    fn target_list(&mut self) -> Result<Expr, ParseError> {
        // For-loop targets must stop before the `in` keyword, so they are
        // parsed at postfix level (names, attributes, subscripts, tuples),
        // never as comparisons.
        self.comp_target()
    }

    fn primary_target(&mut self) -> Result<Expr, ParseError> {
        // `with ... as target` / `del target`: a postfix expression.
        self.expression()
    }

    fn starts_expression(&self) -> bool {
        use TokenKind::*;
        matches!(
            self.peek_kind(),
            Name | Number
                | Str
                | KwTrue
                | KwFalse
                | KwNone
                | KwNot
                | KwLambda
                | KwAwait
                | KwYield
                | LParen
                | LBracket
                | LBrace
                | Plus
                | Minus
                | Tilde
                | Star
                | DoubleStar
                | Ellipsis
        )
    }

    /// Top-level single expression (a `test` in CPython grammar terms),
    /// including conditional expressions, lambdas and yields.
    pub(crate) fn expression(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind() {
            TokenKind::KwLambda => self.lambda(),
            TokenKind::KwYield => self.yield_expr(),
            _ => {
                let start = self.span_here();
                let body = self.or_expr()?;
                if self.at(TokenKind::KwIf) {
                    let meta = self.fresh(start);
                    self.bump();
                    let test = self.or_expr()?;
                    self.expect(TokenKind::KwElse, "`else` in conditional expression")?;
                    let orelse = self.expression()?;
                    let span = start.merge(orelse.meta.span);
                    Ok(Expr {
                        meta: NodeMeta { id: meta.id, span },
                        kind: ExprKind::IfExp {
                            test: Box::new(test),
                            body: Box::new(body),
                            orelse: Box::new(orelse),
                        },
                    })
                } else if self.at(TokenKind::Walrus) {
                    let meta = self.fresh(start);
                    self.bump();
                    let value = self.expression()?;
                    let span = start.merge(value.meta.span);
                    Ok(Expr {
                        meta: NodeMeta { id: meta.id, span },
                        kind: ExprKind::Walrus {
                            target: Box::new(body),
                            value: Box::new(value),
                        },
                    })
                } else {
                    Ok(body)
                }
            }
        }
    }

    fn lambda(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwLambda, "`lambda`")?;
        let mut params = Vec::new();
        while self.at(TokenKind::Name) || self.at(TokenKind::Star) || self.at(TokenKind::DoubleStar)
        {
            if self.eat(TokenKind::Star) {
                if self.at(TokenKind::Name) {
                    params.push(self.lambda_param(ParamKind::VarArgs)?);
                }
            } else if self.eat(TokenKind::DoubleStar) {
                params.push(self.lambda_param(ParamKind::KwArgs)?);
            } else {
                params.push(self.lambda_param(ParamKind::Plain)?);
            }
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Colon, "`:` after lambda parameters")?;
        let body = self.expression()?;
        let span = start.merge(body.meta.span);
        Ok(Expr {
            meta: NodeMeta { id: meta.id, span },
            kind: ExprKind::Lambda {
                params,
                body: Box::new(body),
            },
        })
    }

    fn lambda_param(&mut self, kind: ParamKind) -> Result<Param, ParseError> {
        let t = self.expect(TokenKind::Name, "lambda parameter")?;
        let name = t.lexeme.clone();
        let name_span = t.span;
        let default = if self.eat(TokenKind::Assign) {
            Some(self.expression()?)
        } else {
            None
        };
        Ok(Param {
            name,
            name_span,
            annotation: None,
            default,
            kind,
        })
    }

    fn yield_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::KwYield, "`yield`")?;
        if self.at(TokenKind::KwFrom) {
            self.bump();
            let value = self.expression()?;
            let span = start.merge(value.meta.span);
            Ok(Expr {
                meta: NodeMeta { id: meta.id, span },
                kind: ExprKind::YieldFrom(Box::new(value)),
            })
        } else if self.starts_expression() {
            let value = self.expression_list()?;
            let span = start.merge(value.meta.span);
            Ok(Expr {
                meta: NodeMeta { id: meta.id, span },
                kind: ExprKind::Yield(Some(Box::new(value))),
            })
        } else {
            Ok(Expr {
                meta,
                kind: ExprKind::Yield(None),
            })
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let first = self.and_expr()?;
        if !self.at(TokenKind::KwOr) {
            return Ok(first);
        }
        let meta = self.fresh(start);
        let mut values = vec![first];
        while self.eat(TokenKind::KwOr) {
            values.push(self.and_expr()?);
        }
        let span = start.merge(values.last().expect("nonempty").meta.span);
        Ok(Expr {
            meta: NodeMeta { id: meta.id, span },
            kind: ExprKind::BoolOp {
                op: BoolOp::Or,
                values,
            },
        })
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let first = self.not_expr()?;
        if !self.at(TokenKind::KwAnd) {
            return Ok(first);
        }
        let meta = self.fresh(start);
        let mut values = vec![first];
        while self.eat(TokenKind::KwAnd) {
            values.push(self.not_expr()?);
        }
        let span = start.merge(values.last().expect("nonempty").meta.span);
        Ok(Expr {
            meta: NodeMeta { id: meta.id, span },
            kind: ExprKind::BoolOp {
                op: BoolOp::And,
                values,
            },
        })
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at(TokenKind::KwNot) {
            let start = self.span_here();
            let meta = self.fresh(start);
            self.bump();
            let operand = self.not_expr()?;
            let span = start.merge(operand.meta.span);
            Ok(Expr {
                meta: NodeMeta { id: meta.id, span },
                kind: ExprKind::UnaryOp {
                    op: UnaryOp::Not,
                    operand: Box::new(operand),
                },
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let left = self.bitor_expr()?;
        let mut ops = Vec::new();
        let mut comparators = Vec::new();
        loop {
            let op = match self.peek_kind() {
                TokenKind::EqEq => CmpOp::Eq,
                TokenKind::NotEq => CmpOp::NotEq,
                TokenKind::Lt => CmpOp::Lt,
                TokenKind::Le => CmpOp::Le,
                TokenKind::Gt => CmpOp::Gt,
                TokenKind::Ge => CmpOp::Ge,
                TokenKind::KwIn => CmpOp::In,
                TokenKind::KwIs => {
                    self.bump();
                    if self.eat(TokenKind::KwNot) {
                        ops.push(CmpOp::IsNot);
                    } else {
                        ops.push(CmpOp::Is);
                    }
                    comparators.push(self.bitor_expr()?);
                    continue;
                }
                TokenKind::KwNot if self.peek2_kind() == TokenKind::KwIn => {
                    self.bump();
                    self.bump();
                    ops.push(CmpOp::NotIn);
                    comparators.push(self.bitor_expr()?);
                    continue;
                }
                _ => break,
            };
            self.bump();
            ops.push(op);
            comparators.push(self.bitor_expr()?);
        }
        if ops.is_empty() {
            return Ok(left);
        }
        let meta = self.fresh(start);
        let span = start.merge(comparators.last().expect("nonempty").meta.span);
        Ok(Expr {
            meta: NodeMeta { id: meta.id, span },
            kind: ExprKind::Compare {
                left: Box::new(left),
                ops,
                comparators,
            },
        })
    }

    fn binary_level<F>(&mut self, next: F, table: &[(TokenKind, BinOp)]) -> Result<Expr, ParseError>
    where
        F: Fn(&mut Self) -> Result<Expr, ParseError>,
    {
        let start = self.span_here();
        let mut left = next(self)?;
        'outer: loop {
            for &(tok, op) in table {
                if self.at(tok) {
                    let meta = self.fresh(start);
                    self.bump();
                    let right = next(self)?;
                    let span = start.merge(right.meta.span);
                    left = Expr {
                        meta: NodeMeta { id: meta.id, span },
                        kind: ExprKind::BinOp {
                            left: Box::new(left),
                            op,
                            right: Box::new(right),
                        },
                    };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(left)
    }

    fn bitor_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bitxor_expr, &[(TokenKind::Pipe, BinOp::BitOr)])
    }

    fn bitxor_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bitand_expr, &[(TokenKind::Caret, BinOp::BitXor)])
    }

    fn bitand_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::shift_expr, &[(TokenKind::Amp, BinOp::BitAnd)])
    }

    fn shift_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::arith_expr,
            &[
                (TokenKind::LShift, BinOp::LShift),
                (TokenKind::RShift, BinOp::RShift),
            ],
        )
    }

    fn arith_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::term_expr,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn term_expr(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::unary_expr,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::DoubleSlash, BinOp::FloorDiv),
                (TokenKind::Percent, BinOp::Mod),
                (TokenKind::At, BinOp::MatMul),
            ],
        )
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Plus => Some(UnaryOp::Pos),
            TokenKind::Tilde => Some(UnaryOp::Invert),
            _ => None,
        };
        if let Some(op) = op {
            let meta = self.fresh(start);
            self.bump();
            let operand = self.unary_expr()?;
            let span = start.merge(operand.meta.span);
            Ok(Expr {
                meta: NodeMeta { id: meta.id, span },
                kind: ExprKind::UnaryOp {
                    op,
                    operand: Box::new(operand),
                },
            })
        } else {
            self.power_expr()
        }
    }

    fn power_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let base = self.postfix_expr()?;
        if self.at(TokenKind::DoubleStar) {
            let meta = self.fresh(start);
            self.bump();
            let exp = self.unary_expr()?;
            let span = start.merge(exp.meta.span);
            Ok(Expr {
                meta: NodeMeta { id: meta.id, span },
                kind: ExprKind::BinOp {
                    left: Box::new(base),
                    op: BinOp::Pow,
                    right: Box::new(exp),
                },
            })
        } else {
            Ok(base)
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at(TokenKind::KwAwait) {
            let start = self.span_here();
            let meta = self.fresh(start);
            self.bump();
            let operand = self.postfix_expr()?;
            let span = start.merge(operand.meta.span);
            return Ok(Expr {
                meta: NodeMeta { id: meta.id, span },
                kind: ExprKind::Await(Box::new(operand)),
            });
        }
        let start = self.span_here();
        let mut expr = self.atom()?;
        loop {
            match self.peek_kind() {
                TokenKind::Dot => {
                    let meta = self.fresh(start);
                    self.bump();
                    let attr_tok = self.expect(TokenKind::Name, "attribute name")?;
                    let attr = attr_tok.lexeme.clone();
                    let attr_span = attr_tok.span;
                    let span = start.merge(attr_span);
                    expr = Expr {
                        meta: NodeMeta { id: meta.id, span },
                        kind: ExprKind::Attribute {
                            value: Box::new(expr),
                            attr,
                            attr_span,
                        },
                    };
                }
                TokenKind::LParen => {
                    let meta = self.fresh(start);
                    self.bump();
                    let (args, keywords) = self.call_args()?;
                    let close = self.expect(TokenKind::RParen, "`)` closing call")?.span;
                    let span = start.merge(close);
                    expr = Expr {
                        meta: NodeMeta { id: meta.id, span },
                        kind: ExprKind::Call {
                            func: Box::new(expr),
                            args,
                            keywords,
                        },
                    };
                }
                TokenKind::LBracket => {
                    let meta = self.fresh(start);
                    self.bump();
                    let index = self.subscript_index()?;
                    let close = self
                        .expect(TokenKind::RBracket, "`]` closing subscript")?
                        .span;
                    let span = start.merge(close);
                    expr = Expr {
                        meta: NodeMeta { id: meta.id, span },
                        kind: ExprKind::Subscript {
                            value: Box::new(expr),
                            index: Box::new(index),
                        },
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<(Vec<Expr>, Vec<Keyword>), ParseError> {
        let mut args = Vec::new();
        let mut keywords = Vec::new();
        while !self.at(TokenKind::RParen) {
            if self.at(TokenKind::DoubleStar) {
                self.bump();
                let value = self.expression()?;
                keywords.push(Keyword { arg: None, value });
            } else if self.at(TokenKind::Star) {
                let start = self.span_here();
                let meta = self.fresh(start);
                self.bump();
                let inner = self.expression()?;
                let span = start.merge(inner.meta.span);
                args.push(Expr {
                    meta: NodeMeta { id: meta.id, span },
                    kind: ExprKind::Starred(Box::new(inner)),
                });
            } else if self.at(TokenKind::Name) && self.peek2_kind() == TokenKind::Assign {
                let name = self.bump().lexeme.clone();
                self.bump(); // `=`
                let value = self.expression()?;
                keywords.push(Keyword {
                    arg: Some(name),
                    value,
                });
            } else {
                let e = self.expression()?;
                // Generator argument: f(x for x in xs).
                if self.at(TokenKind::KwFor) {
                    let comp = self.comprehension_tail(CompKind::Generator, e, None)?;
                    args.push(comp);
                } else {
                    args.push(e);
                }
            }
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok((args, keywords))
    }

    fn subscript_index(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let first = self.slice_item()?;
        if !self.at(TokenKind::Comma) {
            return Ok(first);
        }
        let meta = self.fresh(start);
        let mut items = vec![first];
        while self.eat(TokenKind::Comma) {
            if self.at(TokenKind::RBracket) {
                break;
            }
            items.push(self.slice_item()?);
        }
        let span = start.merge(items.last().expect("nonempty").meta.span);
        Ok(Expr {
            meta: NodeMeta { id: meta.id, span },
            kind: ExprKind::Tuple(items),
        })
    }

    fn slice_item(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let lower = if self.at(TokenKind::Colon) {
            None
        } else {
            Some(Box::new(self.expression()?))
        };
        if !self.at(TokenKind::Colon) {
            return Ok(*lower.expect("either lower bound or colon"));
        }
        let meta = self.fresh(start);
        self.bump(); // first `:`
        let upper = if self.at(TokenKind::Colon)
            || self.at(TokenKind::RBracket)
            || self.at(TokenKind::Comma)
        {
            None
        } else {
            Some(Box::new(self.expression()?))
        };
        let step = if self.eat(TokenKind::Colon) {
            if self.at(TokenKind::RBracket) || self.at(TokenKind::Comma) {
                None
            } else {
                Some(Box::new(self.expression()?))
            }
        } else {
            None
        };
        let end = self.span_here();
        Ok(Expr {
            meta: NodeMeta {
                id: meta.id,
                span: start.merge(end),
            },
            kind: ExprKind::Slice { lower, upper, step },
        })
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        match self.peek_kind() {
            TokenKind::Name => {
                let meta = self.fresh(start);
                let name = self.bump().lexeme.clone();
                Ok(Expr {
                    meta,
                    kind: ExprKind::Name(name),
                })
            }
            TokenKind::Number => {
                let meta = self.fresh(start);
                let n = self.bump().lexeme.clone();
                Ok(Expr {
                    meta,
                    kind: ExprKind::Num(n),
                })
            }
            TokenKind::Str => {
                let meta = self.fresh(start);
                let mut s = self.bump().lexeme.clone();
                let is_fstring = s
                    .bytes()
                    .take_while(|b| !matches!(b, b'"' | b'\''))
                    .any(|b| matches!(b.to_ascii_lowercase(), b'f'));
                // Adjacent string literals concatenate.
                let mut end = start;
                while self.at(TokenKind::Str) {
                    let t = self.bump();
                    end = t.span;
                    s.push_str(&t.lexeme);
                }
                let meta = NodeMeta {
                    id: meta.id,
                    span: start.merge(end),
                };
                if is_fstring {
                    Ok(Expr {
                        meta,
                        kind: ExprKind::FString(s),
                    })
                } else {
                    Ok(Expr {
                        meta,
                        kind: ExprKind::Str(s),
                    })
                }
            }
            TokenKind::KwTrue => {
                let meta = self.fresh(start);
                self.bump();
                Ok(Expr {
                    meta,
                    kind: ExprKind::Bool(true),
                })
            }
            TokenKind::KwFalse => {
                let meta = self.fresh(start);
                self.bump();
                Ok(Expr {
                    meta,
                    kind: ExprKind::Bool(false),
                })
            }
            TokenKind::KwNone => {
                let meta = self.fresh(start);
                self.bump();
                Ok(Expr {
                    meta,
                    kind: ExprKind::NoneLit,
                })
            }
            TokenKind::Ellipsis => {
                let meta = self.fresh(start);
                self.bump();
                Ok(Expr {
                    meta,
                    kind: ExprKind::EllipsisLit,
                })
            }
            TokenKind::LParen => self.paren_atom(),
            TokenKind::LBracket => self.list_atom(),
            TokenKind::LBrace => self.brace_atom(),
            TokenKind::Star => {
                let meta = self.fresh(start);
                self.bump();
                let inner = self.expression()?;
                let span = start.merge(inner.meta.span);
                Ok(Expr {
                    meta: NodeMeta { id: meta.id, span },
                    kind: ExprKind::Starred(Box::new(inner)),
                })
            }
            TokenKind::KwLambda => self.lambda(),
            _ => Err(self.unexpected("expression")),
        }
    }

    fn paren_atom(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        self.expect(TokenKind::LParen, "`(`")?;
        if self.at(TokenKind::RParen) {
            let meta = self.fresh(start);
            let close = self.bump().span;
            return Ok(Expr {
                meta: NodeMeta {
                    id: meta.id,
                    span: start.merge(close),
                },
                kind: ExprKind::Tuple(Vec::new()),
            });
        }
        let first = self.expression()?;
        if self.at(TokenKind::KwFor) {
            let comp = self.comprehension_tail(CompKind::Generator, first, None)?;
            self.expect(TokenKind::RParen, "`)` closing generator")?;
            return Ok(comp);
        }
        if self.at(TokenKind::Comma) {
            let meta = self.fresh(start);
            let mut items = vec![first];
            while self.eat(TokenKind::Comma) {
                if self.at(TokenKind::RParen) {
                    break;
                }
                items.push(self.expression()?);
            }
            let close = self.expect(TokenKind::RParen, "`)` closing tuple")?.span;
            return Ok(Expr {
                meta: NodeMeta {
                    id: meta.id,
                    span: start.merge(close),
                },
                kind: ExprKind::Tuple(items),
            });
        }
        self.expect(TokenKind::RParen, "`)` closing parenthesised expression")?;
        Ok(first)
    }

    fn list_atom(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::LBracket, "`[`")?;
        if self.at(TokenKind::RBracket) {
            let close = self.bump().span;
            return Ok(Expr {
                meta: NodeMeta {
                    id: meta.id,
                    span: start.merge(close),
                },
                kind: ExprKind::List(Vec::new()),
            });
        }
        let first = self.expression()?;
        if self.at(TokenKind::KwFor) {
            let mut comp = self.comprehension_tail(CompKind::List, first, None)?;
            let close = self
                .expect(TokenKind::RBracket, "`]` closing list comprehension")?
                .span;
            comp.meta.span = start.merge(close);
            return Ok(comp);
        }
        let mut items = vec![first];
        while self.eat(TokenKind::Comma) {
            if self.at(TokenKind::RBracket) {
                break;
            }
            items.push(self.expression()?);
        }
        let close = self.expect(TokenKind::RBracket, "`]` closing list")?.span;
        Ok(Expr {
            meta: NodeMeta {
                id: meta.id,
                span: start.merge(close),
            },
            kind: ExprKind::List(items),
        })
    }

    fn brace_atom(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let meta = self.fresh(start);
        self.expect(TokenKind::LBrace, "`{`")?;
        if self.at(TokenKind::RBrace) {
            let close = self.bump().span;
            return Ok(Expr {
                meta: NodeMeta {
                    id: meta.id,
                    span: start.merge(close),
                },
                kind: ExprKind::Dict {
                    keys: Vec::new(),
                    values: Vec::new(),
                },
            });
        }
        // `**splat` opens a dict.
        if self.at(TokenKind::DoubleStar) {
            self.bump();
            let v = self.expression()?;
            let mut keys: Vec<Option<Expr>> = vec![None];
            let mut values = vec![v];
            while self.eat(TokenKind::Comma) {
                if self.at(TokenKind::RBrace) {
                    break;
                }
                if self.eat(TokenKind::DoubleStar) {
                    keys.push(None);
                    values.push(self.expression()?);
                } else {
                    let k = self.expression()?;
                    self.expect(TokenKind::Colon, "`:` in dict entry")?;
                    keys.push(Some(k));
                    values.push(self.expression()?);
                }
            }
            let close = self.expect(TokenKind::RBrace, "`}` closing dict")?.span;
            return Ok(Expr {
                meta: NodeMeta {
                    id: meta.id,
                    span: start.merge(close),
                },
                kind: ExprKind::Dict { keys, values },
            });
        }
        let first = self.expression()?;
        if self.eat(TokenKind::Colon) {
            let first_value = self.expression()?;
            if self.at(TokenKind::KwFor) {
                let mut comp = self.comprehension_tail(CompKind::Dict, first, Some(first_value))?;
                let close = self
                    .expect(TokenKind::RBrace, "`}` closing dict comprehension")?
                    .span;
                comp.meta.span = start.merge(close);
                return Ok(comp);
            }
            let mut keys = vec![Some(first)];
            let mut values = vec![first_value];
            while self.eat(TokenKind::Comma) {
                if self.at(TokenKind::RBrace) {
                    break;
                }
                if self.eat(TokenKind::DoubleStar) {
                    keys.push(None);
                    values.push(self.expression()?);
                } else {
                    let k = self.expression()?;
                    self.expect(TokenKind::Colon, "`:` in dict entry")?;
                    keys.push(Some(k));
                    values.push(self.expression()?);
                }
            }
            let close = self.expect(TokenKind::RBrace, "`}` closing dict")?.span;
            return Ok(Expr {
                meta: NodeMeta {
                    id: meta.id,
                    span: start.merge(close),
                },
                kind: ExprKind::Dict { keys, values },
            });
        }
        if self.at(TokenKind::KwFor) {
            let mut comp = self.comprehension_tail(CompKind::Set, first, None)?;
            let close = self
                .expect(TokenKind::RBrace, "`}` closing set comprehension")?
                .span;
            comp.meta.span = start.merge(close);
            return Ok(comp);
        }
        let mut items = vec![first];
        while self.eat(TokenKind::Comma) {
            if self.at(TokenKind::RBrace) {
                break;
            }
            items.push(self.expression()?);
        }
        let close = self.expect(TokenKind::RBrace, "`}` closing set")?.span;
        Ok(Expr {
            meta: NodeMeta {
                id: meta.id,
                span: start.merge(close),
            },
            kind: ExprKind::Set(items),
        })
    }

    fn comprehension_tail(
        &mut self,
        kind: CompKind,
        element: Expr,
        value: Option<Expr>,
    ) -> Result<Expr, ParseError> {
        let start = element.meta.span;
        let meta = self.fresh(start);
        let mut clauses = Vec::new();
        while self.at(TokenKind::KwFor) || self.at(TokenKind::KwAsync) {
            if self.at(TokenKind::KwAsync) {
                self.bump();
            }
            self.expect(TokenKind::KwFor, "`for` in comprehension")?;
            let target = self.comp_target()?;
            self.expect(TokenKind::KwIn, "`in` in comprehension")?;
            let iter = self.or_expr()?;
            let mut ifs = Vec::new();
            while self.at(TokenKind::KwIf) {
                self.bump();
                ifs.push(self.or_expr()?);
            }
            clauses.push(CompClause { target, iter, ifs });
        }
        let end = clauses.last().map(|c| c.iter.meta.span).unwrap_or(start);
        Ok(Expr {
            meta: NodeMeta {
                id: meta.id,
                span: start.merge(end),
            },
            kind: ExprKind::Comprehension {
                kind,
                element: Box::new(element),
                value: value.map(Box::new),
                clauses,
            },
        })
    }

    fn comp_target(&mut self) -> Result<Expr, ParseError> {
        let start = self.span_here();
        let first = self.postfix_expr()?;
        if !self.at(TokenKind::Comma) {
            return Ok(first);
        }
        let meta = self.fresh(start);
        let mut items = vec![first];
        while self.eat(TokenKind::Comma) {
            if self.at(TokenKind::KwIn) {
                break;
            }
            items.push(self.postfix_expr()?);
        }
        let span = start.merge(items.last().expect("nonempty").meta.span);
        Ok(Expr {
            meta: NodeMeta { id: meta.id, span },
            kind: ExprKind::Tuple(items),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        parse(src)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
            .module
    }

    fn first_stmt(src: &str) -> Stmt {
        parse_ok(src)
            .body
            .into_iter()
            .next()
            .expect("at least one statement")
    }

    #[test]
    fn parses_function_with_annotations() {
        let stmt = first_stmt("def add(a: int, b: int = 0) -> int:\n    return a + b\n");
        match stmt.kind {
            StmtKind::FunctionDef(f) => {
                assert_eq!(f.name, "add");
                assert_eq!(f.params.len(), 2);
                assert_eq!(
                    f.params[0].annotation.as_ref().unwrap().as_name(),
                    Some("int")
                );
                assert!(f.params[1].default.is_some());
                assert_eq!(f.returns.unwrap().as_name(), Some("int"));
                assert_eq!(f.body.len(), 1);
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_class_with_bases_and_methods() {
        let src = "class Foo(Base, metaclass=Meta):\n    def m(self) -> None:\n        pass\n";
        match first_stmt(src).kind {
            StmtKind::ClassDef(c) => {
                assert_eq!(c.name, "Foo");
                assert_eq!(c.bases.len(), 1);
                assert_eq!(c.keywords.len(), 1);
                assert_eq!(c.body.len(), 1);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn parses_ann_assign() {
        match first_stmt("items: List[int] = []\n").kind {
            StmtKind::AnnAssign {
                target,
                annotation,
                value,
            } => {
                assert_eq!(target.as_name(), Some("items"));
                assert_eq!(annotation.annotation_text().unwrap(), "List[int]");
                assert!(value.is_some());
            }
            other => panic!("expected ann-assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_chained_assignment() {
        match first_stmt("a = b = 1\n").kind {
            StmtKind::Assign { targets, .. } => assert_eq!(targets.len(), 2),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_aug_assign() {
        match first_stmt("total //= 2\n").kind {
            StmtKind::AugAssign { op, .. } => assert_eq!(op, "//"),
            other => panic!("expected aug-assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = "\
if a:
    x = 1
elif b:
    x = 2
else:
    x = 3
while x < 10:
    x += 1
else:
    pass
for i in range(3):
    continue
";
        let m = parse_ok(src);
        assert_eq!(m.body.len(), 3);
        match &m.body[0].kind {
            StmtKind::If { orelse, .. } => {
                assert!(matches!(orelse[0].kind, StmtKind::If { .. }), "elif nests");
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_try_except_finally() {
        let src = "\
try:
    risky()
except ValueError as e:
    handle(e)
except Exception:
    pass
else:
    ok()
finally:
    cleanup()
";
        match first_stmt(src).kind {
            StmtKind::Try {
                handlers,
                orelse,
                finalbody,
                ..
            } => {
                assert_eq!(handlers.len(), 2);
                assert_eq!(handlers[0].name.as_deref(), Some("e"));
                assert_eq!(orelse.len(), 1);
                assert_eq!(finalbody.len(), 1);
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn parses_with_as() {
        match first_stmt("with open(p) as f, lock:\n    pass\n").kind {
            StmtKind::With { items, .. } => {
                assert_eq!(items.len(), 2);
                assert!(items[0].target.is_some());
                assert!(items[1].target.is_none());
            }
            other => panic!("expected with, got {other:?}"),
        }
    }

    #[test]
    fn parses_imports() {
        let m = parse_ok("import os.path as osp, sys\nfrom typing import List, Dict as D\nfrom . import sibling\n");
        assert_eq!(m.body.len(), 3);
        match &m.body[1].kind {
            StmtKind::ImportFrom {
                module,
                names,
                level,
            } => {
                assert_eq!(module, "typing");
                assert_eq!(names.len(), 2);
                assert_eq!(names[1].asname.as_deref(), Some("D"));
                assert_eq!(*level, 0);
            }
            other => panic!("expected from-import, got {other:?}"),
        }
        match &m.body[2].kind {
            StmtKind::ImportFrom { level, .. } => assert_eq!(*level, 1),
            other => panic!("expected relative import, got {other:?}"),
        }
    }

    #[test]
    fn parses_call_with_keywords_and_splats() {
        match first_stmt("f(1, x, *rest, key=2, **opts)\n").kind {
            StmtKind::Expr(e) => match e.kind {
                ExprKind::Call { args, keywords, .. } => {
                    assert_eq!(args.len(), 3);
                    assert!(matches!(args[2].kind, ExprKind::Starred(_)));
                    assert_eq!(keywords.len(), 2);
                    assert_eq!(keywords[0].arg.as_deref(), Some("key"));
                    assert_eq!(keywords[1].arg, None);
                }
                other => panic!("expected call, got {other:?}"),
            },
            other => panic!("expected expr stmt, got {other:?}"),
        }
    }

    #[test]
    fn parses_chained_comparison() {
        match first_stmt("ok = 0 <= x < n\n").kind {
            StmtKind::Assign { value, .. } => match value.kind {
                ExprKind::Compare {
                    ops, comparators, ..
                } => {
                    assert_eq!(ops, vec![CmpOp::Le, CmpOp::Lt]);
                    assert_eq!(comparators.len(), 2);
                }
                other => panic!("expected comparison, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_is_not_and_not_in() {
        match first_stmt("ok = a is not None and b not in xs\n").kind {
            StmtKind::Assign { value, .. } => match value.kind {
                ExprKind::BoolOp { values, .. } => {
                    match &values[0].kind {
                        ExprKind::Compare { ops, .. } => assert_eq!(ops[0], CmpOp::IsNot),
                        other => panic!("expected compare, got {other:?}"),
                    }
                    match &values[1].kind {
                        ExprKind::Compare { ops, .. } => assert_eq!(ops[0], CmpOp::NotIn),
                        other => panic!("expected compare, got {other:?}"),
                    }
                }
                other => panic!("expected boolop, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_comprehensions() {
        let m = parse_ok(
            "a = [x * 2 for x in xs if x > 0]\nb = {k: v for k, v in items}\nc = {s for s in ss}\nd = (y for y in ys)\n",
        );
        let kinds: Vec<CompKind> = m
            .body
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Assign { value, .. } => match &value.kind {
                    ExprKind::Comprehension { kind, .. } => *kind,
                    other => panic!("expected comprehension, got {other:?}"),
                },
                other => panic!("expected assign, got {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                CompKind::List,
                CompKind::Dict,
                CompKind::Set,
                CompKind::Generator
            ]
        );
    }

    #[test]
    fn dict_comprehension_kind_is_dict() {
        match first_stmt("b = {k: v for k, v in items}\n").kind {
            StmtKind::Assign { value, .. } => match value.kind {
                ExprKind::Comprehension {
                    kind,
                    value: Some(_),
                    ..
                } => {
                    assert_eq!(kind, CompKind::Dict)
                }
                other => panic!("expected dict comprehension, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_lambda_and_ifexp() {
        match first_stmt("f = lambda x, y=1: x if x > y else y\n").kind {
            StmtKind::Assign { value, .. } => match value.kind {
                ExprKind::Lambda { params, body } => {
                    assert_eq!(params.len(), 2);
                    assert!(matches!(body.kind, ExprKind::IfExp { .. }));
                }
                other => panic!("expected lambda, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_slices() {
        match first_stmt("y = xs[1:n:2]\n").kind {
            StmtKind::Assign { value, .. } => match value.kind {
                ExprKind::Subscript { index, .. } => {
                    assert!(matches!(index.kind, ExprKind::Slice { .. }));
                }
                other => panic!("expected subscript, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_tuple_unpacking_for() {
        match first_stmt("for k, v in pairs:\n    pass\n").kind {
            StmtKind::For { target, .. } => {
                assert!(matches!(target.kind, ExprKind::Tuple(ref t) if t.len() == 2));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_decorators() {
        let src = "@staticmethod\n@app.route('/x')\ndef h():\n    pass\n";
        match first_stmt(src).kind {
            StmtKind::FunctionDef(f) => assert_eq!(f.decorators.len(), 2),
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_star_args_kwargs_and_kwonly() {
        let src = "def f(a, *args, b: int = 1, **kwargs):\n    pass\n";
        match first_stmt(src).kind {
            StmtKind::FunctionDef(f) => {
                let kinds: Vec<ParamKind> = f.params.iter().map(|p| p.kind).collect();
                assert_eq!(
                    kinds,
                    vec![
                        ParamKind::Plain,
                        ParamKind::VarArgs,
                        ParamKind::KwOnly,
                        ParamKind::KwArgs
                    ]
                );
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_yield_forms() {
        let src = "def g():\n    yield\n    yield 1\n    yield from other()\n";
        match first_stmt(src).kind {
            StmtKind::FunctionDef(f) => {
                let kinds: Vec<&ExprKind> = f
                    .body
                    .iter()
                    .map(|s| match &s.kind {
                        StmtKind::Expr(e) => &e.kind,
                        other => panic!("expected expr stmt, got {other:?}"),
                    })
                    .collect();
                assert!(matches!(kinds[0], ExprKind::Yield(None)));
                assert!(matches!(kinds[1], ExprKind::Yield(Some(_))));
                assert!(matches!(kinds[2], ExprKind::YieldFrom(_)));
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_async_function_and_await() {
        let src = "async def f(x):\n    return await g(x)\n";
        match first_stmt(src).kind {
            StmtKind::FunctionDef(f) => {
                assert!(f.is_async);
                match &f.body[0].kind {
                    StmtKind::Return(Some(e)) => assert!(matches!(e.kind, ExprKind::Await(_))),
                    other => panic!("expected return await, got {other:?}"),
                }
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_walrus() {
        match first_stmt("if (n := read()) > 0:\n    pass\n").kind {
            StmtKind::If { test, .. } => match test.kind {
                ExprKind::Compare { left, .. } => {
                    assert!(matches!(left.kind, ExprKind::Walrus { .. }));
                }
                other => panic!("expected compare, got {other:?}"),
            },
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_fstring_as_fstring() {
        match first_stmt("s = f'{x}!'\n").kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::FString(_)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn adjacent_strings_concatenate() {
        match first_stmt("s = 'a' 'b'\n").kind {
            StmtKind::Assign { value, .. } => match value.kind {
                ExprKind::Str(s) => assert_eq!(s, "'a''b'"),
                other => panic!("expected str, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn node_ids_are_unique() {
        let m = parse_ok("def f(a):\n    b = a + 1\n    return b * 2\n");
        let mut seen = std::collections::HashSet::new();
        // Walk statements manually; uniqueness across the ids we can reach.
        fn walk_expr(e: &Expr, seen: &mut std::collections::HashSet<u32>) {
            assert!(seen.insert(e.meta.id.0), "duplicate id {:?}", e.meta.id);
            if let ExprKind::BinOp { left, right, .. } = &e.kind {
                walk_expr(left, seen);
                walk_expr(right, seen);
            }
        }
        fn walk(stmts: &[Stmt], seen: &mut std::collections::HashSet<u32>) {
            for s in stmts {
                assert!(seen.insert(s.meta.id.0), "duplicate id {:?}", s.meta.id);
                match &s.kind {
                    StmtKind::FunctionDef(f) => walk(&f.body, seen),
                    StmtKind::Assign { value, .. } => walk_expr(value, seen),
                    StmtKind::Return(Some(v)) => walk_expr(v, seen),
                    _ => {}
                }
            }
        }
        walk(&m.body, &mut seen);
        assert!(m.node_count as usize >= seen.len());
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("def f(:\n    pass\n").is_err());
        assert!(parse("x = = 1\n").is_err());
        assert!(parse("class :\n    pass\n").is_err());
    }

    #[test]
    fn parses_inline_suite() {
        match first_stmt("if x: y = 1\n").kind {
            StmtKind::If { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_global_and_del() {
        let m = parse_ok("def f():\n    global counter\n    del cache[k]\n");
        match &m.body[0].kind {
            StmtKind::FunctionDef(f) => {
                assert!(matches!(f.body[0].kind, StmtKind::Global(_)));
                assert!(matches!(f.body[1].kind, StmtKind::Delete(_)));
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn parses_realistic_file() {
        let src = r#"
import os
from typing import Dict, List, Optional


class Config:
    """Configuration holder."""

    def __init__(self, path: str, defaults: Optional[Dict[str, str]] = None) -> None:
        self.path = path
        self.values: Dict[str, str] = dict(defaults or {})

    def load(self) -> int:
        count = 0
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith('#'):
                    continue
                key, _, value = line.partition('=')
                self.values[key.strip()] = value.strip()
                count += 1
        return count


def merge(configs: List[Config]) -> Dict[str, str]:
    merged: Dict[str, str] = {}
    for cfg in configs:
        merged.update(cfg.values)
    return merged
"#;
        let m = parse_ok(src);
        assert_eq!(m.body.len(), 4);
    }
}
