//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that downstream consumers
//! (the graph builder, the type checker, error reports) can point back into
//! the original source text.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in a source file, expressed both as a byte offset and as a
/// 1-based line / 0-based column pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pos {
    /// Byte offset from the start of the file.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 0-based column (in bytes) within the line.
    pub col: u32,
}

impl Pos {
    /// The position of the first byte of a file.
    pub const START: Pos = Pos {
        offset: 0,
        line: 1,
        col: 0,
    };

    /// Creates a position from its raw parts.
    pub fn new(offset: usize, line: u32, col: u32) -> Self {
        Pos { offset, line, col }
    }
}

impl Default for Pos {
    fn default() -> Self {
        Pos::START
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col + 1)
    }
}

/// A half-open byte range `[start, end)` in a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Start position (inclusive).
    pub start: Pos,
    /// End position (exclusive).
    pub end: Pos,
}

impl Span {
    /// Creates a span from two positions.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end` precedes `start`.
    pub fn new(start: Pos, end: Pos) -> Self {
        debug_assert!(start.offset <= end.offset, "span end precedes start");
        Span { start, end }
    }

    /// A zero-width span at the given position.
    pub fn point(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: if self.start.offset <= other.start.offset {
                self.start
            } else {
                other.start
            },
            end: if self.end.offset >= other.end.offset {
                self.end
            } else {
                other.end
            },
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.offset - self.start.offset
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the spanned text from `source`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start.offset..self.end.offset]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative() {
        let a = Span::new(Pos::new(0, 1, 0), Pos::new(4, 1, 4));
        let b = Span::new(Pos::new(2, 1, 2), Pos::new(9, 1, 9));
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b).len(), 9);
    }

    #[test]
    fn text_extraction() {
        let src = "hello world";
        let s = Span::new(Pos::new(6, 1, 6), Pos::new(11, 1, 11));
        assert_eq!(s.text(src), "world");
    }

    #[test]
    fn display_positions() {
        let p = Pos::new(10, 3, 4);
        assert_eq!(p.to_string(), "3:5");
    }

    #[test]
    fn point_span_is_empty() {
        assert!(Span::point(Pos::START).is_empty());
    }
}
