//! Parse errors.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Categories of lexing/parsing failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseErrorKind {
    /// A character outside the supported Python subset.
    UnexpectedChar(char),
    /// A string literal without a closing quote.
    UnterminatedString,
    /// A dedent to an indentation level that was never opened.
    InconsistentIndentation,
    /// The parser found a token it cannot use here.
    UnexpectedToken {
        /// What the parser found (display form of the token).
        found: String,
        /// What the parser was trying to parse.
        expected: String,
    },
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A construct that is valid Python but outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::InconsistentIndentation => write!(f, "inconsistent indentation"),
            ParseErrorKind::UnexpectedToken { found, expected } => {
                write!(f, "unexpected token {found} while parsing {expected}")
            }
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

/// An error produced while lexing or parsing, with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    kind: ParseErrorKind,
    span: Span,
}

impl ParseError {
    /// Creates an error at a location.
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }

    /// What went wrong.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// Where it went wrong.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span.start)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new(
            ParseErrorKind::UnexpectedEof,
            Span::point(Pos::new(5, 2, 1)),
        );
        assert_eq!(e.to_string(), "unexpected end of input at 2:2");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseError>();
    }
}
