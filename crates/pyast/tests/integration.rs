//! Cross-module integration tests: realistic files through the full
//! lexer → parser → symbol-table pipeline.

use typilus_pyast::{parse, ScopeKind, SymbolKind, SymbolTable};

#[test]
fn async_constructs() {
    let src = "\
async def fetch(url: str) -> bytes:
    async with session.get(url) as resp:
        data = await resp.read()
    async for chunk in stream:
        print(chunk)
    return data
";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    assert!(table.symbols().iter().any(|s| s.name == "data"));
    assert!(table.symbols().iter().any(|s| s.name == "chunk"));
}

#[test]
fn deeply_nested_functions_resolve_outward() {
    let src = "\
def outer():
    base = 10
    def middle():
        def inner():
            return base
        return inner
    return middle
";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    let base = table
        .symbols()
        .iter()
        .find(|s| s.name == "base" && s.kind == SymbolKind::Variable)
        .unwrap();
    assert_eq!(
        base.occurrences.len(),
        2,
        "definition + closure read two scopes down"
    );
}

#[test]
fn class_in_function_in_class() {
    let src = "\
class Outer:
    def factory(self):
        class Inner:
            def get(self) -> int:
                return 1
        return Inner
";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    let class_scopes = table
        .scopes()
        .iter()
        .filter(|s| s.kind == ScopeKind::Class)
        .count();
    assert_eq!(class_scopes, 2);
}

#[test]
fn dict_splats_and_starred_calls() {
    let src = "\
defaults = {'a': 1}
options = {**defaults, 'b': 2}
args = [1, 2]
f(*args, **options)
";
    parse(src).unwrap();
}

#[test]
fn slices_with_steps_and_chains() {
    let src = "\
m = grid[1:10:2]
v = grid[::2]
w = matrix[0][1:]
x = tensor[1:, :2]
";
    parse(src).unwrap();
}

#[test]
fn conditional_definitions() {
    let src = "\
if PY3:
    def encode(s: str) -> bytes:
        return s.encode()
else:
    def encode(s):
        return s
";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    // Both defs bind the same module-level function symbol.
    let encodes: Vec<_> = table
        .symbols()
        .iter()
        .filter(|s| s.name == "encode" && s.kind == SymbolKind::Function)
        .collect();
    assert_eq!(encodes.len(), 1);
    assert_eq!(encodes[0].occurrences.len(), 2);
}

#[test]
fn multiline_argument_lists() {
    let src = "\
result = compute(
    first_value,
    second_value,
    key=lambda item: item.weight,
)
";
    parse(src).unwrap();
}

#[test]
fn annotations_with_nested_generics_survive_round_trip() {
    let src =
        "def f(m: Dict[str, List[Tuple[int, Optional[str]]]]) -> Callable[[int], str]:\n    pass\n";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    let m = table.symbols().iter().find(|s| s.name == "m").unwrap();
    assert_eq!(
        m.annotation.as_deref(),
        Some("Dict[str, List[Tuple[int, Optional[str]]]]")
    );
    let ret = table
        .symbols()
        .iter()
        .find(|s| s.kind == SymbolKind::Return)
        .unwrap();
    assert_eq!(ret.annotation.as_deref(), Some("Callable[[int], str]"));
}

#[test]
fn del_and_assert_and_raise_from() {
    let src = "\
def f(cache, key, cond):
    assert cond, 'must hold'
    try:
        del cache[key]
    except KeyError as e:
        raise RuntimeError('gone') from e
";
    parse(src).unwrap();
}

#[test]
fn string_prefix_zoo() {
    let src = "a = r'raw'\nb = b'bytes'\nc = rb'both'\nd = f'fmt {x}'\ne = u'uni'\n";
    parse(src).unwrap();
}

#[test]
fn empty_class_and_ellipsis_bodies() {
    let src = "\
class Marker:
    ...

def stub() -> int:
    ...
";
    let parsed = parse(src).unwrap();
    assert_eq!(parsed.module.body.len(), 2);
}

#[test]
fn keyword_only_and_positional_only_parameters() {
    let src = "def f(a, /, b, *, c: int = 1):\n    return a\n";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    let c = table.symbols().iter().find(|s| s.name == "c").unwrap();
    assert_eq!(c.kind, SymbolKind::Parameter);
    assert_eq!(c.annotation.as_deref(), Some("int"));
}
