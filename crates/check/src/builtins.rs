//! Builtin function and method signatures used by the type inferencer.
//!
//! A pragmatic subset of CPython's builtins: enough for the checker to
//! reason about idiomatic annotated code (string/collection methods,
//! constructors, `len`/`range`/`sorted`/...).

use typilus_types::PyType;

fn named(n: &str) -> PyType {
    PyType::named(n)
}

fn generic(n: &str, args: Vec<PyType>) -> PyType {
    PyType::generic(n, args)
}

/// Result of looking up an attribute/method on a receiver type.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodLookup {
    /// The method exists and returns this type when called.
    Returns(PyType),
    /// The receiver type is tracked and has no such attribute — an
    /// attribute error.
    UnknownAttribute,
    /// The receiver type is not tracked; no conclusion.
    NotTracked,
}

/// First type argument of a generic, defaulting to `Any`.
fn arg0(ty: &PyType) -> PyType {
    match ty {
        PyType::Named { args, .. } if !args.is_empty() => args[0].clone(),
        _ => PyType::Any,
    }
}

/// Second type argument of a generic, defaulting to `Any`.
fn arg1(ty: &PyType) -> PyType {
    match ty {
        PyType::Named { args, .. } if args.len() > 1 => args[1].clone(),
        _ => PyType::Any,
    }
}

/// Looks up a method/attribute on a receiver of a known type.
pub fn method_on(receiver: &PyType, method: &str) -> MethodLookup {
    use MethodLookup::*;
    let base = receiver.base_name();
    match base {
        "str" => match method {
            "upper" | "lower" | "strip" | "lstrip" | "rstrip" | "title" | "capitalize"
            | "replace" | "join" | "format" | "zfill" | "center" | "ljust" | "rjust"
            | "casefold" | "swapcase" | "expandtabs" | "format_map" | "translate" => {
                Returns(named("str"))
            }
            "split" | "rsplit" | "splitlines" => Returns(generic("List", vec![named("str")])),
            "partition" | "rpartition" => Returns(generic(
                "Tuple",
                vec![named("str"), named("str"), named("str")],
            )),
            "startswith" | "endswith" | "isdigit" | "isalpha" | "isalnum" | "islower"
            | "isupper" | "isspace" | "istitle" | "isidentifier" | "isnumeric" | "isdecimal"
            | "isprintable" | "isascii" => Returns(named("bool")),
            "find" | "rfind" | "index" | "rindex" | "count" => Returns(named("int")),
            "encode" => Returns(named("bytes")),
            _ => UnknownAttribute,
        },
        "bytes" | "bytearray" => match method {
            "decode" => Returns(named("str")),
            "hex" => Returns(named("str")),
            "split" => Returns(generic("List", vec![named("bytes")])),
            "startswith" | "endswith" => Returns(named("bool")),
            "find" | "count" | "index" => Returns(named("int")),
            "strip" | "lstrip" | "rstrip" | "upper" | "lower" | "replace" => {
                Returns(named("bytes"))
            }
            _ => UnknownAttribute,
        },
        "List" => match method {
            "append" | "extend" | "insert" | "clear" | "sort" | "reverse" | "remove" => {
                Returns(PyType::None)
            }
            "pop" => Returns(arg0(receiver)),
            "index" | "count" => Returns(named("int")),
            "copy" => Returns(receiver.clone()),
            _ => UnknownAttribute,
        },
        "Dict" => match method {
            "get" => Returns(PyType::optional(arg1(receiver))),
            "keys" => Returns(generic("Iterable", vec![arg0(receiver)])),
            "values" => Returns(generic("Iterable", vec![arg1(receiver)])),
            "items" => Returns(generic(
                "Iterable",
                vec![generic("Tuple", vec![arg0(receiver), arg1(receiver)])],
            )),
            "pop" | "setdefault" => Returns(arg1(receiver)),
            "update" | "clear" => Returns(PyType::None),
            "copy" => Returns(receiver.clone()),
            "popitem" => Returns(generic("Tuple", vec![arg0(receiver), arg1(receiver)])),
            _ => UnknownAttribute,
        },
        "Set" | "FrozenSet" => match method {
            "add" | "discard" | "clear" | "remove" | "update" => Returns(PyType::None),
            "pop" => Returns(arg0(receiver)),
            "union" | "intersection" | "difference" | "symmetric_difference" | "copy" => {
                Returns(receiver.clone())
            }
            "issubset" | "issuperset" | "isdisjoint" => Returns(named("bool")),
            _ => UnknownAttribute,
        },
        "int" => match method {
            "bit_length" | "bit_count" => Returns(named("int")),
            "to_bytes" => Returns(named("bytes")),
            _ => UnknownAttribute,
        },
        "float" => match method {
            "is_integer" => Returns(named("bool")),
            "hex" => Returns(named("str")),
            _ => UnknownAttribute,
        },
        "bool" => match method {
            "bit_length" => Returns(named("int")),
            _ => UnknownAttribute,
        },
        _ => NotTracked,
    }
}

/// Return type of a call to a builtin function, given (possibly unknown)
/// argument types. `None` means the name is not a tracked builtin.
pub fn builtin_call(name: &str, args: &[Option<PyType>]) -> Option<PyType> {
    let first = args.first().and_then(|a| a.clone());
    Some(match name {
        "len" | "id" | "hash" | "ord" => named("int"),
        "abs" => first.unwrap_or(PyType::Any),
        "round" => match &first {
            // round(x) -> int; round(x, n) -> float.
            _ if args.len() >= 2 => named("float"),
            _ => named("int"),
        },
        "min" | "max" | "sum" => match &first {
            Some(t) if t.base_name() == "List" || t.base_name() == "Set" => arg0(t),
            Some(t) if args.len() > 1 => t.clone(),
            _ => PyType::Any,
        },
        "sorted" => match &first {
            Some(t) => generic("List", vec![element_of(t).unwrap_or(PyType::Any)]),
            None => named("List"),
        },
        "reversed" | "iter" => match &first {
            Some(t) => generic("Iterator", vec![element_of(t).unwrap_or(PyType::Any)]),
            None => named("Iterator"),
        },
        "next" => match &first {
            Some(t) if t.base_name() == "Iterator" || t.base_name() == "Generator" => arg0(t),
            _ => PyType::Any,
        },
        "enumerate" => generic(
            "Iterator",
            vec![generic(
                "Tuple",
                vec![
                    named("int"),
                    first.as_ref().and_then(element_of).unwrap_or(PyType::Any),
                ],
            )],
        ),
        "zip" | "map" | "filter" => named("Iterator"),
        "range" => named("range"),
        "print" => PyType::None,
        "input" => named("str"),
        "open" => named("IO"),
        "isinstance" | "issubclass" | "callable" | "hasattr" | "any" | "all" => named("bool"),
        "repr" | "chr" | "format" | "hex" | "oct" | "bin" | "ascii" => named("str"),
        "str" => named("str"),
        "int" => named("int"),
        "float" => named("float"),
        "bool" => named("bool"),
        "bytes" => named("bytes"),
        "complex" => named("complex"),
        "list" => match &first {
            Some(t) => generic("List", vec![element_of(t).unwrap_or(PyType::Any)]),
            None => named("List"),
        },
        "set" => match &first {
            Some(t) => generic("Set", vec![element_of(t).unwrap_or(PyType::Any)]),
            None => named("Set"),
        },
        "tuple" => named("Tuple"),
        "dict" => named("Dict"),
        "frozenset" => named("FrozenSet"),
        "type" => named("Type"),
        "vars" | "globals" | "locals" => generic("Dict", vec![named("str"), PyType::Any]),
        "getattr" | "setattr" | "delattr" | "eval" | "exec" => PyType::Any,
        _ => return None,
    })
}

/// The element type produced by iterating a value of type `ty`, if the
/// type is known iterable; `None` when iteration is not understood.
pub fn element_of(ty: &PyType) -> Option<PyType> {
    match ty.base_name() {
        "List" | "Set" | "FrozenSet" | "Sequence" | "Iterable" | "Iterator" | "Generator"
        | "MutableSequence" | "Collection" | "AbstractSet" | "MutableSet" => Some(arg0(ty)),
        "Dict" | "Mapping" | "MutableMapping" => Some(arg0(ty)),
        "Tuple" => match ty {
            PyType::Named { args, .. } if !args.is_empty() => Some(PyType::union(args.clone())),
            _ => Some(PyType::Any),
        },
        "str" => Some(PyType::named("str")),
        "bytes" => Some(PyType::named("int")),
        "range" => Some(PyType::named("int")),
        "IO" => Some(PyType::named("str")),
        _ => None,
    }
}

/// Whether a value of type `ty` is known to be non-iterable (iterating it
/// is an error in both checker profiles).
pub fn known_not_iterable(ty: &PyType) -> bool {
    matches!(ty.base_name(), "int" | "float" | "bool" | "complex") || *ty == PyType::None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> PyType {
        s.parse().unwrap()
    }

    #[test]
    fn str_methods() {
        assert_eq!(
            method_on(&t("str"), "upper"),
            MethodLookup::Returns(t("str"))
        );
        assert_eq!(
            method_on(&t("str"), "split"),
            MethodLookup::Returns(t("List[str]"))
        );
        assert_eq!(
            method_on(&t("str"), "append"),
            MethodLookup::UnknownAttribute
        );
    }

    #[test]
    fn container_methods_track_elements() {
        assert_eq!(
            method_on(&t("List[int]"), "pop"),
            MethodLookup::Returns(t("int"))
        );
        assert_eq!(
            method_on(&t("Dict[str, int]"), "get"),
            MethodLookup::Returns(t("Optional[int]"))
        );
        assert_eq!(
            method_on(&t("Set[bytes]"), "pop"),
            MethodLookup::Returns(t("bytes"))
        );
    }

    #[test]
    fn untracked_receivers_are_not_flagged() {
        assert_eq!(
            method_on(&t("torch.Tensor"), "backward"),
            MethodLookup::NotTracked
        );
    }

    #[test]
    fn builtin_calls() {
        assert_eq!(builtin_call("len", &[Some(t("List[int]"))]), Some(t("int")));
        assert_eq!(
            builtin_call("sorted", &[Some(t("Set[str]"))]),
            Some(t("List[str]"))
        );
        assert_eq!(builtin_call("range", &[Some(t("int"))]), Some(t("range")));
        assert_eq!(builtin_call("unknown_fn", &[]), None);
    }

    #[test]
    fn iteration_elements() {
        assert_eq!(element_of(&t("List[str]")), Some(t("str")));
        assert_eq!(element_of(&t("Dict[str, int]")), Some(t("str")));
        assert_eq!(element_of(&t("str")), Some(t("str")));
        assert_eq!(element_of(&t("range")), Some(t("int")));
        assert_eq!(
            element_of(&t("Tuple[int, str]")),
            Some(t("Union[int, str]"))
        );
        assert_eq!(element_of(&t("CustomThing")), None);
    }

    #[test]
    fn non_iterables() {
        assert!(known_not_iterable(&t("int")));
        assert!(known_not_iterable(&PyType::None));
        assert!(!known_not_iterable(&t("List[int]")));
        assert!(!known_not_iterable(&t("Custom")));
    }
}
