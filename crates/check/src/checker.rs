//! The optional type checker: statement walking and issue reporting.
//!
//! Two profiles mirror the paper's two checkers (Sec. 6.3): the
//! mypy-like profile reasons only from explicit annotations; the
//! pytype-like profile additionally infers types of unannotated locals
//! from assignments, so it can disprove more type assignments. Both are
//! best-effort and silent wherever the partial context leaves a type
//! unknown — the defining property of optional typing.

use crate::builtins::{element_of, known_not_iterable, method_on, MethodLookup};
use crate::env::TypeEnv;
use crate::infer::{binop_valid, Inferencer};
use typilus_pyast::ast::{Expr, ExprKind, NodeId, Stmt, StmtKind};
use typilus_pyast::symtable::{SymbolId, SymbolKind, SymbolTable};
use typilus_pyast::{Parsed, Span};
use typilus_types::{PyType, TypeHierarchy};

/// Which checker to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckerProfile {
    /// Annotation-driven only (mypy-like).
    Mypy,
    /// Annotation-driven plus local type inference (pytype-like).
    Pytype,
}

/// Category of a reported type error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueCode {
    /// Assigned value is not a subtype of the declared target type.
    IncompatibleAssignment,
    /// Returned value is not a subtype of the declared return type.
    IncompatibleReturn,
    /// Function declares a non-optional return type but never returns.
    MissingReturn,
    /// Call argument incompatible with the declared parameter type.
    BadArgument,
    /// Call has too many / too few positional arguments.
    WrongArity,
    /// Keyword argument name not accepted by the callee.
    UnknownKeyword,
    /// Binary operation between incompatible types.
    InvalidOperand,
    /// Iterating a value known not to be iterable.
    NotIterable,
    /// Attribute not present on the receiver's type.
    AttrError,
    /// Subscripting a non-subscriptable value.
    NotSubscriptable,
}

/// One reported type error.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeIssue {
    /// Where the error was detected.
    pub span: Span,
    /// Error category.
    pub code: IssueCode,
    /// Human-readable description.
    pub message: String,
}

/// The optional type checker.
#[derive(Debug, Clone, Copy)]
pub struct TypeChecker {
    /// The emulated checker profile.
    pub profile: CheckerProfile,
}

impl TypeChecker {
    /// Creates a checker with the given profile.
    pub fn new(profile: CheckerProfile) -> TypeChecker {
        TypeChecker { profile }
    }

    /// Checks a module as written.
    pub fn check(&self, parsed: &Parsed, table: &SymbolTable) -> Vec<TypeIssue> {
        let mut hierarchy = TypeHierarchy::new();
        let env = TypeEnv::build(parsed, table, &mut hierarchy);
        self.check_with_env(parsed, table, &env, &hierarchy)
    }

    /// Checks a module after substituting `ty` as the annotation of
    /// `symbol` — one step of the paper's Sec. 6.3 experiment.
    pub fn check_with_override(
        &self,
        parsed: &Parsed,
        table: &SymbolTable,
        symbol: SymbolId,
        ty: PyType,
    ) -> Vec<TypeIssue> {
        let mut hierarchy = TypeHierarchy::new();
        let mut env = TypeEnv::build(parsed, table, &mut hierarchy);
        env.override_symbol(symbol, ty);
        self.check_with_env(parsed, table, &env, &hierarchy)
    }

    /// Checks a module under an explicit environment.
    pub fn check_with_env(
        &self,
        parsed: &Parsed,
        table: &SymbolTable,
        env: &TypeEnv,
        hierarchy: &TypeHierarchy,
    ) -> Vec<TypeIssue> {
        let mut inferencer = Inferencer::new(env, table, hierarchy);
        if self.profile == CheckerProfile::Pytype {
            inferencer.infer_locals(&parsed.module.body);
        }
        let mut walker = Walker {
            inf: inferencer,
            env,
            table,
            hierarchy,
            issues: Vec::new(),
            func_stack: Vec::new(),
        };
        walker.check_block(&parsed.module.body);
        walker.issues
    }
}

struct Walker<'a> {
    inf: Inferencer<'a>,
    env: &'a TypeEnv,
    table: &'a SymbolTable,
    hierarchy: &'a TypeHierarchy,
    issues: Vec<TypeIssue>,
    func_stack: Vec<NodeId>,
}

impl Walker<'_> {
    fn report(&mut self, span: Span, code: IssueCode, message: impl Into<String>) {
        self.issues.push(TypeIssue {
            span,
            code,
            message: message.into(),
        });
    }

    fn assignable(&self, value: &PyType, declared: &PyType) -> bool {
        self.hierarchy.is_subtype(value, declared)
    }

    fn check_block(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.check_stmt(stmt);
        }
    }

    fn check_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::FunctionDef(f) => {
                for d in &f.decorators {
                    self.check_expr(d);
                }
                for p in &f.params {
                    if let (Some(default), Some(sym)) =
                        (&p.default, self.table.symbol_at(p.name_span))
                    {
                        self.check_expr(default);
                        if let (Some(dt), Some(declared)) =
                            (self.inf.infer(default), self.env.type_of(sym.id))
                        {
                            // `x: T = None` is conventionally allowed as
                            // an implicit Optional by both checkers.
                            if dt != PyType::None && !self.assignable(&dt, declared) {
                                self.report(
                                    p.name_span,
                                    IssueCode::IncompatibleAssignment,
                                    format!(
                                        "default of type {dt} incompatible with parameter annotation {declared}"
                                    ),
                                );
                            }
                        }
                    }
                }
                self.func_stack.push(stmt.meta.id);
                self.check_block(&f.body);
                self.func_stack.pop();
                self.check_missing_return(stmt, f);
            }
            StmtKind::ClassDef(c) => self.check_block(&c.body),
            StmtKind::Return(value) => {
                if let Some(v) = value {
                    self.check_expr(v);
                }
                self.check_return(stmt, value.as_ref());
            }
            StmtKind::Assign { targets, value } => {
                self.check_expr(value);
                for target in targets {
                    self.check_expr(target);
                    self.check_assignment(target, value);
                }
            }
            StmtKind::AnnAssign {
                target,
                value: Some(v),
                ..
            } => {
                self.check_expr(v);
                self.check_assignment(target, v);
            }
            StmtKind::AnnAssign { .. } => {}
            StmtKind::AugAssign { target, op, value } => {
                self.check_expr(target);
                self.check_expr(value);
                if let (Some(tt), Some(vt)) = (self.infer_target(target), self.inf.infer(value)) {
                    if let Some(binop) = aug_op(op) {
                        if !binop_valid(binop, &tt, &vt) {
                            self.report(
                                stmt.meta.span,
                                IssueCode::InvalidOperand,
                                format!("unsupported operand types for {op}=: {tt} and {vt}"),
                            );
                        }
                    }
                }
            }
            StmtKind::For {
                target,
                iter,
                body,
                orelse,
                ..
            } => {
                self.check_expr(iter);
                if let Some(it) = self.inf.infer(iter) {
                    if known_not_iterable(&it) {
                        self.report(
                            iter.meta.span,
                            IssueCode::NotIterable,
                            format!("{it} is not iterable"),
                        );
                    } else if let (Some(elem), Some(name)) = (element_of(&it), target.as_name()) {
                        // Loop variable with an explicit annotation.
                        if let Some(declared) = self.inf.symbol_type(target.meta.span) {
                            if self
                                .table
                                .symbol_at(target.meta.span)
                                .and_then(|s| s.annotation.as_ref())
                                .is_some()
                                && !self.assignable(&elem, &declared)
                            {
                                self.report(
                                    target.meta.span,
                                    IssueCode::IncompatibleAssignment,
                                    format!("loop variable {name}: iterating {it} yields {elem}, not {declared}"),
                                );
                            }
                        }
                    }
                }
                self.check_block(body);
                self.check_block(orelse);
            }
            StmtKind::While { test, body, orelse } => {
                self.check_expr(test);
                self.check_block(body);
                self.check_block(orelse);
            }
            StmtKind::If { test, body, orelse } => {
                self.check_expr(test);
                // Flow-sensitive Optional narrowing, as both mypy and
                // pytype perform: `x is None` / `x is not None` /
                // truthiness tests split Union[T, None] across branches.
                match self.narrowing_from_test(test) {
                    Some((sym, then_ty, else_ty)) => {
                        let prev = match then_ty {
                            Some(t) => Some(self.inf.narrow(sym, t)),
                            None => None,
                        };
                        self.check_block(body);
                        if let Some(p) = prev {
                            self.inf.restore(sym, p);
                        }
                        let prev = match else_ty {
                            Some(t) => Some(self.inf.narrow(sym, t)),
                            None => None,
                        };
                        self.check_block(orelse);
                        if let Some(p) = prev {
                            self.inf.restore(sym, p);
                        }
                    }
                    None => {
                        self.check_block(body);
                        self.check_block(orelse);
                    }
                }
            }
            StmtKind::With { items, body } => {
                for item in items {
                    self.check_expr(&item.context);
                }
                self.check_block(body);
            }
            StmtKind::Raise { exc, cause } => {
                for e in [exc, cause].into_iter().flatten() {
                    self.check_expr(e);
                }
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                self.check_block(body);
                for h in handlers {
                    self.check_block(&h.body);
                }
                self.check_block(orelse);
                self.check_block(finalbody);
            }
            StmtKind::Assert { test, msg } => {
                self.check_expr(test);
                if let Some(m) = msg {
                    self.check_expr(m);
                }
            }
            StmtKind::Expr(e) => self.check_expr(e),
            StmtKind::Delete(targets) => {
                for t in targets {
                    self.check_expr(t);
                }
            }
            _ => {}
        }
    }

    /// Extracts an Optional-narrowing from an `if` test: returns the
    /// symbol plus the types to assume in the then- and else-branches.
    /// Only fires when the tested symbol currently has an Optional type.
    fn narrowing_from_test(
        &self,
        test: &Expr,
    ) -> Option<(SymbolId, Option<PyType>, Option<PyType>)> {
        use typilus_pyast::ast::CmpOp;
        let (name_expr, op) = match &test.kind {
            ExprKind::Compare {
                left,
                ops,
                comparators,
            } if ops.len() == 1
                && matches!(ops[0], CmpOp::Is | CmpOp::IsNot)
                && matches!(comparators[0].kind, ExprKind::NoneLit) =>
            {
                (left.as_ref(), Some(ops[0]))
            }
            ExprKind::Name(_) => (test, None),
            _ => return None,
        };
        let sym = self.table.symbol_at(name_expr.meta.span)?;
        let current = self.inf.symbol_type(name_expr.meta.span)?;
        let PyType::Union(members) = &current else {
            return None;
        };
        if !members.contains(&PyType::None) {
            return None;
        }
        let stripped = PyType::union(
            members
                .iter()
                .filter(|m| **m != PyType::None)
                .cloned()
                .collect(),
        );
        Some(match op {
            Some(CmpOp::Is) => (sym.id, Some(PyType::None), Some(stripped)),
            Some(CmpOp::IsNot) => (sym.id, Some(stripped), Some(PyType::None)),
            // `if x:` — truthy branch excludes None; the falsy branch
            // may still be a falsy T, so it stays unnarrowed.
            _ => (sym.id, Some(stripped), None),
        })
    }

    /// The declared/inferred type of an assignment target.
    fn infer_target(&self, target: &Expr) -> Option<PyType> {
        match &target.kind {
            ExprKind::Name(_) => self.inf.symbol_type(target.meta.span),
            ExprKind::Attribute { attr_span, .. } => self.inf.symbol_type(*attr_span),
            _ => self.inf.infer(target),
        }
    }

    fn check_assignment(&mut self, target: &Expr, value: &Expr) {
        match &target.kind {
            ExprKind::Name(name) => {
                let Some(sym) = self.table.symbol_at(target.meta.span) else {
                    return;
                };
                let Some(declared) = self.env.type_of(sym.id) else {
                    return;
                };
                let Some(vt) = self.inf.infer(value) else {
                    return;
                };
                if !self.assignable(&vt, declared) {
                    self.report(
                        target.meta.span,
                        IssueCode::IncompatibleAssignment,
                        format!("cannot assign {vt} to {name}: {declared}"),
                    );
                }
            }
            ExprKind::Attribute {
                value: recv,
                attr,
                attr_span,
            } => {
                if recv.as_name() != Some("self") {
                    return;
                }
                let Some(sym) = self.table.symbol_at(*attr_span) else {
                    return;
                };
                let Some(declared) = self.env.type_of(sym.id) else {
                    return;
                };
                let Some(vt) = self.inf.infer(value) else {
                    return;
                };
                if !self.assignable(&vt, declared) {
                    self.report(
                        *attr_span,
                        IssueCode::IncompatibleAssignment,
                        format!("cannot assign {vt} to self.{attr}: {declared}"),
                    );
                }
            }
            ExprKind::Tuple(items) => {
                // Pairwise when the value is a literal tuple.
                if let ExprKind::Tuple(values) = &value.kind {
                    if items.len() == values.len() {
                        for (t, v) in items.iter().zip(values) {
                            self.check_assignment(t, v);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn check_return(&mut self, stmt: &Stmt, value: Option<&Expr>) {
        let Some(&func) = self.func_stack.last() else {
            return;
        };
        let Some(&ret_sym) = self.env.return_symbols.get(&func) else {
            return;
        };
        let Some(declared) = self.env.type_of(ret_sym) else {
            return;
        };
        if *declared == PyType::Any {
            return;
        }
        let vt = match value {
            Some(v) => match self.inf.infer(v) {
                Some(t) => t,
                None => return,
            },
            None => PyType::None,
        };
        if !self.assignable(&vt, declared) {
            self.report(
                stmt.meta.span,
                IssueCode::IncompatibleReturn,
                format!("returning {vt} from a function declared to return {declared}"),
            );
        }
    }

    fn check_missing_return(&mut self, stmt: &Stmt, f: &typilus_pyast::ast::FunctionDef) {
        let Some(&ret_sym) = self.env.return_symbols.get(&stmt.meta.id) else {
            return;
        };
        let Some(declared) = self.env.type_of(ret_sym) else {
            return;
        };
        if *declared == PyType::None
            || *declared == PyType::Any
            || matches!(declared, PyType::Union(members) if members.contains(&PyType::None))
            || matches!(
                declared.base_name(),
                "Generator" | "Iterator" | "Iterable" | "Coroutine" | "Awaitable"
            )
        {
            return;
        }
        if f.is_async {
            return;
        }
        if !(body_returns_value(&f.body) || body_yields(&f.body)) {
            self.report(
                f.name_span,
                IssueCode::MissingReturn,
                format!("function declared to return {declared} never returns a value"),
            );
        }
    }

    fn check_expr(&mut self, expr: &Expr) {
        match &expr.kind {
            ExprKind::BinOp { left, op, right } => {
                self.check_expr(left);
                self.check_expr(right);
                if let (Some(lt), Some(rt)) = (self.inf.infer(left), self.inf.infer(right)) {
                    if !binop_valid(*op, &lt, &rt) {
                        self.report(
                            expr.meta.span,
                            IssueCode::InvalidOperand,
                            format!(
                                "unsupported operand types for {}: {lt} and {rt}",
                                op.symbol()
                            ),
                        );
                    }
                }
            }
            ExprKind::Call {
                func,
                args,
                keywords,
            } => {
                self.check_expr(func);
                for a in args {
                    self.check_expr(a);
                }
                for k in keywords {
                    self.check_expr(&k.value);
                }
                self.check_call(expr, func, args, keywords);
            }
            ExprKind::Attribute {
                value,
                attr,
                attr_span,
            } => {
                self.check_expr(value);
                // A member access `self.x` resolves via the symbol table.
                if self.table.symbol_at(*attr_span).is_some() {
                    return;
                }
                if let Some(recv) = self.inf.infer(value) {
                    if matches!(method_on(&recv, attr), MethodLookup::UnknownAttribute) {
                        self.report(
                            *attr_span,
                            IssueCode::AttrError,
                            format!("{recv} has no attribute `{attr}`"),
                        );
                    }
                }
            }
            ExprKind::Subscript { value, index } => {
                self.check_expr(value);
                self.check_expr(index);
                if let Some(recv) = self.inf.infer(value) {
                    if known_not_iterable(&recv) {
                        self.report(
                            expr.meta.span,
                            IssueCode::NotSubscriptable,
                            format!("{recv} is not subscriptable"),
                        );
                    }
                }
            }
            // Recurse generically for everything else.
            ExprKind::Tuple(items) | ExprKind::List(items) | ExprKind::Set(items) => {
                for e in items {
                    self.check_expr(e);
                }
            }
            ExprKind::Dict { keys, values } => {
                for k in keys.iter().flatten() {
                    self.check_expr(k);
                }
                for v in values {
                    self.check_expr(v);
                }
            }
            ExprKind::UnaryOp { operand, .. } => self.check_expr(operand),
            ExprKind::BoolOp { values, .. } => {
                for v in values {
                    self.check_expr(v);
                }
            }
            ExprKind::Compare {
                left, comparators, ..
            } => {
                self.check_expr(left);
                for c in comparators {
                    self.check_expr(c);
                }
            }
            ExprKind::Slice { lower, upper, step } => {
                for e in [lower, upper, step].into_iter().flatten() {
                    self.check_expr(e);
                }
            }
            ExprKind::Lambda { body, .. } => self.check_expr(body),
            ExprKind::IfExp { test, body, orelse } => {
                self.check_expr(test);
                self.check_expr(body);
                self.check_expr(orelse);
            }
            ExprKind::Starred(inner) => self.check_expr(inner),
            ExprKind::Comprehension {
                element,
                value,
                clauses,
                ..
            } => {
                for c in clauses {
                    self.check_expr(&c.iter);
                    for i in &c.ifs {
                        self.check_expr(i);
                    }
                }
                self.check_expr(element);
                if let Some(v) = value {
                    self.check_expr(v);
                }
            }
            ExprKind::Yield(Some(v)) => self.check_expr(v),
            ExprKind::YieldFrom(v) | ExprKind::Await(v) => self.check_expr(v),
            ExprKind::Walrus { value, .. } => self.check_expr(value),
            _ => {}
        }
    }

    fn check_call(
        &mut self,
        call: &Expr,
        func: &Expr,
        args: &[Expr],
        keywords: &[typilus_pyast::ast::Keyword],
    ) {
        // Resolve the callee's signature.
        let (sig_sym, skip_receiver) = match &func.kind {
            ExprKind::Name(_) => {
                let Some(sym) = self.table.symbol_at(func.meta.span) else {
                    return;
                };
                match sym.kind {
                    SymbolKind::Function => (sym.id, false),
                    SymbolKind::Class => {
                        // Constructor: check against __init__ skipping self.
                        match self.env.methods.get(&(sym.name.clone(), "__init__".into())) {
                            Some(&init) => (init, true),
                            None => return,
                        }
                    }
                    _ => return,
                }
            }
            ExprKind::Attribute { value, attr, .. } => {
                let Some(recv) = self.inf.infer(value) else {
                    return;
                };
                let PyType::Named { name, .. } = &recv else {
                    return;
                };
                match self.env.methods.get(&(name.clone(), attr.clone())) {
                    Some(&m) => (m, true),
                    None => return,
                }
            }
            _ => return,
        };
        let Some(sig) = self.env.functions.get(&sig_sym) else {
            return;
        };
        let params: Vec<_> = if skip_receiver && sig.is_method {
            sig.params.iter().skip(1).collect()
        } else {
            sig.params.iter().collect()
        };
        let has_splat = args.iter().any(|a| matches!(a.kind, ExprKind::Starred(_)))
            || keywords.iter().any(|k| k.arg.is_none());
        // Arity.
        if !sig.variadic && !has_splat {
            let required = params
                .iter()
                .filter(|(_, _, has_default)| !has_default)
                .count();
            let supplied = args.len() + keywords.len();
            if args.len() > params.len() || supplied < required {
                self.report(
                    call.meta.span,
                    IssueCode::WrongArity,
                    format!(
                        "call supplies {} positional argument(s); callee takes {} (of which {} required)",
                        args.len(),
                        params.len(),
                        required
                    ),
                );
                return;
            }
        }
        // Keyword names.
        if !sig.variadic {
            for k in keywords {
                if let Some(name) = &k.arg {
                    if !params.iter().any(|(p, _, _)| p == name) {
                        self.report(
                            k.value.meta.span,
                            IssueCode::UnknownKeyword,
                            format!("unexpected keyword argument `{name}`"),
                        );
                    }
                }
            }
        }
        // Positional argument types.
        for (arg, (pname, psym, _)) in args.iter().zip(params.iter()) {
            if matches!(arg.kind, ExprKind::Starred(_)) {
                break;
            }
            let Some(declared) = psym.and_then(|s| self.env.type_of(s)) else {
                continue;
            };
            let Some(at) = self.inf.infer(arg) else {
                continue;
            };
            if at != PyType::None && !self.assignable(&at, declared) {
                self.report(
                    arg.meta.span,
                    IssueCode::BadArgument,
                    format!("argument `{pname}` expects {declared}, got {at}"),
                );
            }
        }
        // Keyword argument types.
        for k in keywords {
            let Some(name) = &k.arg else { continue };
            let Some((pname, psym, _)) = params.iter().find(|(p, _, _)| p == name) else {
                continue;
            };
            let Some(declared) = psym.and_then(|s| self.env.type_of(s)) else {
                continue;
            };
            let Some(at) = self.inf.infer(&k.value) else {
                continue;
            };
            if at != PyType::None && !self.assignable(&at, declared) {
                self.report(
                    k.value.meta.span,
                    IssueCode::BadArgument,
                    format!("argument `{pname}` expects {declared}, got {at}"),
                );
            }
        }
    }
}

fn aug_op(op: &str) -> Option<typilus_pyast::ast::BinOp> {
    use typilus_pyast::ast::BinOp::*;
    Some(match op {
        "+" => Add,
        "-" => Sub,
        "*" => Mul,
        "/" => Div,
        "//" => FloorDiv,
        "%" => Mod,
        "**" => Pow,
        "<<" => LShift,
        ">>" => RShift,
        "|" => BitOr,
        "&" => BitAnd,
        "^" => BitXor,
        "@" => MatMul,
        _ => return None,
    })
}

fn body_returns_value(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|stmt| match &stmt.kind {
        StmtKind::Return(Some(_)) => true,
        StmtKind::If { body, orelse, .. }
        | StmtKind::While { body, orelse, .. }
        | StmtKind::For { body, orelse, .. } => {
            body_returns_value(body) || body_returns_value(orelse)
        }
        StmtKind::With { body, .. } => body_returns_value(body),
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            body_returns_value(body)
                || handlers.iter().any(|h| body_returns_value(&h.body))
                || body_returns_value(orelse)
                || body_returns_value(finalbody)
        }
        _ => false,
    })
}

fn body_yields(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|stmt| match &stmt.kind {
        StmtKind::Expr(e) => {
            matches!(e.kind, ExprKind::Yield(_) | ExprKind::YieldFrom(_))
        }
        StmtKind::Assign { value, .. } => {
            matches!(value.kind, ExprKind::Yield(_) | ExprKind::YieldFrom(_))
        }
        StmtKind::If { body, orelse, .. }
        | StmtKind::While { body, orelse, .. }
        | StmtKind::For { body, orelse, .. } => body_yields(body) || body_yields(orelse),
        StmtKind::With { body, .. } => body_yields(body),
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            body_yields(body)
                || handlers.iter().any(|h| body_yields(&h.body))
                || body_yields(orelse)
                || body_yields(finalbody)
        }
        _ => false,
    })
}
