//! The typing environment: annotations from the source, function
//! signatures, class registrations, and the prediction-substitution hook
//! used by the paper's Sec. 6.3 experiment.
//!
//! Signatures reference parameter/return *symbols* rather than copied
//! types, so overriding one symbol's annotation (substituting a
//! prediction) is automatically visible at every call site.

use std::collections::HashMap;
use typilus_pyast::ast::{Expr, Stmt, StmtKind};
use typilus_pyast::symtable::{SymbolId, SymbolKind, SymbolTable};
use typilus_pyast::Parsed;
use typilus_types::{PyType, TypeHierarchy};

/// A function signature assembled from annotations.
#[derive(Debug, Clone, Default)]
pub struct Signature {
    /// Parameter name, its symbol (if resolvable), has-default flag.
    pub params: Vec<(String, Option<SymbolId>, bool)>,
    /// The function's return symbol, if resolvable.
    pub ret: Option<SymbolId>,
    /// Whether the function takes `*args` / `**kwargs` (arity checks are
    /// skipped when set).
    pub variadic: bool,
    /// Whether the first parameter is a `self`/`cls` receiver.
    pub is_method: bool,
}

/// The typing environment of one module.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    /// Declared (or overridden) type per symbol.
    pub annotations: HashMap<SymbolId, PyType>,
    /// Signatures of functions defined in the module, by function symbol.
    pub functions: HashMap<SymbolId, Signature>,
    /// Return symbol per function-def node (for `return` checks).
    pub return_symbols: HashMap<typilus_pyast::NodeId, SymbolId>,
    /// Classes defined in the module.
    pub classes: Vec<String>,
    /// `(class name, method name) -> function symbol` for method-call
    /// resolution on instances of module classes.
    pub methods: HashMap<(String, String), SymbolId>,
}

impl TypeEnv {
    /// Builds the environment from a parsed module and its symbol table,
    /// registering module classes into `hierarchy`.
    pub fn build(parsed: &Parsed, table: &SymbolTable, hierarchy: &mut TypeHierarchy) -> TypeEnv {
        let mut env = TypeEnv::default();
        for sym in table.symbols() {
            if let Some(text) = &sym.annotation {
                if let Ok(ty) = text.parse::<PyType>() {
                    env.annotations.insert(sym.id, ty);
                }
            }
        }
        collect(&parsed.module.body, table, hierarchy, &mut env);
        env
    }

    /// Replaces (or adds) the annotation of one symbol — substituting a
    /// type prediction. Call sites and return checks see the new type
    /// immediately because signatures resolve symbols lazily.
    pub fn override_symbol(&mut self, symbol: SymbolId, ty: PyType) {
        self.annotations.insert(symbol, ty);
    }

    /// Removes a symbol's annotation (an `ϵ` starting state).
    pub fn clear_symbol(&mut self, symbol: SymbolId) {
        self.annotations.remove(&symbol);
    }

    /// The declared type of a symbol, if any.
    pub fn type_of(&self, symbol: SymbolId) -> Option<&PyType> {
        self.annotations.get(&symbol)
    }

    /// The declared type of the symbol occurring at `span`, if any.
    pub fn type_at(&self, table: &SymbolTable, span: typilus_pyast::Span) -> Option<&PyType> {
        let sym = table.symbol_at(span)?;
        self.annotations.get(&sym.id)
    }
}

fn collect(body: &[Stmt], table: &SymbolTable, hierarchy: &mut TypeHierarchy, env: &mut TypeEnv) {
    for stmt in body {
        match &stmt.kind {
            StmtKind::FunctionDef(f) => {
                let sig = signature_of(f, table, stmt);
                if let Some(ret) = sig.ret {
                    env.return_symbols.insert(stmt.meta.id, ret);
                }
                if let Some(sym) = table.symbol_at(f.name_span) {
                    if sym.kind == SymbolKind::Function {
                        env.functions.insert(sym.id, sig);
                    }
                }
                collect(&f.body, table, hierarchy, env);
            }
            StmtKind::ClassDef(c) => {
                let bases: Vec<String> = c.bases.iter().filter_map(Expr::annotation_text).collect();
                let base_refs: Vec<&str> = bases.iter().map(String::as_str).collect();
                hierarchy.register_class(&c.name, &base_refs);
                env.classes.push(c.name.clone());
                for member in &c.body {
                    if let StmtKind::FunctionDef(m) = &member.kind {
                        if let Some(sym) = table.symbol_at(m.name_span) {
                            env.methods.insert((c.name.clone(), m.name.clone()), sym.id);
                        }
                    }
                }
                collect(&c.body, table, hierarchy, env);
            }
            StmtKind::If { body, orelse, .. }
            | StmtKind::While { body, orelse, .. }
            | StmtKind::For { body, orelse, .. } => {
                collect(body, table, hierarchy, env);
                collect(orelse, table, hierarchy, env);
            }
            StmtKind::With { body, .. } => collect(body, table, hierarchy, env),
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                collect(body, table, hierarchy, env);
                for h in handlers {
                    collect(&h.body, table, hierarchy, env);
                }
                collect(orelse, table, hierarchy, env);
                collect(finalbody, table, hierarchy, env);
            }
            _ => {}
        }
    }
}

fn signature_of(
    f: &typilus_pyast::ast::FunctionDef,
    table: &SymbolTable,
    stmt: &Stmt,
) -> Signature {
    use typilus_pyast::ast::ParamKind;
    let mut sig = Signature::default();
    for p in &f.params {
        match p.kind {
            ParamKind::VarArgs | ParamKind::KwArgs => {
                sig.variadic = true;
                continue;
            }
            _ => {}
        }
        let sym = table.symbol_at(p.name_span).map(|s| s.id);
        sig.params.push((p.name.clone(), sym, p.default.is_some()));
    }
    sig.is_method = f
        .params
        .first()
        .map(|p| p.name == "self" || p.name == "cls")
        .unwrap_or(false);
    sig.ret = table.return_symbol(stmt.meta.id).map(|s| s.id);
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_pyast::parse;

    fn env_of(src: &str) -> (TypeEnv, TypeHierarchy, SymbolTable) {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let mut h = TypeHierarchy::new();
        let env = TypeEnv::build(&parsed, &table, &mut h);
        (env, h, table)
    }

    #[test]
    fn annotations_collected() {
        let (env, _, table) = env_of("def f(a: int, b: str) -> bool:\n    return a > 0\n");
        let func_sym = table
            .symbols()
            .iter()
            .find(|s| s.kind == SymbolKind::Function)
            .unwrap();
        let sig = &env.functions[&func_sym.id];
        assert_eq!(sig.params.len(), 2);
        let a_ty = env.type_of(sig.params[0].1.unwrap()).unwrap();
        assert_eq!(a_ty.to_string(), "int");
        let ret_ty = env.type_of(sig.ret.unwrap()).unwrap();
        assert_eq!(ret_ty.to_string(), "bool");
    }

    #[test]
    fn none_return_annotation_is_recorded() {
        let (env, _, table) = env_of("def f() -> None:\n    pass\n");
        let ret = table
            .symbols()
            .iter()
            .find(|s| s.kind == SymbolKind::Return)
            .unwrap();
        assert_eq!(env.type_of(ret.id), Some(&PyType::None));
    }

    #[test]
    fn classes_registered_into_hierarchy() {
        let (_, h, _) = env_of("class Animal:\n    pass\nclass Dog(Animal):\n    pass\n");
        assert!(h.is_nominal_subtype("Dog", "Animal"));
    }

    #[test]
    fn override_flows_through_signature() {
        let (mut env, _, table) = env_of("def f(a: int) -> int:\n    return a\n");
        let a = table.symbols().iter().find(|s| s.name == "a").unwrap();
        env.override_symbol(a.id, "str".parse().unwrap());
        let func_sym = table
            .symbols()
            .iter()
            .find(|s| s.kind == SymbolKind::Function)
            .unwrap();
        let sig = &env.functions[&func_sym.id];
        let a_ty = env.type_of(sig.params[0].1.unwrap()).unwrap();
        assert_eq!(a_ty.to_string(), "str");
    }

    #[test]
    fn variadic_and_method_flags() {
        let (env, _, table) = env_of("class C:\n    def m(self, *args):\n        pass\n");
        let m = table
            .symbols()
            .iter()
            .find(|s| s.name == "m" && s.kind == SymbolKind::Function)
            .unwrap();
        let sig = &env.functions[&m.id];
        assert!(sig.variadic);
        assert!(sig.is_method);
    }
}
