//! # typilus-check
//!
//! An optional type checker for the Python subset, standing in for mypy
//! and pytype in the Typilus reproduction (paper Sec. 6.3). Two
//! profiles: [`CheckerProfile::Mypy`] reasons only from explicit
//! annotations; [`CheckerProfile::Pytype`] additionally infers types of
//! unannotated locals, so it can disprove more type assignments. Both
//! stay silent wherever the partial context leaves types unknown —
//! optional typing's defining property, and the reason incorrect
//! annotations can survive in sparsely annotated code (Sec. 7).
//!
//! ```
//! use typilus_check::{CheckerProfile, TypeChecker};
//! use typilus_pyast::{parse, SymbolTable};
//!
//! # fn main() -> Result<(), typilus_pyast::ParseError> {
//! let parsed = parse("x: int = 'oops'\n")?;
//! let table = SymbolTable::build(&parsed.module);
//! let issues = TypeChecker::new(CheckerProfile::Mypy).check(&parsed, &table);
//! assert_eq!(issues.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builtins;
pub mod checker;
pub mod env;
pub mod infer;

pub use checker::{CheckerProfile, IssueCode, TypeChecker, TypeIssue};
pub use env::{Signature, TypeEnv};
pub use infer::Inferencer;

#[cfg(test)]
mod tests;
