//! Best-effort expression type inference over partial annotations.
//!
//! Inference is deliberately *optional-typing shaped*: an expression the
//! engine cannot type yields `None` and downstream checks stay silent,
//! mirroring how mypy/pytype reason over partial contexts. The
//! pytype-like profile additionally runs a flow-insensitive assignment
//! inference pre-pass so unannotated locals get types too.

use crate::builtins::{builtin_call, element_of, method_on, MethodLookup};
use crate::env::TypeEnv;
use std::collections::HashMap;
use typilus_pyast::ast::{BinOp, Expr, ExprKind, Stmt, StmtKind, UnaryOp};
use typilus_pyast::symtable::{SymbolId, SymbolKind, SymbolTable};
use typilus_types::{PyType, TypeHierarchy};

/// Expression type inference over a [`TypeEnv`].
pub struct Inferencer<'a> {
    /// The typing environment.
    pub env: &'a TypeEnv,
    /// The module's symbol table.
    pub table: &'a SymbolTable,
    /// The (class-extended) type hierarchy.
    pub hierarchy: &'a TypeHierarchy,
    /// Types inferred for unannotated locals (pytype profile); empty for
    /// the mypy profile.
    pub local_inferred: HashMap<SymbolId, PyType>,
    /// Flow-sensitive narrowings currently in force (`if x is not None:`
    /// branches). Overrides both annotations and local inference.
    pub narrowed: HashMap<SymbolId, PyType>,
}

impl<'a> Inferencer<'a> {
    /// Creates an inferencer without local inference (mypy-like).
    pub fn new(env: &'a TypeEnv, table: &'a SymbolTable, hierarchy: &'a TypeHierarchy) -> Self {
        Inferencer {
            env,
            table,
            hierarchy,
            local_inferred: HashMap::new(),
            narrowed: HashMap::new(),
        }
    }

    /// Runs the flow-insensitive assignment inference pre-pass over the
    /// module (pytype-like profile): unannotated variables get the union
    /// of their inferable assigned types.
    pub fn infer_locals(&mut self, body: &[Stmt]) {
        // Two rounds so chained assignments (y = x after x = 1) resolve.
        for _ in 0..2 {
            let mut updates: Vec<(SymbolId, PyType)> = Vec::new();
            self.collect_assignments(body, &mut updates);
            for (sym, ty) in updates {
                let entry = self.local_inferred.entry(sym).or_insert_with(|| ty.clone());
                if *entry != ty {
                    *entry = PyType::union(vec![entry.clone(), ty]);
                }
            }
        }
    }

    fn collect_assignments(&self, body: &[Stmt], out: &mut Vec<(SymbolId, PyType)>) {
        for stmt in body {
            self.collect_expr_bindings(stmt, out);
            match &stmt.kind {
                StmtKind::Assign { targets, value } => {
                    if let Some(vt) = self.infer(value) {
                        for t in targets {
                            self.bind_target(t, &vt, out);
                        }
                    }
                }
                StmtKind::For {
                    target,
                    iter,
                    body,
                    orelse,
                    ..
                } => {
                    if let Some(it) = self.infer(iter) {
                        if let Some(elem) = element_of(&it) {
                            self.bind_target(target, &elem, out);
                        }
                    }
                    self.collect_assignments(body, out);
                    self.collect_assignments(orelse, out);
                }
                StmtKind::FunctionDef(f) => self.collect_assignments(&f.body, out),
                StmtKind::ClassDef(c) => self.collect_assignments(&c.body, out),
                StmtKind::If { body, orelse, .. } | StmtKind::While { body, orelse, .. } => {
                    self.collect_assignments(body, out);
                    self.collect_assignments(orelse, out);
                }
                StmtKind::With { body, .. } => self.collect_assignments(body, out),
                StmtKind::Try {
                    body,
                    handlers,
                    orelse,
                    finalbody,
                } => {
                    self.collect_assignments(body, out);
                    for h in handlers {
                        self.collect_assignments(&h.body, out);
                    }
                    self.collect_assignments(orelse, out);
                    self.collect_assignments(finalbody, out);
                }
                _ => {}
            }
        }
    }

    /// Binds comprehension clause targets and walrus assignments found in
    /// any expression position of `stmt`.
    fn collect_expr_bindings(&self, stmt: &Stmt, out: &mut Vec<(SymbolId, PyType)>) {
        struct Scan<'x, 'a> {
            inf: &'x Inferencer<'a>,
            out: &'x mut Vec<(SymbolId, PyType)>,
        }
        impl typilus_pyast::visit::Visitor for Scan<'_, '_> {
            fn visit_expr(&mut self, expr: &Expr) {
                match &expr.kind {
                    ExprKind::Comprehension { clauses, .. } => {
                        for c in clauses {
                            if let Some(it) = self.inf.infer(&c.iter) {
                                if let Some(elem) = element_of(&it) {
                                    self.inf.bind_target(&c.target, &elem, self.out);
                                }
                            }
                        }
                    }
                    ExprKind::Walrus { target, value } => {
                        if let Some(vt) = self.inf.infer(value) {
                            self.inf.bind_target(target, &vt, self.out);
                        }
                    }
                    _ => {}
                }
            }
            fn enter_scopes(&self) -> bool {
                false
            }
        }
        let mut scan = Scan { inf: self, out };
        typilus_pyast::visit::walk_stmt(&mut scan, stmt);
    }

    fn bind_target(&self, target: &Expr, ty: &PyType, out: &mut Vec<(SymbolId, PyType)>) {
        match &target.kind {
            ExprKind::Name(_) => {
                if let Some(sym) = self.table.symbol_at(target.meta.span) {
                    // Only variables without an explicit annotation.
                    if matches!(sym.kind, SymbolKind::Variable) && sym.annotation.is_none() {
                        out.push((sym.id, ty.clone()));
                    }
                }
            }
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                // Unpack a Tuple type elementwise if arities match.
                if let PyType::Named { name, args } = ty {
                    if name == "Tuple" && args.len() == items.len() {
                        for (item, a) in items.iter().zip(args) {
                            self.bind_target(item, a, out);
                        }
                        return;
                    }
                }
                if let Some(elem) = element_of(ty) {
                    for item in items {
                        self.bind_target(item, &elem, out);
                    }
                }
            }
            _ => {}
        }
    }

    /// The declared or inferred type of the symbol at a name occurrence.
    /// Flow-sensitive narrowings take precedence over declarations.
    pub fn symbol_type(&self, span: typilus_pyast::Span) -> Option<PyType> {
        let sym = self.table.symbol_at(span)?;
        if let Some(ty) = self.narrowed.get(&sym.id) {
            return Some(ty.clone());
        }
        if let Some(ty) = self.env.annotations.get(&sym.id) {
            return Some(ty.clone());
        }
        self.local_inferred.get(&sym.id).cloned()
    }

    /// Installs a narrowing; returns the previous one, for restoration.
    pub fn narrow(&mut self, sym: SymbolId, ty: PyType) -> Option<PyType> {
        self.narrowed.insert(sym, ty)
    }

    /// Restores a narrowing saved by [`Inferencer::narrow`].
    pub fn restore(&mut self, sym: SymbolId, previous: Option<PyType>) {
        match previous {
            Some(ty) => {
                self.narrowed.insert(sym, ty);
            }
            None => {
                self.narrowed.remove(&sym);
            }
        }
    }

    /// Infers the type of an expression, if the engine understands it.
    pub fn infer(&self, expr: &Expr) -> Option<PyType> {
        match &expr.kind {
            ExprKind::Num(text) => Some(infer_number(text)),
            ExprKind::Str(text) => {
                let is_bytes = text
                    .bytes()
                    .take_while(|b| !matches!(b, b'"' | b'\''))
                    .any(|b| b.eq_ignore_ascii_case(&b'b'));
                Some(if is_bytes {
                    PyType::named("bytes")
                } else {
                    PyType::named("str")
                })
            }
            ExprKind::FString(_) => Some(PyType::named("str")),
            ExprKind::Bool(_) => Some(PyType::named("bool")),
            ExprKind::NoneLit => Some(PyType::None),
            ExprKind::EllipsisLit => None,
            ExprKind::Name(name) => {
                if let Some(ty) = self.symbol_type(expr.meta.span) {
                    return Some(ty);
                }
                // A reference to a class is a Type value; calls handle
                // construction separately.
                let sym = self.table.symbol_at(expr.meta.span)?;
                if sym.kind == SymbolKind::Class {
                    return Some(PyType::generic("Type", vec![PyType::named(name)]));
                }
                None
            }
            ExprKind::Tuple(items) => {
                let args: Vec<PyType> = items
                    .iter()
                    .map(|e| self.infer(e).unwrap_or(PyType::Any))
                    .collect();
                Some(PyType::generic("Tuple", args))
            }
            ExprKind::List(items) => Some(PyType::generic("List", vec![self.join_elements(items)])),
            ExprKind::Set(items) => Some(PyType::generic("Set", vec![self.join_elements(items)])),
            ExprKind::Dict { keys, values } => {
                let key_items: Vec<Expr> = keys.iter().flatten().cloned().collect();
                let k = self.join_elements(&key_items);
                let v = self.join_elements(values);
                Some(PyType::generic("Dict", vec![k, v]))
            }
            ExprKind::BinOp { left, op, right } => {
                let lt = self.infer(left);
                let rt = self.infer(right);
                binop_result(*op, lt.as_ref()?, rt.as_ref()?)
            }
            ExprKind::UnaryOp { op, operand } => match op {
                UnaryOp::Not => Some(PyType::named("bool")),
                UnaryOp::Neg | UnaryOp::Pos => self.infer(operand),
                UnaryOp::Invert => Some(PyType::named("int")),
            },
            ExprKind::BoolOp { values, .. } => {
                let parts: Option<Vec<PyType>> = values.iter().map(|v| self.infer(v)).collect();
                parts.map(PyType::union)
            }
            ExprKind::Compare { .. } => Some(PyType::named("bool")),
            ExprKind::Call { func, args, .. } => self.infer_call(func, args),
            ExprKind::Attribute {
                value,
                attr,
                attr_span,
            } => {
                // Class members (`self.x`).
                if let Some(ty) = self.symbol_type(*attr_span) {
                    return Some(ty);
                }
                let recv = self.infer(value)?;
                match method_on(&recv, attr) {
                    MethodLookup::Returns(ty) => {
                        // Attribute access to a method yields a callable;
                        // the call case extracts the return type. Here we
                        // conservatively produce a Callable.
                        Some(PyType::Callable {
                            params: None,
                            ret: Box::new(ty),
                        })
                    }
                    _ => None,
                }
            }
            ExprKind::Subscript { value, index } => {
                let recv = self.infer(value)?;
                self.subscript_result(&recv, index)
            }
            ExprKind::Slice { .. } => None,
            ExprKind::Lambda { .. } => Some(PyType::Callable {
                params: None,
                ret: Box::new(PyType::Any),
            }),
            ExprKind::IfExp { body, orelse, .. } => {
                let a = self.infer(body)?;
                let b = self.infer(orelse)?;
                Some(PyType::union(vec![a, b]))
            }
            ExprKind::Starred(inner) => self.infer(inner),
            ExprKind::Comprehension {
                kind,
                element,
                value,
                ..
            } => {
                use typilus_pyast::ast::CompKind;
                let elem = self.infer(element).unwrap_or(PyType::Any);
                Some(match kind {
                    CompKind::List => PyType::generic("List", vec![elem]),
                    CompKind::Set => PyType::generic("Set", vec![elem]),
                    CompKind::Generator => PyType::generic("Generator", vec![elem]),
                    CompKind::Dict => {
                        let v = value
                            .as_ref()
                            .and_then(|v| self.infer(v))
                            .unwrap_or(PyType::Any);
                        PyType::generic("Dict", vec![elem, v])
                    }
                })
            }
            ExprKind::Yield(_) | ExprKind::YieldFrom(_) => None,
            ExprKind::Await(_) => None,
            ExprKind::Walrus { value, .. } => self.infer(value),
        }
    }

    fn join_elements(&self, items: &[Expr]) -> PyType {
        let mut types: Vec<PyType> = Vec::new();
        for item in items {
            match self.infer(item) {
                Some(t) => types.push(t),
                None => return PyType::Any,
            }
        }
        if types.is_empty() {
            PyType::Any
        } else {
            PyType::union(types)
        }
    }

    fn infer_call(&self, func: &Expr, args: &[Expr]) -> Option<PyType> {
        match &func.kind {
            ExprKind::Name(name) => {
                if let Some(sym) = self.table.symbol_at(func.meta.span) {
                    match sym.kind {
                        SymbolKind::Class => return Some(PyType::named(&sym.name)),
                        SymbolKind::Function => {
                            let sig = self.env.functions.get(&sym.id)?;
                            let ret = sig.ret?;
                            return self.env.annotations.get(&ret).cloned();
                        }
                        _ => {}
                    }
                }
                let arg_types: Vec<Option<PyType>> = args.iter().map(|a| self.infer(a)).collect();
                builtin_call(name, &arg_types)
            }
            ExprKind::Attribute { value, attr, .. } => {
                // User-class method call: obj.m() where obj: C.
                if let Some(recv) = self.infer(value) {
                    if let PyType::Named { name, .. } = &recv {
                        if let Some(&func_sym) = self.env.methods.get(&(name.clone(), attr.clone()))
                        {
                            let sig = self.env.functions.get(&func_sym)?;
                            let ret = sig.ret?;
                            return self.env.annotations.get(&ret).cloned();
                        }
                    }
                    return match method_on(&recv, attr) {
                        MethodLookup::Returns(ty) => Some(ty),
                        _ => None,
                    };
                }
                None
            }
            _ => None,
        }
    }

    fn subscript_result(&self, recv: &PyType, index: &Expr) -> Option<PyType> {
        let index_ty = self.infer(index);
        match recv.base_name() {
            "List" | "Sequence" | "MutableSequence" => {
                if matches!(index.kind, ExprKind::Slice { .. }) {
                    Some(recv.clone())
                } else {
                    element_of(recv)
                }
            }
            "str" | "bytes" => Some(recv.clone()),
            "Dict" | "Mapping" | "MutableMapping" => match recv {
                PyType::Named { args, .. } if args.len() > 1 => Some(args[1].clone()),
                _ => Some(PyType::Any),
            },
            "Tuple" => {
                if let (PyType::Named { args, .. }, ExprKind::Num(n)) = (recv, &index.kind) {
                    if let Ok(i) = n.parse::<usize>() {
                        if i < args.len() {
                            return Some(args[i].clone());
                        }
                    }
                    if !args.is_empty() {
                        return Some(PyType::union(args.clone()));
                    }
                }
                Some(PyType::Any)
            }
            _ => {
                let _ = index_ty;
                None
            }
        }
    }
}

/// The numeric literal's type.
pub fn infer_number(text: &str) -> PyType {
    let lower = text.to_ascii_lowercase();
    if lower.ends_with('j') {
        PyType::named("complex")
    } else if !lower.starts_with("0x")
        && !lower.starts_with("0o")
        && !lower.starts_with("0b")
        && (lower.contains('.') || lower.contains('e'))
    {
        PyType::named("float")
    } else {
        PyType::named("int")
    }
}

/// The result type of a binary operation on known operand types, or
/// `None` when the combination is not understood (including the
/// *invalid* combinations — the checker decides which is which via
/// [`binop_valid`]).
pub fn binop_result(op: BinOp, left: &PyType, right: &PyType) -> Option<PyType> {
    let l = left.base_name();
    let r = right.base_name();
    let numeric = ["bool", "int", "float", "complex"];
    let rank = |n: &str| numeric.iter().position(|&x| x == n);
    if *left == PyType::Any || *right == PyType::Any {
        return Some(PyType::Any);
    }
    match op {
        BinOp::Add => {
            if let (Some(a), Some(b)) = (rank(l), rank(r)) {
                let top = a.max(b).max(1); // bool + bool = int
                return Some(PyType::named(numeric[top]));
            }
            match (l, r) {
                ("str", "str") => Some(PyType::named("str")),
                ("bytes", "bytes") => Some(PyType::named("bytes")),
                ("List", "List") => Some(PyType::union(vec![left.clone(), right.clone()])),
                ("Tuple", "Tuple") => Some(PyType::named("Tuple")),
                _ => None,
            }
        }
        BinOp::Sub => match (rank(l), rank(r)) {
            (Some(a), Some(b)) => Some(PyType::named(numeric[a.max(b).max(1)])),
            _ => {
                if l == "Set" && r == "Set" {
                    Some(left.clone())
                } else {
                    None
                }
            }
        },
        BinOp::Mul => {
            if let (Some(a), Some(b)) = (rank(l), rank(r)) {
                return Some(PyType::named(numeric[a.max(b).max(1)]));
            }
            match (l, r) {
                ("str", "int") | ("int", "str") => Some(PyType::named("str")),
                ("List", "int") | ("int", "List") => Some(if l == "List" {
                    left.clone()
                } else {
                    right.clone()
                }),
                _ => None,
            }
        }
        BinOp::Div => match (rank(l), rank(r)) {
            (Some(a), Some(b)) => {
                // True division yields float (complex stays complex).
                Some(PyType::named(numeric[a.max(b).max(2)]))
            }
            _ => None,
        },
        BinOp::FloorDiv => match (rank(l), rank(r)) {
            (Some(a), Some(b)) => Some(PyType::named(numeric[a.max(b).max(1)])),
            _ => None,
        },
        BinOp::Mod => match (l, r) {
            ("str", _) => Some(PyType::named("str")),
            _ => match (rank(l), rank(r)) {
                (Some(a), Some(b)) => Some(PyType::named(numeric[a.max(b).max(1)])),
                _ => None,
            },
        },
        BinOp::Pow => match (rank(l), rank(r)) {
            (Some(a), Some(b)) => Some(PyType::named(numeric[a.max(b).max(1)])),
            _ => None,
        },
        BinOp::LShift | BinOp::RShift | BinOp::BitAnd | BinOp::BitXor => match (l, r) {
            ("int", "int") | ("bool", "bool") | ("int", "bool") | ("bool", "int") => {
                Some(PyType::named("int"))
            }
            ("Set", "Set") => Some(left.clone()),
            _ => None,
        },
        BinOp::BitOr => match (l, r) {
            ("int", "int") | ("bool", "bool") | ("int", "bool") | ("bool", "int") => {
                Some(PyType::named("int"))
            }
            ("Set", "Set") => Some(left.clone()),
            ("Dict", "Dict") => Some(left.clone()),
            _ => None,
        },
        BinOp::MatMul => None,
    }
}

/// Whether a binary operation between two *known* types is valid. The
/// checker flags `binop_valid == false` combinations; unknown operands
/// are never flagged.
pub fn binop_valid(op: BinOp, left: &PyType, right: &PyType) -> bool {
    if *left == PyType::Any || *right == PyType::Any {
        return true;
    }
    // Untracked user types may overload anything.
    let tracked = |t: &PyType| {
        matches!(
            t.base_name(),
            "int"
                | "float"
                | "bool"
                | "complex"
                | "str"
                | "bytes"
                | "List"
                | "Tuple"
                | "Set"
                | "Dict"
                | "FrozenSet"
        ) || *t == PyType::None
    };
    if !tracked(left) || !tracked(right) {
        return true;
    }
    binop_result(op, left, right).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::TypeEnv;
    use typilus_pyast::parse;

    fn with_inferencer<T>(
        src: &str,
        infer_locals: bool,
        f: impl FnOnce(&Inferencer<'_>, &typilus_pyast::Parsed) -> T,
    ) -> T {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let mut hierarchy = TypeHierarchy::new();
        let env = TypeEnv::build(&parsed, &table, &mut hierarchy);
        let mut inf = Inferencer::new(&env, &table, &hierarchy);
        if infer_locals {
            inf.infer_locals(&parsed.module.body);
        }
        f(&inf, &parsed)
    }

    /// Infers the type of the value of the last assignment statement.
    fn last_value_type(src: &str, infer_locals: bool) -> Option<String> {
        with_inferencer(src, infer_locals, |inf, parsed| {
            let value = parsed
                .module
                .body
                .iter()
                .rev()
                .find_map(|s| match &s.kind {
                    StmtKind::Assign { value, .. } => Some(value),
                    StmtKind::Expr(e) => Some(e),
                    _ => None,
                })?;
            inf.infer(value).map(|t| t.to_string())
        })
    }

    #[test]
    fn literals() {
        assert_eq!(last_value_type("x = 42\n", false).unwrap(), "int");
        assert_eq!(last_value_type("x = 4.2\n", false).unwrap(), "float");
        assert_eq!(last_value_type("x = 2j\n", false).unwrap(), "complex");
        assert_eq!(last_value_type("x = 'hi'\n", false).unwrap(), "str");
        assert_eq!(last_value_type("x = b'hi'\n", false).unwrap(), "bytes");
        assert_eq!(last_value_type("x = True\n", false).unwrap(), "bool");
        assert_eq!(last_value_type("x = None\n", false).unwrap(), "None");
        assert_eq!(last_value_type("x = f'{a}'\n", false).unwrap(), "str");
    }

    #[test]
    fn collections() {
        assert_eq!(last_value_type("x = [1, 2]\n", false).unwrap(), "List[int]");
        assert_eq!(
            last_value_type("x = {'a': 1}\n", false).unwrap(),
            "Dict[str, int]"
        );
        assert_eq!(
            last_value_type("x = (1, 'a')\n", false).unwrap(),
            "Tuple[int, str]"
        );
        assert_eq!(last_value_type("x = {1, 2}\n", false).unwrap(), "Set[int]");
        assert_eq!(
            last_value_type("x = [1, 'a']\n", false).unwrap(),
            "List[Union[int, str]]"
        );
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(last_value_type("x = 1 + 2\n", false).unwrap(), "int");
        assert_eq!(last_value_type("x = 1 + 2.0\n", false).unwrap(), "float");
        assert_eq!(last_value_type("x = 1 / 2\n", false).unwrap(), "float");
        assert_eq!(last_value_type("x = 7 // 2\n", false).unwrap(), "int");
        assert_eq!(last_value_type("x = 'a' + 'b'\n", false).unwrap(), "str");
        assert_eq!(last_value_type("x = 'a' * 3\n", false).unwrap(), "str");
        assert_eq!(last_value_type("x = True + True\n", false).unwrap(), "int");
    }

    #[test]
    fn annotated_names_resolve() {
        let src = "def f(a: int, items: List[str]):\n    x = a + 1\n    y = items[0]\n";
        with_inferencer(src, false, |inf, parsed| {
            let body = match &parsed.module.body[0].kind {
                StmtKind::FunctionDef(f) => &f.body,
                other => panic!("expected function, got {other:?}"),
            };
            let x_val = match &body[0].kind {
                StmtKind::Assign { value, .. } => value,
                other => panic!("expected assign, got {other:?}"),
            };
            assert_eq!(inf.infer(x_val).unwrap().to_string(), "int");
            let y_val = match &body[1].kind {
                StmtKind::Assign { value, .. } => value,
                other => panic!("expected assign, got {other:?}"),
            };
            assert_eq!(inf.infer(y_val).unwrap().to_string(), "str");
        });
    }

    #[test]
    fn method_and_builtin_calls() {
        assert_eq!(
            last_value_type("s: str = 'a'\nx = s.split()\n", false).unwrap(),
            "List[str]"
        );
        assert_eq!(
            last_value_type("xs: List[int] = []\nx = len(xs)\n", false).unwrap(),
            "int"
        );
        assert_eq!(
            last_value_type("d: Dict[str, int] = {}\nx = d.get('a')\n", false).unwrap(),
            "Optional[int]"
        );
    }

    #[test]
    fn user_function_and_class_calls() {
        let src = "\
class Point:
    pass

def make() -> Point:
    return Point()

p = make()
q = Point()
";
        assert_eq!(last_value_type(src, false), Some("Point".to_string()));
    }

    #[test]
    fn local_inference_only_in_pytype_profile() {
        let src = "count = 1\ntotal = count + 1\nx = total\n";
        assert_eq!(
            last_value_type(src, false),
            None,
            "mypy profile knows nothing"
        );
        assert_eq!(last_value_type(src, true).unwrap(), "int");
    }

    #[test]
    fn local_inference_unions_conflicts() {
        let src = "\
if cond:
    v = 1
else:
    v = 'a'
x = v
";
        let ty = last_value_type(src, true).unwrap();
        assert_eq!(ty, "Union[int, str]");
    }

    #[test]
    fn for_target_inference() {
        let src = "items: List[str] = []\nfor s in items:\n    x = s\nlast = x\n";
        assert_eq!(last_value_type(src, true).unwrap(), "str");
    }

    #[test]
    fn binop_validity() {
        let t = |s: &str| s.parse::<PyType>().unwrap();
        assert!(!binop_valid(BinOp::Add, &t("str"), &t("int")));
        assert!(!binop_valid(BinOp::Sub, &t("str"), &t("str")));
        assert!(binop_valid(BinOp::Add, &t("int"), &t("float")));
        assert!(
            binop_valid(BinOp::Add, &t("torch.Tensor"), &t("int")),
            "untracked is permissive"
        );
        assert!(binop_valid(BinOp::Add, &PyType::Any, &t("int")));
    }

    #[test]
    fn comprehension_types() {
        assert_eq!(
            last_value_type("xs: List[int] = []\ny = [x * 2 for x in xs]\n", true).unwrap(),
            "List[int]"
        );
    }

    #[test]
    fn ternary_joins() {
        assert_eq!(
            last_value_type("x = 1 if c else 'a'\n", false).unwrap(),
            "Union[int, str]"
        );
    }
}
