//! End-to-end checker tests covering both profiles.

use crate::checker::{CheckerProfile, IssueCode, TypeChecker, TypeIssue};
use typilus_pyast::{parse, SymbolTable};
use typilus_types::PyType;

fn check(src: &str, profile: CheckerProfile) -> Vec<TypeIssue> {
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    TypeChecker::new(profile).check(&parsed, &table)
}

fn check_mypy(src: &str) -> Vec<TypeIssue> {
    check(src, CheckerProfile::Mypy)
}

fn check_pytype(src: &str) -> Vec<TypeIssue> {
    check(src, CheckerProfile::Pytype)
}

fn codes(issues: &[TypeIssue]) -> Vec<IssueCode> {
    issues.iter().map(|i| i.code).collect()
}

#[test]
fn clean_annotated_program_passes() {
    let src = "\
def add(a: int, b: int) -> int:
    total: int = a + b
    return total

result: int = add(1, 2)
";
    assert!(check_mypy(src).is_empty(), "{:?}", check_mypy(src));
    assert!(check_pytype(src).is_empty(), "{:?}", check_pytype(src));
}

#[test]
fn incompatible_assignment_detected() {
    let src = "x: int = 'hello'\n";
    assert_eq!(
        codes(&check_mypy(src)),
        vec![IssueCode::IncompatibleAssignment]
    );
}

#[test]
fn numeric_widening_allowed() {
    // int into float slot is fine (PEP 484 numeric tower).
    assert!(check_mypy("x: float = 1\n").is_empty());
    assert!(check_mypy("x: int = True\n").is_empty());
    assert!(!check_mypy("x: int = 1.5\n").is_empty());
}

#[test]
fn optional_accepts_none_and_value() {
    let src = "a: Optional[int] = None\nb: Optional[int] = 3\n";
    assert!(check_mypy(src).is_empty());
    assert!(!check_mypy("c: Optional[int] = 'x'\n").is_empty());
}

#[test]
fn incompatible_return_detected() {
    let src = "def f() -> int:\n    return 'oops'\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn bare_return_against_value_type() {
    let src = "def f(flag: bool) -> int:\n    if flag:\n        return\n    return 1\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn missing_return_detected() {
    let src = "def f() -> int:\n    pass\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::MissingReturn]);
    // Generators are exempt.
    let gen = "def g() -> Iterator[int]:\n    yield 1\n";
    assert!(check_mypy(gen).is_empty());
    // None-returning functions are exempt.
    assert!(check_mypy("def h() -> None:\n    pass\n").is_empty());
}

#[test]
fn bad_argument_detected() {
    let src = "\
def greet(name: str) -> str:
    return name

greet(42)
";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::BadArgument]);
}

#[test]
fn keyword_argument_checked() {
    let src = "\
def scale(value: float, factor: float) -> float:
    return value * factor

scale(1.0, factor='two')
";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::BadArgument]);
}

#[test]
fn unknown_keyword_detected() {
    let src = "\
def f(a: int) -> int:
    return a

f(1, bogus=2)
";
    let issues = check_mypy(src);
    assert!(
        codes(&issues).contains(&IssueCode::WrongArity)
            || codes(&issues).contains(&IssueCode::UnknownKeyword),
        "{issues:?}"
    );
}

#[test]
fn arity_errors() {
    let src = "\
def f(a: int, b: int) -> int:
    return a + b

f(1)
f(1, 2, 3)
";
    assert_eq!(
        codes(&check_mypy(src)),
        vec![IssueCode::WrongArity, IssueCode::WrongArity]
    );
}

#[test]
fn defaults_relax_arity() {
    let src = "\
def f(a: int, b: int = 0) -> int:
    return a + b

f(1)
f(1, 2)
";
    assert!(check_mypy(src).is_empty());
}

#[test]
fn variadics_relax_all_call_checks() {
    let src = "\
def f(*args, **kwargs):
    pass

f(1, 'a', key=None)
";
    assert!(check_mypy(src).is_empty());
}

#[test]
fn invalid_operands_detected() {
    let src = "def f(a: str, b: int):\n    return a + b\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::InvalidOperand]);
}

#[test]
fn str_formatting_operand_ok() {
    assert!(check_mypy("def f(a: str, n: int) -> str:\n    return a % n\n").is_empty());
    assert!(check_mypy("def f(a: str, n: int) -> str:\n    return a * n\n").is_empty());
}

#[test]
fn iterating_scalar_detected() {
    let src = "def f(n: int):\n    for x in n:\n        pass\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::NotIterable]);
}

#[test]
fn attr_error_on_builtin() {
    let src = "def f(s: str):\n    s.append(1)\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::AttrError]);
}

#[test]
fn subscript_on_int_detected() {
    let src = "def f(n: int):\n    return n[0]\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::NotSubscriptable]);
}

#[test]
fn method_calls_on_user_classes_checked() {
    let src = "\
class Greeter:
    def greet(self, name: str) -> str:
        return name

g = Greeter()
g.greet(42)
";
    // mypy profile: `g` has no annotation, so the receiver is unknown
    // and the call is unchecked. pytype profile infers g: Greeter.
    assert!(check_mypy(src).is_empty());
    assert_eq!(codes(&check_pytype(src)), vec![IssueCode::BadArgument]);
}

#[test]
fn pytype_catches_more_via_local_inference() {
    let src = "\
def f(x: int) -> int:
    return x

value = 'a string'
f(value)
";
    assert!(check_mypy(src).is_empty(), "mypy cannot type `value`");
    assert_eq!(codes(&check_pytype(src)), vec![IssueCode::BadArgument]);
}

#[test]
fn pytype_inferred_assignment_conflicts() {
    let src = "\
count = 1
count2: str = count
";
    assert!(check_mypy(src).is_empty());
    assert_eq!(
        codes(&check_pytype(src)),
        vec![IssueCode::IncompatibleAssignment]
    );
}

#[test]
fn substitution_override_flags_wrong_prediction() {
    let src = "\
def f(dim: float) -> float:
    return dim * 2.0

f(3)
";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    let dim = table.symbols().iter().find(|s| s.name == "dim").unwrap();
    let checker = TypeChecker::new(CheckerProfile::Mypy);
    // Original program is clean.
    assert!(checker.check(&parsed, &table).is_empty());
    // Substituting `str` breaks the multiplication and the call.
    let issues =
        checker.check_with_override(&parsed, &table, dim.id, "str".parse::<PyType>().unwrap());
    assert!(!issues.is_empty());
    // Substituting `int` type checks (int <: float in the call, int * float fine).
    let issues =
        checker.check_with_override(&parsed, &table, dim.id, "int".parse::<PyType>().unwrap());
    assert!(issues.is_empty(), "{issues:?}");
}

#[test]
fn the_fairseq_scenario() {
    // Paper Sec. 7: parameters used as tensor dimensions were annotated
    // `float` but flow into `range`-like integer positions. Typilus
    // predicted int with high confidence; replacing float -> int must
    // keep the program well-typed.
    let src = "\
def build(layers: int) -> int:
    total: int = layers * 2
    return total
";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    let layers = table.symbols().iter().find(|s| s.name == "layers").unwrap();
    let checker = TypeChecker::new(CheckerProfile::Mypy);
    // float prediction: layers * 2 becomes float, assigned to int -> error.
    let float_issues = checker.check_with_override(
        &parsed,
        &table,
        layers.id,
        "float".parse::<PyType>().unwrap(),
    );
    assert!(!float_issues.is_empty());
    // int prediction: clean.
    let int_issues =
        checker.check_with_override(&parsed, &table, layers.id, "int".parse::<PyType>().unwrap());
    assert!(int_issues.is_empty(), "{int_issues:?}");
}

#[test]
fn supertype_substitution_is_neutral() {
    let src = "\
def total(items: List[int]) -> int:
    return len(items)
";
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    let items = table.symbols().iter().find(|s| s.name == "items").unwrap();
    let checker = TypeChecker::new(CheckerProfile::Mypy);
    let issues = checker.check_with_override(
        &parsed,
        &table,
        items.id,
        "Sequence[int]".parse::<PyType>().unwrap(),
    );
    assert!(issues.is_empty(), "{issues:?}");
}

#[test]
fn default_value_mismatch() {
    let src = "def f(n: int = 'zero'):\n    pass\n";
    assert_eq!(
        codes(&check_mypy(src)),
        vec![IssueCode::IncompatibleAssignment]
    );
    // Optional-by-convention None default is allowed.
    assert!(check_mypy("def g(n: int = None):\n    pass\n").is_empty());
}

#[test]
fn member_annotations_checked() {
    let src = "\
class C:
    def __init__(self):
        self.count: int = 0
    def reset(self):
        self.count = 'zero'
";
    assert_eq!(
        codes(&check_mypy(src)),
        vec![IssueCode::IncompatibleAssignment]
    );
}

#[test]
fn aug_assign_operand_check() {
    let src = "def f(s: str):\n    s -= 1\n";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::InvalidOperand]);
    assert!(check_mypy("def g(s: str):\n    s += 'x'\n").is_empty());
}

#[test]
fn unknown_context_stays_silent() {
    // Optional typing: everything unannotated and uninferable is fine.
    let src = "\
def f(a, b):
    return helper(a) + b.wobble()
";
    assert!(check_mypy(src).is_empty());
    assert!(check_pytype(src).is_empty());
}

#[test]
fn loop_variable_annotation_checked() {
    let src = "\
def f(items: List[int]):
    for s in items:
        t: str = s
";
    assert_eq!(codes(&check_mypy(src)), vec![]);
    // pytype infers s: int and flags the annotated assignment.
    assert_eq!(
        codes(&check_pytype(src)),
        vec![IssueCode::IncompatibleAssignment]
    );
}

#[test]
fn optional_narrowing_in_if_branches() {
    // Inside `if maybe is not None:` the symbol behaves as int.
    let src = "\
def f(maybe: Optional[int]) -> int:
    if maybe is not None:
        return maybe
    return 0
";
    assert!(check_mypy(src).is_empty(), "{:?}", check_mypy(src));
    // Without the guard, returning the Optional is an error.
    let unguarded = "def g(maybe: Optional[int]) -> int:\n    return maybe\n";
    assert_eq!(
        codes(&check_mypy(unguarded)),
        vec![IssueCode::IncompatibleReturn]
    );
}

#[test]
fn truthiness_narrows_optionals() {
    let src = "\
def f(maybe: Optional[str]) -> str:
    if maybe:
        return maybe.upper()
    return ''
";
    assert!(check_mypy(src).is_empty(), "{:?}", check_mypy(src));
}

#[test]
fn is_none_branch_narrows_to_none() {
    // `is None` narrows the then-branch to None and the else-branch to
    // the stripped type: exactly one error (the then-branch return).
    let src = "\
def f(maybe: Optional[int]) -> int:
    if maybe is None:
        return maybe
    else:
        return maybe
";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn narrowing_is_restored_after_the_branch() {
    let src = "\
def f(maybe: Optional[int]) -> int:
    if maybe is not None:
        pass
    return maybe
";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn chained_method_returns_infer() {
    let src = "\
def f(raw: str) -> int:
    return raw.strip().upper()
";
    // str.strip() -> str, .upper() -> str; returning str from int: error.
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn constructor_arity_checked() {
    let src = "\
class Point:
    def __init__(self, x: int, y: int) -> None:
        self.x = x
        self.y = y

p = Point(1, 2)
q = Point(1, 2, 3)
";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::WrongArity]);
}

#[test]
fn constructor_argument_types_checked() {
    let src = "\
class Box:
    def __init__(self, size: int) -> None:
        self.size = size

b = Box('large')
";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::BadArgument]);
}

#[test]
fn dict_get_returns_optional() {
    let src = "\
def f(cache: Dict[str, int]) -> int:
    return cache.get('k')
";
    // Optional[int] returned where int declared: error.
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn list_comprehension_typed_assignment() {
    let src = "\
def f(xs: List[int]):
    ys: List[str] = [x * 2 for x in xs]
";
    assert!(
        check_mypy(src).is_empty(),
        "mypy profile knows nothing about ys"
    );
    assert_eq!(
        codes(&check_pytype(src)),
        vec![IssueCode::IncompatibleAssignment]
    );
}

#[test]
fn union_arguments_are_permissive() {
    // A Union argument fits a parameter that accepts all members.
    let src = "\
def f(x: Union[int, float]) -> float:
    return x

def g(y: int):
    f(y)
";
    assert!(check_mypy(src).is_empty(), "{:?}", check_mypy(src));
}

#[test]
fn tuple_unpacking_assignment_checked() {
    let src = "a: int\nb: str\na, b = 1, 'x'\n";
    assert!(check_mypy(src).is_empty());
    let bad = "a: int\nb: str\na, b = 'x', 1\n";
    let issues = check_mypy(bad);
    assert_eq!(issues.len(), 2, "{issues:?}");
}

#[test]
fn class_member_types_flow_into_methods() {
    let src = "\
class Counter:
    def __init__(self):
        self.count: int = 0

    def label(self) -> str:
        return self.count
";
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn user_class_instances_type_as_their_class() {
    let src = "\
class Widget:
    pass

def make() -> Widget:
    return Widget()

def use() -> int:
    return make()
";
    // Returning a Widget where int is declared.
    assert_eq!(codes(&check_mypy(src)), vec![IssueCode::IncompatibleReturn]);
}

#[test]
fn subclass_instances_accepted_where_base_expected() {
    let src = "\
class Animal:
    pass

class Dog(Animal):
    pass

def feed(pet: Animal) -> None:
    pass

feed(Dog())
";
    assert!(check_mypy(src).is_empty(), "{:?}", check_mypy(src));
}
