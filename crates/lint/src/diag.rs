//! Diagnostics: rule identifiers, the `file:line: rule: message` record,
//! and the `--json` rendering.

/// The determinism/concurrency rules, plus the meta-rule for malformed
/// suppression comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` whose order can reach output,
    /// serialization or an order-sensitive reduction.
    D1,
    /// Floating-point reduction over an unordered source.
    D2,
    /// `std::env::var` read outside the designated config modules.
    D3,
    /// `unwrap()`/`expect()` inside worker-pool or spawned-thread
    /// closures (panics must ride the panic-payload path).
    D4,
    /// `unsafe` block without an adjacent `// SAFETY:` comment.
    D5,
    /// Wall-clock (`Instant::now`, `SystemTime`, `thread::sleep`) in a
    /// deterministic result path.
    D6,
    /// Direct artifact write (`std::fs::write`, `File::create`) outside
    /// the designated atomic-I/O module: a crash mid-write leaves a
    /// torn, checksum-less file.
    D7,
    /// Malformed `// lint: allow(...)` suppression (unknown rule name or
    /// missing justification).
    Allow,
}

impl Rule {
    /// The rule's short name, as written in suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::Allow => "allow",
        }
    }

    /// Parses a rule name from a suppression comment. The `allow`
    /// meta-rule is not suppressible, so it does not parse.
    pub fn parse(name: &str) -> Option<Rule> {
        Some(match name {
            "D1" => Rule::D1,
            "D2" => Rule::D2,
            "D3" => Rule::D3,
            "D4" => Rule::D4,
            "D5" => Rule::D5,
            "D6" => Rule::D6,
            "D7" => Rule::D7,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, as passed to the engine.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (the `--json` mode). No external
/// JSON crate is available offline, so this writes the fixed schema by
/// hand.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&d.file),
            d.line,
            d.rule,
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::D1,
            message: "iterates a HashMap".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: D1: iterates a HashMap"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic {
            file: "a\"b.rs".into(),
            line: 1,
            rule: Rule::D5,
            message: "x\ny".into(),
        };
        let json = to_json(&[d]);
        assert!(json.contains("\"file\": \"a\\\"b.rs\""));
        assert!(json.contains("\"message\": \"x\\ny\""));
        assert_eq!(to_json(&[]), "[]\n");
    }
}
