//! Diagnostics: rule identifiers, the `file:line: rule: message` record,
//! and the `--json` rendering.

/// The determinism/concurrency rules, plus the meta-rule for malformed
/// suppression comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` whose order can reach output,
    /// serialization or an order-sensitive reduction.
    D1,
    /// Floating-point reduction over an unordered source.
    D2,
    /// `std::env::var` read outside the designated config modules.
    D3,
    /// `unwrap()`/`expect()` inside worker-pool or spawned-thread
    /// closures (panics must ride the panic-payload path).
    D4,
    /// `unsafe` block without an adjacent `// SAFETY:` comment.
    D5,
    /// Wall-clock (`Instant::now`, `SystemTime`, `thread::sleep`) in a
    /// deterministic result path.
    D6,
    /// Direct artifact write (`std::fs::write`, `File::create`) outside
    /// the designated atomic-I/O module: a crash mid-write leaves a
    /// torn, checksum-less file.
    D7,
    /// `unwrap()`/`expect()` on a serve-reachable path — a hostile or
    /// merely surprising client input must never panic the engine.
    S1,
    /// Panicking macro (`panic!`, `assert!`, `unreachable!`, …) on a
    /// serve-reachable path.
    S2,
    /// Slice/array indexing on a serve-reachable path (out-of-bounds
    /// panics are the classic daemon killer).
    S3,
    /// Allocation on the allocation-free query hot path.
    A1,
    /// `unsafe fn` without a `# Safety` doc section naming the
    /// caller's obligations.
    U1,
    /// Raw pointer (`*const`/`*mut`) in a public API signature.
    U2,
    /// Malformed `// lint: allow(...)` suppression (unknown rule name or
    /// missing justification).
    Allow,
}

impl Rule {
    /// The rule's short name, as written in suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::S1 => "S1",
            Rule::S2 => "S2",
            Rule::S3 => "S3",
            Rule::A1 => "A1",
            Rule::U1 => "U1",
            Rule::U2 => "U2",
            Rule::Allow => "allow",
        }
    }

    /// Parses a rule name from a suppression comment. The `allow`
    /// meta-rule is not suppressible, so it does not parse.
    pub fn parse(name: &str) -> Option<Rule> {
        Some(match name {
            "D1" => Rule::D1,
            "D2" => Rule::D2,
            "D3" => Rule::D3,
            "D4" => Rule::D4,
            "D5" => Rule::D5,
            "D6" => Rule::D6,
            "D7" => Rule::D7,
            "S1" => Rule::S1,
            "S2" => Rule::S2,
            "S3" => Rule::S3,
            "A1" => Rule::A1,
            "U1" => Rule::U1,
            "U2" => Rule::U2,
            _ => return None,
        })
    }

    /// Expands a suppression name into rules: either one rule (`"S2"`)
    /// or a whole family (`"S"` → S1–S3), as the rule table documents.
    pub fn parse_family(name: &str) -> Option<Vec<Rule>> {
        match name {
            "S" => Some(vec![Rule::S1, Rule::S2, Rule::S3]),
            "A" => Some(vec![Rule::A1]),
            "U" => Some(vec![Rule::U1, Rule::U2]),
            _ => Rule::parse(name).map(|r| vec![r]),
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, as passed to the engine.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a JSON array (the `--json` mode). No external
/// JSON crate is available offline, so this writes the fixed schema by
/// hand.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&d.file),
            d.line,
            d.rule,
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// A `// lint: allow(...)` comment that never suppressed anything in a
/// whole-workspace run. Stale suppressions are debt: the finding they
/// once carried is gone, but the justification keeps claiming it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleSuppression {
    /// File holding the suppression comment.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The rules it names.
    pub rules: Vec<Rule>,
}

impl std::fmt::Display for StaleSuppression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.rules.iter().map(|r| r.name()).collect();
        write!(
            f,
            "{}:{}: stale-allow: suppression for {} never fires — remove it",
            self.file,
            self.line,
            names.join(",")
        )
    }
}

/// Workspace-level analysis counters, reported in `--json` and by
/// `bench_lint` so the cost and coverage of the lint stay visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Files analyzed.
    pub files: usize,
    /// Non-test `fn` items parsed.
    pub fns: usize,
    /// Call-graph edges after resolution.
    pub edges: usize,
    /// Fns reachable from `root(serve)` annotations.
    pub serve_reachable: usize,
    /// Fns reachable from `root(hotpath)` annotations.
    pub hotpath_reachable: usize,
    /// Live suppression comments.
    pub suppressions: usize,
}

/// Everything one lint run produced.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressions that fired nothing (`--deny-stale` gates on these).
    pub stale: Vec<StaleSuppression>,
    /// Analysis counters.
    pub stats: LintStats,
}

/// Renders a full report as a JSON object:
/// `{"diagnostics": […], "stale_suppressions": […], "stats": {…}}`.
pub fn report_to_json(report: &LintReport) -> String {
    let mut out = String::from("{\n\"diagnostics\": ");
    out.push_str(&to_json(&report.diagnostics));
    out.push_str(",\n\"stale_suppressions\": [");
    for (i, s) in report.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let names: Vec<&str> = s.rules.iter().map(|r| r.name()).collect();
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rules\": \"{}\"}}",
            escape(&s.file),
            s.line,
            names.join(",")
        ));
    }
    if !report.stale.is_empty() {
        out.push('\n');
    }
    let s = report.stats;
    out.push_str(&format!(
        "],\n\"stats\": {{\"files\": {}, \"fns\": {}, \"edges\": {}, \
         \"serve_reachable\": {}, \"hotpath_reachable\": {}, \
         \"suppressions\": {}, \"diagnostics\": {}, \"stale\": {}}}\n}}\n",
        s.files,
        s.fns,
        s.edges,
        s.serve_reachable,
        s.hotpath_reachable,
        s.suppressions,
        report.diagnostics.len(),
        report.stale.len()
    ));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::D1,
            message: "iterates a HashMap".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: D1: iterates a HashMap"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic {
            file: "a\"b.rs".into(),
            line: 1,
            rule: Rule::D5,
            message: "x\ny".into(),
        };
        let json = to_json(&[d]);
        assert!(json.contains("\"file\": \"a\\\"b.rs\""));
        assert!(json.contains("\"message\": \"x\\ny\""));
        assert_eq!(to_json(&[]), "[]\n");
    }
}
