//! The lint engine: file classification, `#[cfg(test)]` region
//! tracking, suppression parsing, workspace walking, and rule dispatch.

use crate::callgraph::{close_deps, crate_and_stem, CallGraph, CrateDeps};
use crate::diag::{Diagnostic, LintReport, LintStats, Rule, StaleSuppression};
use crate::lexer::{lex, LexError, TokKind};
use crate::parse::{parse_fns, FnItem, RootKind};
use crate::{rules, sau};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A code token projected out of the raw stream: kind, text slice and
/// line. Comments are kept in a separate list (they drive suppressions
/// and `SAFETY:` checks, not the rule patterns).
#[derive(Debug, Clone, Copy)]
pub struct Ct<'a> {
    /// Token kind (never a comment kind in [`FileCx::code`]).
    pub kind: TokKind,
    /// The token's text.
    pub text: &'a str,
    /// 1-based start line.
    pub line: u32,
}

/// A comment with its line extent.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Full comment text including the `//` or `/*` markers.
    pub text: &'a str,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based line of the last byte (equals `line` for line comments).
    pub end_line: u32,
}

/// Path-derived lint classification of one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Test code: every rule is off (`tests/`, `benches/`, `src/tests.rs`).
    pub test: bool,
    /// Designated environment-config module: D3 is off.
    pub env_module: bool,
    /// Bench/profile code: D6 is off.
    pub timing_exempt: bool,
    /// Designated atomic artifact-I/O module: D7 is off.
    pub artifact_io_module: bool,
    /// Leaf code (benches, examples, the lint itself) that nothing on a
    /// serve path can call: excluded from the call graph so its method
    /// names never absorb `.name(…)` resolution edges. File-local rules
    /// (D, U) still apply.
    pub graph_exempt: bool,
}

/// Modules allowed to read process environment variables (rule D3).
/// Everything else must go through the parse-once accessors these
/// modules export.
pub const ENV_MODULES: &[&str] = &[
    "crates/nn/src/par.rs",    // TYPILUS_THREADS (parse-once)
    "crates/nn/src/mode.rs",   // TYPILUS_NN_NAIVE (resolve-once)
    "crates/nn/src/config.rs", // arena trace toggles (read-once)
    "crates/bench/src/lib.rs", // bench scale/output knobs
];

/// Modules allowed to open files for writing directly (rule D7). All
/// artifact writes elsewhere must go through the atomic, checksummed
/// writer this module exports — a crash mid-`std::fs::write` leaves a
/// torn file that nothing can detect.
pub const ARTIFACT_IO_MODULES: &[&str] = &[
    "crates/core/src/atomic_io.rs", // the atomic writer itself
];

impl FileClass {
    /// Derives the class from a workspace-relative, `/`-separated path.
    pub fn from_path(path: &str) -> FileClass {
        let test = path.contains("/tests/")
            || path.starts_with("tests/")
            || path.ends_with("/tests.rs")
            || path.contains("/benches/");
        let env_module = ENV_MODULES.contains(&path);
        let timing_exempt = path.starts_with("crates/bench/")
            || path.ends_with("/profile.rs")
            || path.contains("/benches/");
        let artifact_io_module = ARTIFACT_IO_MODULES.contains(&path);
        let graph_exempt = path.starts_with("crates/bench/")
            || path.starts_with("crates/lint/")
            || path.starts_with("examples/")
            || path.contains("/examples/");
        FileClass {
            test,
            env_module,
            timing_exempt,
            artifact_io_module,
            graph_exempt,
        }
    }
}

/// Everything the rules need to know about one source file.
pub struct FileCx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Non-comment tokens in order.
    pub code: Vec<Ct<'a>>,
    /// Comment tokens in order.
    pub comments: Vec<Comment<'a>>,
    /// Path-derived classification.
    pub class: FileClass,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl<'a> FileCx<'a> {
    /// Whether a line is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.class.test
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Index of the token matching `open` (`(`, `[` or `{`) at `idx`.
    /// Returns the last token index if unbalanced (never out of range).
    pub fn matching_close(&self, idx: usize) -> usize {
        let open = self.code[idx].text.as_bytes()[0];
        let close = match open {
            b'(' => ")",
            b'[' => "]",
            b'{' => "}",
            _ => return idx,
        };
        let open = &self.code[idx].text;
        let mut depth = 0usize;
        for (j, t) in self.code.iter().enumerate().skip(idx) {
            if t.kind == TokKind::Punct {
                if t.text == *open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
            }
        }
        self.code.len() - 1
    }

    /// The first code line strictly after `line` (for suppression scope).
    fn next_code_line(&self, line: u32) -> Option<u32> {
        self.code.iter().map(|t| t.line).filter(|&l| l > line).min()
    }
}

/// A parsed `// lint: allow(...)` comment.
struct Suppression {
    rules: Vec<Rule>,
    /// 1-based line of the comment (for stale reporting).
    line: u32,
    /// Inclusive line ranges the suppression covers: its own line, the
    /// next code line, and — when it sits on a fn header — the whole fn.
    ranges: Vec<(u32, u32)>,
    /// Whether it suppressed at least one diagnostic this run.
    used: bool,
}

/// The suppression marker. Written split here so the lint does not
/// flag its own engine source as a (malformed) suppression comment.
const MARKER: &str = concat!("lint:", " allow(");

/// The reachability-root marker, split for the same reason.
const ROOT_MARKER: &str = concat!("lint:", " root(");

/// Scope of a comment at `line`/`next` (next code line): when either
/// lands in a fn's header region, the comment governs the whole fn.
fn fn_scope(fns: &[FnItem], line: u32, next: Option<u32>) -> Option<(u32, u32)> {
    let hits = |l: u32| {
        fns.iter()
            .find(|f| f.header_lines.0 <= l && l <= f.header_lines.1)
    };
    hits(line).or_else(|| next.and_then(hits)).map(|f| f.lines)
}

/// Parses suppressions out of the comments; malformed ones become
/// `allow` diagnostics. A suppression covers its own line and the next
/// code line; placed on a fn header (doc/attribute/signature lines), it
/// covers the whole fn — that is how invariant-bounded kernels carry
/// one justification instead of one per indexing expression.
fn parse_suppressions(
    cx: &FileCx,
    fns: &[FnItem],
    diags: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &cx.comments {
        // Doc comments describe the syntax; only plain comments carry
        // live suppressions.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[at + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic {
                file: cx.path.to_string(),
                line: c.line,
                rule: Rule::Allow,
                message: "malformed suppression: missing `)`".to_string(),
            });
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for name in rest[..close].split(',') {
            let name = name.trim();
            match Rule::parse_family(name) {
                Some(rs) => rules.extend(rs),
                None => {
                    bad = true;
                    diags.push(Diagnostic {
                        file: cx.path.to_string(),
                        line: c.line,
                        rule: Rule::Allow,
                        message: format!("unknown rule {name:?} in suppression"),
                    });
                }
            }
        }
        // Justification: whatever follows the closing paren, minus
        // separator punctuation. It is mandatory.
        let justification = rest[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':' | '·')
            })
            .trim_end_matches("*/")
            .trim();
        if justification.is_empty() {
            diags.push(Diagnostic {
                file: cx.path.to_string(),
                line: c.line,
                rule: Rule::Allow,
                message: "suppression lacks a justification (\"lint: allow(Dn) — why\")"
                    .to_string(),
            });
            continue;
        }
        if !bad && !rules.is_empty() {
            let next = cx.next_code_line(c.end_line);
            let mut ranges = vec![(c.end_line, c.end_line)];
            if let Some(n) = next {
                ranges.push((n, n));
            }
            if let Some(span) = fn_scope(fns, c.line, next) {
                ranges.push(span);
            }
            out.push(Suppression {
                rules,
                line: c.line,
                ranges,
                used: false,
            });
        }
    }
    out
}

/// Attaches engine-owned facts to the parsed fns: test membership,
/// graph membership, `# Safety` doc sections, and `root(...)`
/// annotations. Malformed or floating root annotations become `allow`
/// diagnostics — a root that silently fails to attach would silently
/// turn the whole S/A analysis off.
fn annotate_fns(cx: &FileCx, fns: &mut [FnItem], diags: &mut Vec<Diagnostic>) {
    for f in fns.iter_mut() {
        f.is_test = cx.class.test
            || cx
                .test_regions
                .iter()
                .any(|&(lo, hi)| lo <= f.item_line && f.item_line <= hi);
        f.in_graph = !f.is_test && !cx.class.graph_exempt;
    }
    for c in &cx.comments {
        let next = cx.next_code_line(c.end_line);
        let is_doc = c.text.starts_with("///") || c.text.starts_with("/**");
        if is_doc && c.text.contains("# Safety") {
            if let Some(f) = fns.iter_mut().find(|f| {
                let hit = |l: u32| f.header_lines.0 <= l && l <= f.header_lines.1;
                hit(c.line) || next.is_some_and(hit)
            }) {
                f.doc_has_safety = true;
            }
            continue;
        }
        let Some(at) = c.text.find(ROOT_MARKER) else {
            continue;
        };
        if is_doc || c.text.starts_with("//!") {
            continue;
        }
        let rest = &c.text[at + ROOT_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic {
                file: cx.path.to_string(),
                line: c.line,
                rule: Rule::Allow,
                message: "malformed root annotation: missing `)`".to_string(),
            });
            continue;
        };
        let name = rest[..close].trim();
        let Some(kind) = RootKind::parse(name) else {
            diags.push(Diagnostic {
                file: cx.path.to_string(),
                line: c.line,
                rule: Rule::Allow,
                message: format!("unknown root family {name:?} (expected serve or hotpath)"),
            });
            continue;
        };
        let attached = fns.iter_mut().find(|f| {
            let hit = |l: u32| f.header_lines.0 <= l && l <= f.header_lines.1;
            hit(c.line) || next.is_some_and(hit)
        });
        match attached {
            Some(f) => {
                if !f.roots.contains(&kind) {
                    f.roots.push(kind);
                }
            }
            None => diags.push(Diagnostic {
                file: cx.path.to_string(),
                line: c.line,
                rule: Rule::Allow,
                message: format!(
                    "root({name}) annotation is not on a fn header — it anchors nothing"
                ),
            }),
        }
    }
}

/// Marks the line ranges of items behind `#[cfg(test)]` or `#[test]`.
fn find_test_regions(code: &[Ct]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < code.len() {
        if !(code[i].text == "#" && code[i + 1].text == "[") {
            i += 1;
            continue;
        }
        // Attribute contents: up to the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test_attr = false;
        let mut saw_cfg = false;
        let mut saw_not = false;
        while j < code.len() {
            match code[j].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "cfg" => saw_cfg = true,
                // `#[cfg(not(test))]` is the opposite of a test region.
                "not" if saw_cfg => saw_not = true,
                "test" if (saw_cfg && !saw_not) || j == i + 2 => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr || j >= code.len() {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes, then find the item's brace block.
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].text == "#" && code[k + 1].text == "[" {
            let mut d = 0usize;
            while k < code.len() {
                match code[k].text {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the opening `{` of the item (a `;` first means no body).
        let mut open = None;
        while k < code.len() {
            match code[k].text {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        if let Some(open_idx) = open {
            let mut depth = 0usize;
            let mut end = open_idx;
            for (m, t) in code.iter().enumerate().skip(open_idx) {
                match t.text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = m;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            out.push((code[i].line, code[end].line));
            i = end + 1;
        } else {
            i = k + 1;
        }
    }
    out
}

/// Builds one file's lint context: lexes, splits code from comments,
/// and marks the test regions.
fn build_cx<'a>(path: &'a str, src: &'a str) -> Result<FileCx<'a>, LexError> {
    let toks = lex(src)?;
    let mut code = Vec::new();
    let mut comments = Vec::new();
    for t in &toks {
        let text = &src[t.start..t.end];
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => comments.push(Comment {
                text,
                line: t.line,
                end_line: t.line + text.matches('\n').count() as u32,
            }),
            _ => code.push(Ct {
                kind: t.kind,
                text,
                line: t.line,
            }),
        }
    }
    let test_regions = find_test_regions(&code);
    Ok(FileCx {
        path,
        code,
        comments,
        class: FileClass::from_path(path),
        test_regions,
    })
}

/// The two-phase analysis over an in-memory file set.
///
/// Phase 1 is per-file: lex, parse fn items, attach roots/test/doc
/// facts. Phase 2 is global: build the call graph, run reachability
/// (S/A), then the file-local rules (D, U), then apply suppressions
/// with usage tracking so unused ones surface as stale.
fn lint_files_inner(files: &[(String, String)]) -> Result<LintReport, (String, LexError)> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut cxs: Vec<FileCx> = Vec::with_capacity(files.len());
    let mut parsed: Vec<(String, Vec<FnItem>)> = Vec::with_capacity(files.len());
    let mut direct_deps = CrateDeps::new();
    for (path, src) in files {
        let cx = build_cx(path, src).map_err(|e| (path.clone(), e))?;
        let mut fns = parse_fns(&cx.code);
        annotate_fns(&cx, &mut fns, &mut diags);
        // `use typilus_x::…` (or any `typilus_x` path ident) marks a
        // crate dependency; the call graph refuses edges outside the
        // resulting closure.
        let (krate, _) = crate_and_stem(path);
        for t in &cx.code {
            if t.kind == TokKind::Ident {
                // The core crate's lib is plain `typilus`; every other
                // workspace crate is `typilus_<dir>`.
                let dep = match t.text {
                    "typilus" => Some("core"),
                    other => other.strip_prefix("typilus_").filter(|d| !d.is_empty()),
                };
                if let Some(dep) = dep {
                    if dep != krate {
                        direct_deps
                            .entry(krate.to_string())
                            .or_default()
                            .insert(dep.to_string());
                    }
                }
            }
        }
        cxs.push(cx);
        parsed.push((path.clone(), fns));
    }

    let deps = close_deps(&direct_deps);
    let graph = CallGraph::build(&parsed, &deps);
    sau::run_reachability_rules(&graph, &mut diags);

    let mut suppressions: Vec<Vec<Suppression>> = Vec::with_capacity(files.len());
    for (cx, (_, fns)) in cxs.iter().zip(&parsed) {
        rules::run_all(cx, &mut diags);
        if !cx.class.test {
            sau::run_unsafe_rules(cx.path, &cx.code, fns, &mut diags);
        }
        suppressions.push(parse_suppressions(cx, fns, &mut diags));
    }

    let file_idx: BTreeMap<&str, usize> =
        cxs.iter().enumerate().map(|(i, c)| (c.path, i)).collect();
    diags.retain(|d| {
        if d.rule == Rule::Allow {
            return true;
        }
        let Some(&fi) = file_idx.get(d.file.as_str()) else {
            return true;
        };
        for s in &mut suppressions[fi] {
            if s.rules.contains(&d.rule)
                && s.ranges
                    .iter()
                    .any(|&(lo, hi)| lo <= d.line && d.line <= hi)
            {
                s.used = true;
                return false;
            }
        }
        true
    });
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let mut stale = Vec::new();
    let mut total_supps = 0usize;
    for (cx, file_supps) in cxs.iter().zip(&suppressions) {
        total_supps += file_supps.len();
        for s in file_supps {
            if !s.used {
                stale.push(StaleSuppression {
                    file: cx.path.to_string(),
                    line: s.line,
                    rules: s.rules.clone(),
                });
            }
        }
    }

    let stats = LintStats {
        files: files.len(),
        fns: graph.nodes.len(),
        edges: graph.edge_count(),
        serve_reachable: graph.reachable_count(RootKind::Serve),
        hotpath_reachable: graph.reachable_count(RootKind::Hotpath),
        suppressions: total_supps,
    };
    Ok(LintReport {
        diagnostics: diags,
        stale,
        stats,
    })
}

/// Lints an in-memory set of `(path, source)` files as one workspace:
/// the call graph spans all of them. Paths must be workspace-relative
/// with forward slashes.
///
/// # Errors
///
/// Returns a message naming the first file that fails to lex.
pub fn lint_files(files: &[(String, String)]) -> Result<LintReport, String> {
    lint_files_inner(files).map_err(|(path, e)| format!("lexing {path}: {e}"))
}

/// Lints one file's source text. `path` must be workspace-relative with
/// forward slashes — it drives the per-path rule exemptions. The call
/// graph is file-local; stale-suppression info is dropped.
///
/// # Errors
///
/// Returns the lexer's error when the file is not valid-enough Rust.
pub fn lint_source(path: &str, src: &str) -> Result<Vec<Diagnostic>, LexError> {
    let files = [(path.to_string(), src.to_string())];
    match lint_files_inner(&files) {
        Ok(report) => Ok(report.diagnostics),
        Err((_, e)) => Err(e),
    }
}

/// Recursively collects the workspace's `.rs` files (skipping `target`,
/// `vendor` and dot-directories), sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                walk(&path, out)?;
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Lints every workspace `.rs` file under `root` as one unit: the call
/// graph spans the whole workspace.
///
/// # Errors
///
/// Returns an error string for I/O or lexing failures (those are gate
/// failures of their own, not diagnostics).
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let paths = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut files = Vec::with_capacity(paths.len());
    for file in &paths {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        files.push((rel, src));
    }
    lint_files(&files)
}
