//! The lint engine: file classification, `#[cfg(test)]` region
//! tracking, suppression parsing, workspace walking, and rule dispatch.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, LexError, TokKind};
use crate::rules;
use std::path::{Path, PathBuf};

/// A code token projected out of the raw stream: kind, text slice and
/// line. Comments are kept in a separate list (they drive suppressions
/// and `SAFETY:` checks, not the rule patterns).
#[derive(Debug, Clone, Copy)]
pub struct Ct<'a> {
    /// Token kind (never a comment kind in [`FileCx::code`]).
    pub kind: TokKind,
    /// The token's text.
    pub text: &'a str,
    /// 1-based start line.
    pub line: u32,
}

/// A comment with its line extent.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// Full comment text including the `//` or `/*` markers.
    pub text: &'a str,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based line of the last byte (equals `line` for line comments).
    pub end_line: u32,
}

/// Path-derived lint classification of one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Test code: every rule is off (`tests/`, `benches/`, `src/tests.rs`).
    pub test: bool,
    /// Designated environment-config module: D3 is off.
    pub env_module: bool,
    /// Bench/profile code: D6 is off.
    pub timing_exempt: bool,
    /// Designated atomic artifact-I/O module: D7 is off.
    pub artifact_io_module: bool,
}

/// Modules allowed to read process environment variables (rule D3).
/// Everything else must go through the parse-once accessors these
/// modules export.
pub const ENV_MODULES: &[&str] = &[
    "crates/nn/src/par.rs",    // TYPILUS_THREADS (parse-once)
    "crates/nn/src/mode.rs",   // TYPILUS_NN_NAIVE (resolve-once)
    "crates/nn/src/config.rs", // arena trace toggles (read-once)
    "crates/bench/src/lib.rs", // bench scale/output knobs
];

/// Modules allowed to open files for writing directly (rule D7). All
/// artifact writes elsewhere must go through the atomic, checksummed
/// writer this module exports — a crash mid-`std::fs::write` leaves a
/// torn file that nothing can detect.
pub const ARTIFACT_IO_MODULES: &[&str] = &[
    "crates/core/src/atomic_io.rs", // the atomic writer itself
];

impl FileClass {
    /// Derives the class from a workspace-relative, `/`-separated path.
    pub fn from_path(path: &str) -> FileClass {
        let test = path.contains("/tests/")
            || path.starts_with("tests/")
            || path.ends_with("/tests.rs")
            || path.contains("/benches/");
        let env_module = ENV_MODULES.contains(&path);
        let timing_exempt = path.starts_with("crates/bench/")
            || path.ends_with("/profile.rs")
            || path.contains("/benches/");
        let artifact_io_module = ARTIFACT_IO_MODULES.contains(&path);
        FileClass {
            test,
            env_module,
            timing_exempt,
            artifact_io_module,
        }
    }
}

/// Everything the rules need to know about one source file.
pub struct FileCx<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Non-comment tokens in order.
    pub code: Vec<Ct<'a>>,
    /// Comment tokens in order.
    pub comments: Vec<Comment<'a>>,
    /// Path-derived classification.
    pub class: FileClass,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl<'a> FileCx<'a> {
    /// Whether a line is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.class.test
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Index of the token matching `open` (`(`, `[` or `{`) at `idx`.
    /// Returns the last token index if unbalanced (never out of range).
    pub fn matching_close(&self, idx: usize) -> usize {
        let open = self.code[idx].text.as_bytes()[0];
        let close = match open {
            b'(' => ")",
            b'[' => "]",
            b'{' => "}",
            _ => return idx,
        };
        let open = &self.code[idx].text;
        let mut depth = 0usize;
        for (j, t) in self.code.iter().enumerate().skip(idx) {
            if t.kind == TokKind::Punct {
                if t.text == *open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
            }
        }
        self.code.len() - 1
    }

    /// The first code line strictly after `line` (for suppression scope).
    fn next_code_line(&self, line: u32) -> Option<u32> {
        self.code.iter().map(|t| t.line).filter(|&l| l > line).min()
    }
}

/// A parsed `// lint: allow(...)` comment.
struct Suppression {
    rules: Vec<Rule>,
    /// The suppression covers its own line and the next code line.
    lines: (u32, Option<u32>),
}

/// The suppression marker. Written split here so the lint does not
/// flag its own engine source as a (malformed) suppression comment.
const MARKER: &str = concat!("lint:", " allow(");

/// Parses suppressions out of the comments; malformed ones become
/// `allow` diagnostics.
fn parse_suppressions(cx: &FileCx, diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &cx.comments {
        // Doc comments describe the syntax; only plain comments carry
        // live suppressions.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[at + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic {
                file: cx.path.to_string(),
                line: c.line,
                rule: Rule::Allow,
                message: "malformed suppression: missing `)`".to_string(),
            });
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for name in rest[..close].split(',') {
            let name = name.trim();
            match Rule::parse(name) {
                Some(r) => rules.push(r),
                None => {
                    bad = true;
                    diags.push(Diagnostic {
                        file: cx.path.to_string(),
                        line: c.line,
                        rule: Rule::Allow,
                        message: format!("unknown rule {name:?} in suppression"),
                    });
                }
            }
        }
        // Justification: whatever follows the closing paren, minus
        // separator punctuation. It is mandatory.
        let justification = rest[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':' | '·')
            })
            .trim_end_matches("*/")
            .trim();
        if justification.is_empty() {
            diags.push(Diagnostic {
                file: cx.path.to_string(),
                line: c.line,
                rule: Rule::Allow,
                message: "suppression lacks a justification (\"lint: allow(Dn) — why\")"
                    .to_string(),
            });
            continue;
        }
        if !bad && !rules.is_empty() {
            out.push(Suppression {
                rules,
                lines: (c.end_line, cx.next_code_line(c.end_line)),
            });
        }
    }
    out
}

/// Marks the line ranges of items behind `#[cfg(test)]` or `#[test]`.
fn find_test_regions(code: &[Ct]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < code.len() {
        if !(code[i].text == "#" && code[i + 1].text == "[") {
            i += 1;
            continue;
        }
        // Attribute contents: up to the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test_attr = false;
        let mut saw_cfg = false;
        let mut saw_not = false;
        while j < code.len() {
            match code[j].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "cfg" => saw_cfg = true,
                // `#[cfg(not(test))]` is the opposite of a test region.
                "not" if saw_cfg => saw_not = true,
                "test" if (saw_cfg && !saw_not) || j == i + 2 => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr || j >= code.len() {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes, then find the item's brace block.
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].text == "#" && code[k + 1].text == "[" {
            let mut d = 0usize;
            while k < code.len() {
                match code[k].text {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the opening `{` of the item (a `;` first means no body).
        let mut open = None;
        while k < code.len() {
            match code[k].text {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        if let Some(open_idx) = open {
            let mut depth = 0usize;
            let mut end = open_idx;
            for (m, t) in code.iter().enumerate().skip(open_idx) {
                match t.text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = m;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            out.push((code[i].line, code[end].line));
            i = end + 1;
        } else {
            i = k + 1;
        }
    }
    out
}

/// Lints one file's source text. `path` must be workspace-relative with
/// forward slashes — it drives the per-path rule exemptions.
///
/// # Errors
///
/// Returns the lexer's error when the file is not valid-enough Rust.
pub fn lint_source(path: &str, src: &str) -> Result<Vec<Diagnostic>, LexError> {
    let toks = lex(src)?;
    let mut code = Vec::new();
    let mut comments = Vec::new();
    for t in &toks {
        let text = &src[t.start..t.end];
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => comments.push(Comment {
                text,
                line: t.line,
                end_line: t.line + text.matches('\n').count() as u32,
            }),
            _ => code.push(Ct {
                kind: t.kind,
                text,
                line: t.line,
            }),
        }
    }
    let test_regions = find_test_regions(&code);
    let cx = FileCx {
        path,
        code,
        comments,
        class: FileClass::from_path(path),
        test_regions,
    };
    let mut diags = Vec::new();
    let suppressions = parse_suppressions(&cx, &mut diags);
    rules::run_all(&cx, &mut diags);
    diags.retain(|d| {
        d.rule == Rule::Allow
            || !suppressions.iter().any(|s| {
                s.rules.contains(&d.rule) && (s.lines.0 == d.line || s.lines.1 == Some(d.line))
            })
    });
    diags.sort_by_key(|d| (d.line, d.rule));
    Ok(diags)
}

/// Recursively collects the workspace's `.rs` files (skipping `target`,
/// `vendor` and dot-directories), sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                walk(&path, out)?;
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Lints every workspace `.rs` file under `root`.
///
/// # Errors
///
/// Returns an error string for I/O or lexing failures (those are gate
/// failures of their own, not diagnostics).
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diags = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let file_diags =
            lint_source(&rel, &src).map_err(|e| format!("lexing {}: {e}", file.display()))?;
        diags.extend(file_diags);
    }
    Ok(diags)
}
