//! `typilus-lint` — walk the workspace, print diagnostics, gate on them.
//!
//! ```sh
//! typilus-lint [--root DIR] [--json] [--deny-stale]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed diagnostics (or stale
//! suppressions under `--deny-stale`), `2` usage or I/O/lex errors.

use std::path::PathBuf;
use typilus_lint::{lint_workspace, report_to_json};

fn main() {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_stale = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-stale" => deny_stale = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root requires a directory");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: typilus-lint [--root DIR] [--json] [--deny-stale]");
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    // Default to the workspace root when invoked from a member crate
    // (cargo sets the cwd to the invoking directory).
    if !root.join("crates").is_dir() {
        if let Some(up) = find_workspace_root(&root) {
            root = up;
        }
    }
    match lint_workspace(&root) {
        Ok(report) => {
            let diags = &report.diagnostics;
            if json {
                print!("{}", report_to_json(&report));
            } else {
                for d in diags {
                    println!("{d}");
                }
                for s in &report.stale {
                    println!("{s}");
                }
                let st = report.stats;
                if diags.is_empty() && report.stale.is_empty() {
                    eprintln!(
                        "typilus-lint: workspace clean ({} files, {} fns, {} edges, \
                         {} serve-reachable, {} hotpath-reachable, {} suppressions)",
                        st.files,
                        st.fns,
                        st.edges,
                        st.serve_reachable,
                        st.hotpath_reachable,
                        st.suppressions
                    );
                } else {
                    eprintln!(
                        "typilus-lint: {} diagnostic(s), {} stale suppression(s)",
                        diags.len(),
                        report.stale.len()
                    );
                }
            }
            let gate = !diags.is_empty() || (deny_stale && !report.stale.is_empty());
            std::process::exit(if gate { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("typilus-lint: error: {e}");
            std::process::exit(2);
        }
    }
}

/// Walks up from `start` to the first directory containing `crates/`.
fn find_workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        dir = dir.parent()?.to_path_buf();
    }
}
