//! A lightweight item/block parser over the token stream.
//!
//! The determinism rules D1–D7 work on flat token patterns; the
//! serve-era rules (S/A/U) need *structure*: which `fn` a token belongs
//! to, which type an `impl` block targets, what a function calls, and
//! where the panic- and allocation-capable expressions sit. This module
//! recovers exactly that much shape — fn/impl/mod items with body
//! extents, call expressions (direct, path-qualified and method calls),
//! panic sites (`unwrap`/`expect`, panicking macros, slice indexing)
//! and allocation sites — without attempting a full Rust grammar.
//! Closure bodies are attributed to their enclosing `fn`; nested `fn`
//! items get their own node and own their tokens exclusively.

use crate::engine::Ct;
use crate::lexer::TokKind;

/// Rust keywords — excluded from call-name and indexing-receiver
/// positions so `if (…)`, `return […]` and friends never look like
/// expressions.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Macros whose expansion panics unconditionally or on a failed check.
/// `debug_assert*` is excluded: it compiles out of release builds, and
/// the serve contract is a release-mode contract.
pub const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Macros that allocate on every expansion.
pub const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Method names that allocate a fresh buffer (or clone into one).
pub const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "collect",
    "into_owned",
    "concat",
    "join",
    "repeat",
];

/// `Type::constructor` pairs that allocate (or exist to grow).
pub const ALLOC_CALLS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Reachability root families, declared with `// lint: root(...)`
/// comments on a function's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootKind {
    /// Client-reachable serve path: no panic may be reachable from here
    /// (rules S1–S3).
    Serve,
    /// Allocation-free query hot path (rule A1).
    Hotpath,
}

impl RootKind {
    /// Parses a root family name as written inside `root(...)`.
    pub fn parse(name: &str) -> Option<RootKind> {
        match name {
            "serve" => Some(RootKind::Serve),
            "hotpath" => Some(RootKind::Hotpath),
            _ => None,
        }
    }

    /// The name as written in annotations.
    pub fn name(self) -> &'static str {
        match self {
            RootKind::Serve => "serve",
            RootKind::Hotpath => "hotpath",
        }
    }
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (`foo` of `foo(…)`, `bar` of `x.bar(…)`).
    pub name: String,
    /// Last path segment before the name (`index` of `index::top_k(…)`,
    /// `Vec` of `Vec::new()`); `None` for unqualified and method calls.
    pub qual: Option<String>,
    /// Whether this is a `.name(…)` method call.
    pub method: bool,
    /// Inside a `catch_unwind(…)` argument list: a panic below this
    /// call unwinds into the supervisor, not through the caller, so
    /// serve reachability does not flow through it.
    pub caught: bool,
    /// 1-based line.
    pub line: u32,
}

/// What kind of panic-capable expression a [`PanicSite`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(…)` — rule S1 (unless the name resolves
    /// to a workspace-defined method of the same crate).
    UnwrapExpect,
    /// A panicking macro (`panic!`, `assert!`, …) — rule S2.
    Macro,
    /// Slice/array indexing `expr[…]` — rule S3.
    Indexing,
}

/// One panic-capable expression.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which family of panic site.
    pub kind: PanicKind,
    /// The offending token text (`unwrap`, `assert_eq`, the indexed
    /// receiver, …).
    pub what: String,
    /// Inside a `catch_unwind(…)` argument list: the panic is a typed
    /// error at the supervision boundary, not a daemon killer, so the
    /// S-rules skip it.
    pub caught: bool,
    /// 1-based line.
    pub line: u32,
}

/// One allocating expression.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// Rendered form of the allocation (`Vec::new`, `format!`, `clone`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` target type name, if the fn is a method or
    /// associated function.
    pub qual: Option<String>,
    /// Module path inside the file (nested `mod` names, `/`-joined;
    /// empty at file level).
    pub module: String,
    /// 1-based line of the item's first token (attributes included).
    pub item_line: u32,
    /// Header extent: item start line through the body-open (or `;`)
    /// line. Root annotations and fn-scope suppressions attach here.
    pub header_lines: (u32, u32),
    /// Full extent, item start through body close (or `;`).
    pub lines: (u32, u32),
    /// Token-index range of the signature after the name (generics,
    /// params, return type) — scanned by rule U2 for raw pointers.
    pub sig_range: (usize, usize),
    /// Token indices of the body braces, if the fn has a body.
    pub body: Option<(usize, usize)>,
    /// `pub` with no `(…)` restriction, with every enclosing `mod`
    /// also `pub` — i.e. plausibly visible outside the crate.
    pub effectively_pub: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Inside a `#[cfg(test)]` region (set by the engine).
    pub is_test: bool,
    /// Participates in the workspace call graph (set by the engine:
    /// non-test fns outside the graph-exempt leaf crates).
    pub in_graph: bool,
    /// Whether the doc comment carries a `# Safety` section (set by the
    /// engine, which owns the comments).
    pub doc_has_safety: bool,
    /// Root annotations attached to the header (set by the engine).
    pub roots: Vec<RootKind>,
    /// Call expressions in the body (nested fns excluded).
    pub calls: Vec<CallSite>,
    /// Panic-capable expressions in the body (nested fns excluded).
    pub panics: Vec<PanicSite>,
    /// Allocating expressions in the body (nested fns excluded).
    pub allocs: Vec<AllocSite>,
}

/// Whether a token is an identifier that is not a keyword.
fn is_expr_ident(t: &Ct) -> bool {
    t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text)
}

/// Finds the matching close for the opener at `idx` (`(`/`[`/`{`),
/// clamping to the last token when unbalanced.
fn matching(code: &[Ct], idx: usize) -> usize {
    let (open, close) = match code[idx].text {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return idx,
    };
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(idx) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Skips a `<…>` generics group starting at `idx` (which must be `<`),
/// returning the index one past the matching `>`. When the `<` turns
/// out to be a comparison operator (a `(`/`{`/`;` shows up at angle
/// depth), returns `idx + 1` — skip just the operator token — so
/// callers always make progress.
fn skip_angles(code: &[Ct], idx: usize) -> usize {
    let mut depth = 0usize;
    let mut i = idx;
    while i < code.len() {
        match code[i].text {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            "(" | "{" | ";" => return idx + 1,
            _ => {}
        }
        i += 1;
    }
    idx + 1
}

/// Extracts the target type name of an `impl` block whose `impl`
/// keyword sits at `idx`; returns `(type_name, body_open_idx)`.
/// `impl<T> Trait for Type<T> { … }` yields `Type`.
fn parse_impl(code: &[Ct], idx: usize) -> Option<(String, usize)> {
    let mut i = idx + 1;
    if code.get(i).map(|t| t.text) == Some("<") {
        i = skip_angles(code, i);
    }
    // Collect idents up to the body `{`, tracking the last ident seen
    // after a `for` (trait impl) or overall (inherent impl).
    let mut last_ident: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    while i < code.len() {
        let t = &code[i];
        match t.text {
            "{" => {
                let name = if saw_for { after_for } else { last_ident };
                return name.map(|n| (n.to_string(), i));
            }
            ";" => return None,
            "for" if t.kind == TokKind::Ident => saw_for = true,
            "<" => {
                i = skip_angles(code, i);
                continue;
            }
            "where" => {
                // Type name is fixed by now; scan on to the `{`.
            }
            _ if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text) => {
                last_ident = Some(t.text);
                if saw_for {
                    after_for = Some(t.text);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Walks backwards from the `fn` keyword over its modifiers and
/// attributes; returns `(item_start_idx, is_pub, restricted, is_unsafe)`.
fn scan_modifiers(code: &[Ct], fn_idx: usize) -> (usize, bool, bool, bool) {
    let mut start = fn_idx;
    let mut is_pub = false;
    let mut restricted = false;
    let mut is_unsafe = false;
    let mut i = fn_idx;
    while i > 0 {
        let prev = &code[i - 1];
        match prev.text {
            "unsafe" => {
                is_unsafe = true;
                i -= 1;
            }
            "const" | "async" | "extern" | "default" => i -= 1,
            _ if prev.kind == TokKind::Str => i -= 1, // extern "C"
            ")" => {
                // `pub(crate)` / `pub(in path)` restriction group.
                let mut depth = 0usize;
                let mut j = i - 1;
                loop {
                    match code[j].text {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                if j >= 1 && code[j - 1].text == "pub" {
                    is_pub = true;
                    restricted = true;
                    i = j - 1;
                } else {
                    break;
                }
            }
            "pub" => {
                is_pub = true;
                i -= 1;
            }
            _ => break,
        }
        start = i;
    }
    // Attributes above the modifiers: `#[…]` groups.
    loop {
        // Find a `]` directly before `start` that closes a `#[…]`.
        if start < 2 || code[start - 1].text != "]" {
            break;
        }
        let mut depth = 0usize;
        let mut j = start - 1;
        loop {
            match code[j].text {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                break;
            }
            j -= 1;
        }
        if j >= 1 && code[j - 1].text == "#" {
            start = j - 1;
        } else {
            break;
        }
    }
    (start, is_pub, restricted, is_unsafe)
}

/// Parses every `fn` item of a file's code-token stream, attributing
/// call/panic/alloc sites to the innermost enclosing fn.
pub fn parse_fns(code: &[Ct]) -> Vec<FnItem> {
    struct Scope {
        close: usize,
        kind: ScopeKind,
    }
    enum ScopeKind {
        Mod { name: String, is_pub: bool },
        Impl { ty: String },
    }

    let mut fns: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        // Pop scopes we have walked past.
        while scopes.last().is_some_and(|s| i > s.close) {
            scopes.pop();
        }
        let t = &code[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text {
            "mod" => {
                if let (Some(name_t), Some(open_t)) = (code.get(i + 1), code.get(i + 2)) {
                    if name_t.kind == TokKind::Ident && open_t.text == "{" {
                        let is_pub = i > 0 && code[i - 1].text == "pub";
                        scopes.push(Scope {
                            close: matching(code, i + 2),
                            kind: ScopeKind::Mod {
                                name: name_t.text.to_string(),
                                is_pub,
                            },
                        });
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            "impl" => {
                if let Some((ty, open)) = parse_impl(code, i) {
                    scopes.push(Scope {
                        close: matching(code, open),
                        kind: ScopeKind::Impl { ty },
                    });
                    i = open + 1;
                    continue;
                }
                i += 1;
            }
            "fn" => {
                let Some(name_t) = code.get(i + 1) else {
                    i += 1;
                    continue;
                };
                // `fn(` is a function-pointer type, not an item.
                if name_t.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let (item_start, is_pub, restricted, is_unsafe) = scan_modifiers(code, i);
                // Signature: optional generics, params, return type /
                // where clause up to `{` or `;` at paren depth 0.
                let mut j = i + 2;
                if code.get(j).map(|t| t.text) == Some("<") {
                    j = skip_angles(code, j);
                }
                let sig_start = j;
                let mut body_open = None;
                let mut depth = 0usize;
                while j < code.len() {
                    match code[j].text {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "<" if depth == 0 => {
                            j = skip_angles(code, j);
                            continue;
                        }
                        "{" if depth == 0 => {
                            body_open = Some(j);
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let sig_end = j.min(code.len().saturating_sub(1));
                let (body, end_idx) = match body_open {
                    Some(open) => {
                        let close = matching(code, open);
                        (Some((open, close)), close)
                    }
                    None => (None, sig_end),
                };
                let qual = scopes.iter().rev().find_map(|s| match &s.kind {
                    ScopeKind::Impl { ty } => Some(ty.clone()),
                    _ => None,
                });
                let module = scopes
                    .iter()
                    .filter_map(|s| match &s.kind {
                        ScopeKind::Mod { name, .. } => Some(name.as_str()),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
                    .join("/");
                let mods_pub = scopes.iter().all(|s| match &s.kind {
                    ScopeKind::Mod { is_pub, .. } => *is_pub,
                    _ => true,
                });
                fns.push(FnItem {
                    name: name_t.text.to_string(),
                    qual,
                    module,
                    item_line: code[item_start].line,
                    header_lines: (
                        code[item_start].line,
                        code[body_open.unwrap_or(sig_end)].line,
                    ),
                    lines: (code[item_start].line, code[end_idx].line),
                    sig_range: (sig_start, sig_end),
                    body,
                    effectively_pub: is_pub && !restricted && mods_pub,
                    is_unsafe,
                    is_test: false,
                    in_graph: true,
                    doc_has_safety: false,
                    roots: Vec::new(),
                    calls: Vec::new(),
                    panics: Vec::new(),
                    allocs: Vec::new(),
                });
                // Do not skip the body: nested fns inside it must be
                // found too. Scope popping keeps impl/mod attribution
                // correct because fn bodies cannot re-open impls of
                // other files.
                i = body_open.map_or(sig_end + 1, |open| open + 1);
            }
            _ => i += 1,
        }
    }

    attribute_sites(code, &mut fns);
    fns
}

/// Marks every token inside a `catch_unwind(…)` argument list. A
/// panic raised there unwinds into the supervisor instead of through
/// the enclosing fn, so the S-rules treat these regions as legitimate
/// panic sinks (the A-rule does not: allocations still happen).
fn mark_caught_regions(code: &[Ct]) -> Vec<bool> {
    let mut caught = vec![false; code.len()];
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident || t.text != "catch_unwind" {
            continue;
        }
        // `catch_unwind(` directly or through a `::<F>` turbofish.
        let mut k = i + 1;
        if code.get(k).map(|t| t.text) == Some(":")
            && code.get(k + 1).map(|t| t.text) == Some(":")
            && code.get(k + 2).map(|t| t.text) == Some("<")
        {
            k = skip_angles(code, k + 2);
        }
        if code.get(k).map(|t| t.text) != Some("(") {
            continue;
        }
        let close = matching(code, k);
        for slot in caught.iter_mut().take(close).skip(k + 1) {
            *slot = true;
        }
    }
    caught
}

/// For each token range, finds the innermost fn body containing it and
/// records call/panic/alloc sites there.
fn attribute_sites(code: &[Ct], fns: &mut [FnItem]) {
    let caught = mark_caught_regions(code);
    // innermost[i] = index of the fn whose body most tightly contains
    // token i (fn bodies nest strictly, so the smallest range wins).
    let mut innermost: Vec<Option<usize>> = vec![None; code.len()];
    for (f_idx, f) in fns.iter().enumerate() {
        if let Some((open, close)) = f.body {
            for slot in innermost
                .iter_mut()
                .take(close.min(code.len().saturating_sub(1)))
                .skip(open + 1)
            {
                // Later fns with containing ranges are nested deeper in
                // the scan order only if they start later; strictly
                // smaller ranges always overwrite.
                *slot = Some(match *slot {
                    Some(prev) => {
                        let prev_span = fns[prev].body.map_or(usize::MAX, |(o, c)| c - o);
                        if close - open <= prev_span {
                            f_idx
                        } else {
                            prev
                        }
                    }
                    None => f_idx,
                });
            }
        }
    }

    for i in 0..code.len() {
        let Some(owner) = innermost[i] else { continue };
        let t = &code[i];
        let line = t.line;
        // Macro invocation: `name !` — panicking or allocating.
        if t.kind == TokKind::Ident && code.get(i + 1).map(|n| n.text) == Some("!") {
            // `!=` is the inequality operator, not a macro bang.
            if code.get(i + 2).map(|n| n.text) != Some("=") {
                if PANIC_MACROS.contains(&t.text) {
                    fns[owner].panics.push(PanicSite {
                        kind: PanicKind::Macro,
                        what: format!("{}!", t.text),
                        caught: caught[i],
                        line,
                    });
                } else if ALLOC_MACROS.contains(&t.text) {
                    fns[owner].allocs.push(AllocSite {
                        what: format!("{}!", t.text),
                        line,
                    });
                }
            }
            continue;
        }
        // Method call: `. name (` with optional turbofish.
        if t.text == "." && code.get(i + 1).is_some_and(is_expr_ident) {
            let m = &code[i + 1];
            let mut k = i + 2;
            if code.get(k).map(|t| t.text) == Some(":")
                && code.get(k + 1).map(|t| t.text) == Some(":")
                && code.get(k + 2).map(|t| t.text) == Some("<")
            {
                k = skip_angles(code, k + 2);
            }
            if code.get(k).map(|t| t.text) == Some("(") {
                fns[owner].calls.push(CallSite {
                    name: m.text.to_string(),
                    qual: None,
                    method: true,
                    caught: caught[i],
                    line: m.line,
                });
                if m.text == "unwrap" || m.text == "expect" {
                    fns[owner].panics.push(PanicSite {
                        kind: PanicKind::UnwrapExpect,
                        what: m.text.to_string(),
                        caught: caught[i],
                        line: m.line,
                    });
                } else if ALLOC_METHODS.contains(&m.text) {
                    fns[owner].allocs.push(AllocSite {
                        what: m.text.to_string(),
                        line: m.line,
                    });
                }
            }
            continue;
        }
        // Direct / path-qualified call: `name (` not preceded by `.`.
        if is_expr_ident(t)
            && code.get(i + 1).map(|n| n.text) == Some("(")
            && (i == 0 || (code[i - 1].text != "." && code[i - 1].text != "fn"))
        {
            let qual = if i >= 3
                && code[i - 1].text == ":"
                && code[i - 2].text == ":"
                && code[i - 3].kind == TokKind::Ident
            {
                Some(code[i - 3].text.to_string())
            } else {
                None
            };
            if let Some(q) = &qual {
                if ALLOC_CALLS.contains(&(q.as_str(), t.text)) {
                    fns[owner].allocs.push(AllocSite {
                        what: format!("{q}::{}", t.text),
                        line,
                    });
                }
            }
            fns[owner].calls.push(CallSite {
                name: t.text.to_string(),
                qual,
                method: false,
                caught: caught[i],
                line,
            });
            continue;
        }
        // Indexing: `[` whose previous token ends an expression.
        if t.text == "["
            && i > 0
            && (is_expr_ident(&code[i - 1]) || code[i - 1].text == ")" || code[i - 1].text == "]")
        {
            fns[owner].panics.push(PanicSite {
                kind: PanicKind::Indexing,
                what: code[i - 1].text.to_string(),
                caught: caught[i],
                line,
            });
        }
    }
}
