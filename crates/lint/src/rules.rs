//! The determinism/concurrency rules D1–D6.
//!
//! Every rule is a token-pattern pass over one file's
//! [`crate::engine::FileCx`]. The rules are deliberately *syntactic*:
//! they over-approximate (a name once bound to a `HashMap` taints every
//! later use of that name in the file) and rely on the mandatory
//! justification of the suppression syntax to document the cases the
//! approximation gets wrong. See `DESIGN.md` §10 for the contract each
//! rule enforces and the exact heuristics.

use crate::diag::{Diagnostic, Rule};
use crate::engine::{Ct, FileCx};
use crate::lexer::TokKind;

/// Methods that begin an iteration over a collection.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Terminal iterator consumers whose result does not depend on the
/// order the elements arrive in (for exactly-representable element
/// types; float reductions are handled separately by D2).
const ORDER_INSENSITIVE: &[&str] = &[
    "count", "len", "all", "any", "max", "min", "contains", "is_empty",
];

/// Hash-receiver methods that do not iterate (no diagnostic when a
/// tainted name is only used through these).
const NON_ITERATING: &[&str] = &[
    "len",
    "is_empty",
    "contains_key",
    "contains",
    "get",
    "get_mut",
    "insert",
    "remove",
    "entry",
    "capacity",
    "reserve",
    "clear",
    "retain",
];

/// Runs every rule over the file.
pub fn run_all(cx: &FileCx, diags: &mut Vec<Diagnostic>) {
    if cx.class.test {
        return;
    }
    let hash_names = collect_hash_names(cx);
    rule_d1_d2_iteration(cx, &hash_names, diags);
    rule_d1_serialized_fields(cx, diags);
    rule_d3_env_reads(cx, diags);
    rule_d4_unwrap_in_workers(cx, diags);
    rule_d5_undocumented_unsafe(cx, diags);
    rule_d6_wall_clock(cx, diags);
    rule_d7_artifact_writes(cx, diags);
}

fn push(cx: &FileCx, diags: &mut Vec<Diagnostic>, line: u32, rule: Rule, message: String) {
    if cx.is_test_line(line) {
        return;
    }
    diags.push(Diagnostic {
        file: cx.path.to_string(),
        line,
        rule,
        message,
    });
}

fn is_ident(t: &Ct, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

/// Names bound (as let, param, field or assignment) to a
/// `HashMap`/`HashSet` anywhere in the file.
fn collect_hash_names(cx: &FileCx) -> Vec<String> {
    let code = &cx.code;
    let mut names: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut k = i;
        while k >= 3
            && code[k - 1].text == ":"
            && code[k - 2].text == ":"
            && code[k - 3].kind == TokKind::Ident
        {
            k -= 3;
        }
        if k == 0 {
            continue;
        }
        // `name: [&/&mut/'a] HashMap<...>` — let bindings, parameters,
        // struct fields.
        let mut b = k - 1;
        while b > 0
            && (code[b].text == "&" || code[b].text == "mut" || code[b].kind == TokKind::Lifetime)
        {
            b -= 1;
        }
        if code[b].text == ":"
            && b >= 1
            && code[b - 1].kind == TokKind::Ident
            && (b < 2 || code[b - 2].text != ":")
        {
            names.push(code[b - 1].text.to_string());
            continue;
        }
        // `name = HashMap::new()` / `with_capacity` / `from` / `default`.
        if code[k - 1].text == "="
            && k >= 2
            && code[k - 2].kind == TokKind::Ident
            && i + 2 < code.len()
            && code[i + 1].text == ":"
            && code[i + 2].text == ":"
        {
            names.push(code[k - 2].text.to_string());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Whether any token in `toks` is float evidence: an `f32`/`f64` ident
/// or a float literal.
fn has_float_evidence(toks: &[Ct]) -> bool {
    toks.iter().any(|t| {
        is_ident(t, "f32")
            || is_ident(t, "f64")
            || (t.kind == TokKind::Number
                && (t.text.contains('.') || t.text.ends_with("f32") || t.text.ends_with("f64")))
    })
}

/// D1 + D2: iteration over hash containers. Walks each `name.iter()`
/// style chain to its terminal consumer; order-insensitive consumers
/// pass, float reductions are D2, everything else is D1. `for` loops
/// over tainted names are always D1 (the body is opaque).
fn rule_d1_d2_iteration(cx: &FileCx, hash_names: &[String], diags: &mut Vec<Diagnostic>) {
    let code = &cx.code;
    let tainted = |t: &Ct| t.kind == TokKind::Ident && hash_names.iter().any(|n| n == t.text);

    // Method chains rooted at a tainted name.
    for i in 0..code.len() {
        if !tainted(&code[i]) {
            continue;
        }
        let Some(dot) = code.get(i + 1) else { continue };
        let Some(m) = code.get(i + 2) else { continue };
        if dot.text != "." || m.kind != TokKind::Ident {
            continue;
        }
        if !ITER_METHODS.contains(&m.text) {
            continue;
        }
        if code.get(i + 3).map(|t| t.text) != Some("(") {
            continue;
        }
        let name = code[i].text;
        let line = code[i].line;
        let mut j = cx.matching_close(i + 3);
        let mut terminal = m.text;
        let chain_start = i;
        // Walk `.method(...)` / `.method::<...>(...)` links.
        while let Some(d) = code.get(j + 1) {
            if d.text != "." {
                break;
            }
            let Some(m2) = code.get(j + 2) else { break };
            if m2.kind != TokKind::Ident {
                break;
            }
            let mut k = j + 3;
            // Optional turbofish.
            if code.get(k).map(|t| t.text) == Some(":")
                && code.get(k + 1).map(|t| t.text) == Some(":")
                && code.get(k + 2).map(|t| t.text) == Some("<")
            {
                let mut depth = 0usize;
                k += 2;
                while k < code.len() {
                    match code[k].text {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
            }
            if code.get(k).map(|t| t.text) != Some("(") {
                // Field access or macro — stop at the previous terminal.
                break;
            }
            terminal = m2.text;
            j = cx.matching_close(k);
        }
        let chain = &code[chain_start..=j.min(code.len() - 1)];
        match terminal {
            t if ORDER_INSENSITIVE.contains(&t) => {
                // `max`/`min` on floats do not exist via Ord; integer
                // consumers are order-free.
            }
            "sum" | "product" => {
                if has_float_evidence(chain) {
                    push(
                        cx,
                        diags,
                        line,
                        Rule::D2,
                        format!(
                            "float `{terminal}` over unordered `{name}` \
                             (HashMap/HashSet iteration): accumulation order is \
                             nondeterministic — sort first or use an ordered container"
                        ),
                    );
                }
                // Integer sums/products are exact and commutative.
            }
            "fold" => {
                let rule = if has_float_evidence(chain) {
                    Rule::D2
                } else {
                    Rule::D1
                };
                push(
                    cx,
                    diags,
                    line,
                    rule,
                    format!(
                        "`fold` over unordered `{name}` (HashMap/HashSet iteration) \
                         is order-sensitive — sort first or use an ordered container"
                    ),
                );
            }
            "collect" => {
                // Collecting back into an unordered or re-sorted
                // container is fine; everything else preserves the
                // arbitrary order.
                let turbofished_ok = chain.iter().any(|t| {
                    is_ident(t, "HashMap")
                        || is_ident(t, "HashSet")
                        || is_ident(t, "BTreeMap")
                        || is_ident(t, "BTreeSet")
                });
                if !turbofished_ok {
                    push(
                        cx,
                        diags,
                        line,
                        Rule::D1,
                        format!(
                            "collecting `{name}` (HashMap/HashSet iteration) into an \
                             ordered sequence leaks nondeterministic order — use \
                             BTreeMap/BTreeSet, sort the result, or allow with a why"
                        ),
                    );
                }
            }
            _ => {
                push(
                    cx,
                    diags,
                    line,
                    Rule::D1,
                    format!(
                        "iteration over `{name}` (HashMap/HashSet) can reach output or \
                         a reduction in nondeterministic order — use BTreeMap, sort, \
                         or allow with a why"
                    ),
                );
            }
        }
    }

    // `for pat in [&[mut]] name { … }` and `for pat in name.iter() { … }`
    // — the body is opaque, so any tainted source is D1.
    let mut i = 0usize;
    while i < code.len() {
        if !is_ident(&code[i], "for") {
            i += 1;
            continue;
        }
        // Find the `in` at depth 0, then the loop's `{`.
        let mut j = i + 1;
        let mut depth = 0usize;
        while j < code.len() {
            match code[j].text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "in" if depth == 0 && code[j].kind == TokKind::Ident => break,
                "{" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= code.len() || code[j].text != "in" {
            i = j;
            continue;
        }
        let expr_start = j + 1;
        let mut k = expr_start;
        depth = 0;
        while k < code.len() {
            match code[k].text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        for (e, t) in code[expr_start..k].iter().enumerate() {
            if !tainted(t) {
                continue;
            }
            // Skip uses through non-iterating methods (`map.len()`).
            let abs = expr_start + e;
            let next_is_call = code.get(abs + 1).map(|t| t.text) == Some(".")
                && code.get(abs + 2).is_some_and(|m| m.kind == TokKind::Ident);
            if next_is_call {
                let m = code[abs + 2].text;
                if NON_ITERATING.contains(&m) {
                    continue;
                }
            }
            push(
                cx,
                diags,
                t.line,
                Rule::D1,
                format!(
                    "`for` loop over `{}` (HashMap/HashSet): body runs in \
                     nondeterministic order — use BTreeMap, sort, or allow with a why",
                    t.text
                ),
            );
            break;
        }
        i = k.max(i + 1);
    }
}

/// D1 (serialization): a `#[derive(Serialize)]` item with a
/// `HashMap`/`HashSet` field writes its entries to the artifact in
/// arbitrary order — the artifact is no longer bit-stable.
fn rule_d1_serialized_fields(cx: &FileCx, diags: &mut Vec<Diagnostic>) {
    let code = &cx.code;
    let mut i = 0usize;
    while i + 1 < code.len() {
        if !(code[i].text == "#" && code[i + 1].text == "[") {
            i += 1;
            continue;
        }
        // Scan the attribute for `derive(... Serialize ...)`.
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut derives_serialize = false;
        let mut saw_derive = false;
        while j < code.len() {
            match code[j].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "derive" => saw_derive = true,
                "Serialize" if saw_derive => derives_serialize = true,
                _ => {}
            }
            j += 1;
        }
        if !derives_serialize {
            i = j.max(i + 1);
            continue;
        }
        // Skip further attributes, find the item's `{ … }` body.
        let mut k = j + 1;
        while k + 1 < code.len() && code[k].text == "#" && code[k + 1].text == "[" {
            let mut d = 0usize;
            while k < code.len() {
                match code[k].text {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut open = None;
        while k < code.len() {
            match code[k].text {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        let Some(open_idx) = open else {
            i = k.max(i + 1);
            continue;
        };
        let close = {
            let mut depth = 0usize;
            let mut end = open_idx;
            for (m, t) in code.iter().enumerate().skip(open_idx) {
                match t.text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = m;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            end
        };
        for t in &code[open_idx..close] {
            if is_ident(t, "HashMap") || is_ident(t, "HashSet") {
                push(
                    cx,
                    diags,
                    t.line,
                    Rule::D1,
                    format!(
                        "`{}` field inside a `#[derive(Serialize)]` item: entries \
                         serialize in arbitrary order, so the artifact is not \
                         bit-stable — use BTreeMap/BTreeSet or a custom impl",
                        t.text
                    ),
                );
            }
        }
        i = close + 1;
    }
}

/// D3: `env::var` / `env::var_os` reads outside the designated config
/// modules (see [`crate::engine::ENV_MODULES`]).
fn rule_d3_env_reads(cx: &FileCx, diags: &mut Vec<Diagnostic>) {
    if cx.class.env_module {
        return;
    }
    let code = &cx.code;
    for i in 3..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if !matches!(t.text, "var" | "var_os" | "vars" | "vars_os") {
            continue;
        }
        if code[i - 1].text == ":" && code[i - 2].text == ":" && is_ident(&code[i - 3], "env") {
            push(
                cx,
                diags,
                t.line,
                Rule::D3,
                format!(
                    "ad-hoc `env::{}` read: environment inputs must go through the \
                     designated config modules ({}) so they are parsed once and \
                     validated",
                    t.text,
                    crate::engine::ENV_MODULES.join(", ")
                ),
            );
        }
    }
}

/// D4: `unwrap()`/`expect()` inside worker-pool or spawned-thread
/// closures. A panic there must carry a real payload through the pool's
/// panic path; bare unwraps turn data bugs into opaque worker deaths.
fn rule_d4_unwrap_in_workers(cx: &FileCx, diags: &mut Vec<Diagnostic>) {
    const ENTRY_POINTS: &[&str] = &["spawn", "map_ordered", "map_ordered_mut", "par_map_ordered"];
    let code = &cx.code;
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident || !ENTRY_POINTS.contains(&code[i].text) {
            continue;
        }
        if code.get(i + 1).map(|t| t.text) != Some("(") {
            continue;
        }
        let close = cx.matching_close(i + 1);
        // Only closure arguments matter: find the first `|` inside.
        let Some(closure_start) = (i + 2..close).find(|&k| code[k].text == "|") else {
            continue;
        };
        for k in closure_start..close {
            let t = &code[k];
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && k >= 1
                && code[k - 1].text == "."
            {
                push(
                    cx,
                    diags,
                    t.line,
                    Rule::D4,
                    format!(
                        "`{}()` inside a `{}` worker closure: panics must ride the \
                         pool's panic-payload path — return the error, assert with a \
                         message, or allow with a why",
                        t.text, code[i].text
                    ),
                );
            }
        }
    }
}

/// D5: every `unsafe` block or `unsafe impl` needs an adjacent
/// `// SAFETY:` comment stating the invariant it relies on.
fn rule_d5_undocumented_unsafe(cx: &FileCx, diags: &mut Vec<Diagnostic>) {
    let code = &cx.code;
    // A multi-line `// SAFETY: ...` explanation is a run of line
    // comments on consecutive lines; the run reaches as far as its
    // last member, so "SAFETY:" in the first line still counts.
    let mut reach: Vec<u32> = cx.comments.iter().map(|c| c.end_line).collect();
    for idx in (0..reach.len().saturating_sub(1)).rev() {
        if cx.comments[idx + 1].line <= cx.comments[idx].end_line + 1 {
            reach[idx] = reach[idx].max(reach[idx + 1]);
        }
    }
    for i in 0..code.len() {
        if !is_ident(&code[i], "unsafe") {
            continue;
        }
        let next = code.get(i + 1).map(|t| t.text);
        if next != Some("{") && next != Some("impl") {
            continue;
        }
        let line = code[i].line;
        let documented = cx.comments.iter().zip(&reach).any(|(c, &end)| {
            c.text.contains("SAFETY:") && ((end < line && line - end <= 1) || c.line == line)
        });
        if !documented {
            push(
                cx,
                diags,
                line,
                Rule::D5,
                "`unsafe` without an adjacent `// SAFETY:` comment documenting the \
                 invariant it relies on"
                    .to_string(),
            );
        }
    }
}

/// D7: direct file writes (`fs::write`, `File::create`) outside the
/// designated atomic-I/O module (see
/// [`crate::engine::ARTIFACT_IO_MODULES`]). A crash between `create`
/// and the final byte leaves a torn, checksum-less artifact; writes
/// must go through the write-temp → fsync → rename path.
fn rule_d7_artifact_writes(cx: &FileCx, diags: &mut Vec<Diagnostic>) {
    if cx.class.artifact_io_module {
        return;
    }
    let code = &cx.code;
    for i in 3..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `fs::write(...)` / `File::create(...)` — with or without a
        // longer `std::fs::` path prefix (collect_hash_names-style
        // prefixes all end in the same two tokens).
        let (qualifier, is_write_site) = match t.text {
            "write" => ("fs", true),
            "create" | "create_new" => ("File", true),
            _ => ("", false),
        };
        if !is_write_site
            || code[i - 1].text != ":"
            || code[i - 2].text != ":"
            || !is_ident(&code[i - 3], qualifier)
            || code.get(i + 1).map(|x| x.text) != Some("(")
        {
            continue;
        }
        push(
            cx,
            diags,
            t.line,
            Rule::D7,
            format!(
                "direct `{}::{}` artifact write: a crash mid-write leaves a torn, \
                 checksum-less file — route it through the atomic writer ({}), or \
                 allow with a why if the output is advisory",
                qualifier,
                t.text,
                crate::engine::ARTIFACT_IO_MODULES.join(", ")
            ),
        );
    }
}

/// D6: wall-clock reads and sleeps in deterministic result paths.
/// Bench and profile code is exempt by path.
fn rule_d6_wall_clock(cx: &FileCx, diags: &mut Vec<Diagnostic>) {
    if cx.class.timing_exempt {
        return;
    }
    let code = &cx.code;
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text {
            "Instant" => {
                code.get(i + 1).map(|x| x.text) == Some(":")
                    && code.get(i + 2).map(|x| x.text) == Some(":")
                    && code.get(i + 3).map(|x| x.text) == Some("now")
            }
            "SystemTime" => true,
            "sleep" => {
                i >= 3
                    && code[i - 1].text == ":"
                    && code[i - 2].text == ":"
                    && is_ident(&code[i - 3], "thread")
            }
            _ => false,
        };
        if flagged {
            push(
                cx,
                diags,
                t.line,
                Rule::D6,
                format!(
                    "wall-clock (`{}`) in a deterministic result path: timing belongs \
                     in bench/profile code — move it, or allow with a why if it is \
                     display-only",
                    t.text
                ),
            );
        }
    }
}
