//! A small, self-contained Rust lexer.
//!
//! Produces a flat token stream with byte spans and 1-based line
//! numbers — enough structure for the determinism rules in
//! [`crate::rules`], which work on token patterns rather than a full
//! syntax tree. The tricky token classes the rules depend on are
//! handled exactly: raw strings (`r#"…"#` with any number of hashes,
//! byte variants), nested block comments, and the lifetime/char-literal
//! ambiguity (`'a` vs `'a'`).
//!
//! Comments are emitted as ordinary tokens (they carry the suppression
//! syntax and `SAFETY:` annotations), so the stream covers every
//! non-whitespace byte of the input — a property the lexer tests assert
//! as a round-trip.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules do not distinguish them).
    Ident,
    /// A lifetime such as `'a` or `'_` (including the quote).
    Lifetime,
    /// Numeric literal, integer or float, with any suffix.
    Number,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` comment (text runs to end of line).
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
    /// A single punctuation byte (`::` is two `Punct(':')` tokens).
    Punct,
}

/// One token: kind, byte span into the source, and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

/// A lexing failure (unterminated literal or comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the unterminated construct starts.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream covering every non-whitespace byte.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, char literals or block
/// comments; everything else lexes (unknown bytes become [`TokKind::Punct`]).
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let start = c.pos;
        let line = c.line;
        let kind = match b {
            b'/' if c.peek(1) == Some(b'/') => {
                while let Some(n) = c.peek(0) {
                    if n == b'\n' {
                        break;
                    }
                    c.bump();
                }
                TokKind::LineComment
            }
            b'/' if c.peek(1) == Some(b'*') => {
                lex_block_comment(&mut c)?;
                TokKind::BlockComment
            }
            b'r' | b'b' if starts_raw_or_byte(&c) => lex_prefixed_literal(&mut c)?,
            b'"' => {
                lex_quoted(&mut c, b'"', "string literal")?;
                TokKind::Str
            }
            b'\'' => lex_quote(&mut c)?,
            _ if is_ident_start(b) => {
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                TokKind::Ident
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                TokKind::Number
            }
            _ => {
                c.bump();
                TokKind::Punct
            }
        };
        out.push(Tok {
            kind,
            start,
            end: c.pos,
            line,
        });
    }
    Ok(out)
}

/// Whether the cursor sits on a prefixed literal: `r"`, `r#…#"`, `b"`,
/// `b'`, `br"` or `br#…#"`. Raw *identifiers* (`r#fn`) and plain idents
/// starting with `r`/`b` do not match.
fn starts_raw_or_byte(c: &Cursor) -> bool {
    let rest = &c.src[c.pos..];
    let after_prefix = match rest {
        [b'b', b'\'', ..] | [b'b', b'"', ..] => return true,
        [b'b', b'r', tail @ ..] | [b'r', tail @ ..] => tail,
        _ => return false,
    };
    let mut i = 0;
    while after_prefix.get(i) == Some(&b'#') {
        i += 1;
    }
    // `r#ident` is a raw identifier, not a raw string: the hash run must
    // end in a quote.
    after_prefix.get(i) == Some(&b'"')
}

/// Lexes `r…`/`b…`/`br…` literals; the cursor sits on the prefix.
fn lex_prefixed_literal(c: &mut Cursor) -> Result<TokKind, LexError> {
    let byte_char = c.starts_with("b'");
    let raw = c.starts_with("r") || c.starts_with("br");
    c.bump(); // r or b
    if raw && c.peek(0) == Some(b'r') {
        c.bump(); // the r of br
    }
    if byte_char {
        lex_quoted(c, b'\'', "byte literal")?;
        return Ok(TokKind::Char);
    }
    if raw {
        lex_raw_string(c)?;
    } else {
        lex_quoted(c, b'"', "byte string")?;
    }
    Ok(TokKind::Str)
}

/// Lexes the `#*"…"#*` tail of a raw string; the cursor sits on the
/// first `#` or the opening quote.
fn lex_raw_string(c: &mut Cursor) -> Result<(), LexError> {
    let line = c.line;
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.bump() != Some(b'"') {
        return Err(LexError {
            line,
            message: "malformed raw string opener".into(),
        });
    }
    loop {
        match c.bump() {
            None => {
                return Err(LexError {
                    line,
                    message: "unterminated raw string".into(),
                })
            }
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && c.peek(0) == Some(b'#') {
                    seen += 1;
                    c.bump();
                }
                if seen == hashes {
                    return Ok(());
                }
            }
            Some(_) => {}
        }
    }
}

/// Lexes a `quote`-delimited literal with `\` escapes; the cursor sits
/// on the opening quote.
fn lex_quoted(c: &mut Cursor, quote: u8, what: &str) -> Result<(), LexError> {
    let line = c.line;
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None => {
                return Err(LexError {
                    line,
                    message: format!("unterminated {what}"),
                })
            }
            Some(b'\\') => {
                c.bump();
            }
            Some(b) if b == quote => return Ok(()),
            Some(_) => {}
        }
    }
}

/// Disambiguates `'` into a lifetime or a char literal.
///
/// `'ident` not followed by a closing `'` is a lifetime (`'a`, `'static`,
/// `'_`); everything else (`'x'`, `'\n'`, `'\u{1F600}'`) is a char.
fn lex_quote(c: &mut Cursor) -> Result<TokKind, LexError> {
    let next = c.peek(1);
    if next.is_some_and(is_ident_start) && next != Some(b'\'') {
        // Scan the identifier; if it is immediately closed by a quote
        // this is a char literal like 'a', otherwise a lifetime.
        let mut ahead = 2;
        while c.peek(ahead).is_some_and(is_ident_continue) {
            ahead += 1;
        }
        if c.peek(ahead) != Some(b'\'') {
            c.bump(); // '
            for _ in 1..ahead {
                c.bump();
            }
            return Ok(TokKind::Lifetime);
        }
    }
    lex_quoted(c, b'\'', "char literal")?;
    Ok(TokKind::Char)
}

/// Lexes a numeric literal (ints, floats, exponents, suffixes, `_`).
fn lex_number(c: &mut Cursor) {
    // Leading digits / radix prefix / underscores / suffix letters all
    // fall under ident-continue; floats need the `.`+digit and
    // exponent-sign cases on top.
    c.bump();
    loop {
        match c.peek(0) {
            Some(b) if is_ident_continue(b) => {
                let exponent = b == b'e' || b == b'E';
                c.bump();
                if exponent && matches!(c.peek(0), Some(b'+') | Some(b'-')) {
                    c.bump();
                }
            }
            // `1.5` continues the number; `1..5` and `1.method()` do not.
            Some(b'.') if c.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                c.bump();
            }
            _ => return,
        }
    }
}

/// Nested block comments; the cursor sits on the opening `/*`.
fn lex_block_comment(c: &mut Cursor) -> Result<(), LexError> {
    let line = c.line;
    c.bump();
    c.bump();
    let mut depth = 1usize;
    while depth > 0 {
        if c.starts_with("/*") {
            depth += 1;
            c.bump();
            c.bump();
        } else if c.starts_with("*/") {
            depth -= 1;
            c.bump();
            c.bump();
        } else if c.bump().is_none() {
            return Err(LexError {
                line,
                message: "unterminated block comment".into(),
            });
        }
    }
    Ok(())
}
