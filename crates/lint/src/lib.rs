//! # typilus-lint
//!
//! A dependency-free static-analysis pass that machine-checks this
//! workspace's two hardest contracts:
//!
//! - the *determinism contract* (PRs 1–3): training, inference and
//!   every serialized artifact must be bit-identical at any thread
//!   count and across runs — rules `D1`–`D7`;
//! - the *serve contract* (PR 8): no client-reachable path may panic
//!   the engine, the query hot path performs zero allocations, and the
//!   unsafe surface carries explicit caller obligations — rule families
//!   `S`, `A` and `U`, driven by a workspace-wide call graph built from
//!   a lightweight item/block parser ([`parse`]) over the same
//!   dependency-free lexer.
//!
//! | Rule | What it catches |
//! |------|-----------------|
//! | `D1` | `HashMap`/`HashSet` iteration whose order can reach output, serialization or a reduction |
//! | `D2` | Floating-point reductions over unordered sources |
//! | `D3` | `std::env::var` reads outside the designated config modules |
//! | `D4` | `unwrap()`/`expect()` inside worker-pool / spawned-thread closures |
//! | `D5` | `unsafe` without an adjacent `// SAFETY:` comment |
//! | `D6` | `Instant::now` / `SystemTime` / `thread::sleep` in deterministic result paths |
//! | `D7` | Direct artifact writes outside the atomic-I/O module |
//! | `S1` | `unwrap()`/`expect()` on a serve-reachable path |
//! | `S2` | Panicking macros (`panic!`, `assert!`, …) on a serve-reachable path |
//! | `S3` | Slice/array indexing on a serve-reachable path |
//! | `A1` | Allocation reachable from the `hotpath` roots |
//! | `U1` | `unsafe fn` without a `# Safety` doc section |
//! | `U2` | Raw pointers in public API signatures |
//!
//! Reachability starts at annotated roots (`// lint: root(serve)` on
//! the engine thread and connection handlers, `// lint: root(hotpath)`
//! on the allocation-free query entry points) and flows through the
//! [`callgraph`] — conservative name-based resolution that can only
//! over-approximate, never hide, reachability.
//!
//! A finding is either fixed or explicitly carried with an inline
//! suppression whose justification is mandatory (a family name like
//! `S` covers all its rules; on a fn header it covers the whole fn):
//!
//! ```text
//! // lint: allow(D6) — epoch timing is display-only and never serialized
//! // lint: allow(S3) — row bounds checked against dim on entry
//! ```
//!
//! Suppressions that no longer suppress anything are reported as
//! *stale* and gate tier-1 under `--deny-stale`: the finding they once
//! carried is gone, but the justification keeps claiming it.
//!
//! The binary (`cargo run -p typilus-lint --release`) walks every
//! workspace `.rs` file, prints `file:line: rule: message` diagnostics
//! (or a full `--json` report with stale suppressions and call-graph
//! stats), and exits non-zero on any unsuppressed finding — it runs as
//! a tier-1 gate next to `scripts/detcheck.sh` and
//! `scripts/servecheck.sh`, the dynamic witnesses of the same
//! contracts.

#![warn(missing_docs)]

pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sau;

pub use callgraph::{CallGraph, FnId};
pub use diag::{
    report_to_json, to_json, Diagnostic, LintReport, LintStats, Rule, StaleSuppression,
};
pub use engine::{lint_files, lint_source, lint_workspace, workspace_files, FileClass};
pub use lexer::{lex, LexError, Tok, TokKind};
pub use parse::{parse_fns, FnItem, RootKind};
