//! # typilus-lint
//!
//! A dependency-free static-analysis pass that machine-checks this
//! workspace's *determinism contract*: training, inference and every
//! serialized artifact must be bit-identical at any thread count and
//! across runs. The contract grew hand-maintained across PRs 1–3
//! (ordered reductions, fixed float-accumulation order, exact-class
//! arena serving, panic-payload discipline); this crate turns it into
//! six enforced rules:
//!
//! | Rule | What it catches |
//! |------|-----------------|
//! | `D1` | `HashMap`/`HashSet` iteration whose order can reach output, serialization or a reduction |
//! | `D2` | Floating-point reductions over unordered sources |
//! | `D3` | `std::env::var` reads outside the designated config modules |
//! | `D4` | `unwrap()`/`expect()` inside worker-pool / spawned-thread closures |
//! | `D5` | `unsafe` without an adjacent `// SAFETY:` comment |
//! | `D6` | `Instant::now` / `SystemTime` / `thread::sleep` in deterministic result paths |
//!
//! A finding is either fixed or explicitly carried with an inline
//! suppression whose justification is mandatory:
//!
//! ```text
//! // lint: allow(D6) — epoch timing is display-only and never serialized
//! ```
//!
//! The binary (`cargo run -p typilus-lint --release`) walks every
//! workspace `.rs` file, prints `file:line: rule: message` diagnostics
//! (or `--json`), and exits non-zero on any unsuppressed finding — it
//! runs as a tier-1 gate next to `scripts/detcheck.sh`, the dynamic
//! 1-vs-4-thread witness of the same contract.

#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diag::{to_json, Diagnostic, Rule};
pub use engine::{lint_source, lint_workspace, workspace_files, FileClass};
pub use lexer::{lex, LexError, Tok, TokKind};
