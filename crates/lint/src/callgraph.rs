//! The workspace call graph and reachability from annotated roots.
//!
//! Nodes are the `fn` items parsed by [`crate::parse`] across every
//! non-test, non-leaf file of the workspace. Edges come from syntactic
//! call expressions, resolved *conservatively by name*:
//!
//! - `Type::name(…)` and `module::name(…)` resolve against the impl
//!   type or the defining file's module name; `Self::name(…)` resolves
//!   inside the caller's own impl.
//! - `.name(…)` method calls resolve to **every** workspace impl
//!   method of that name (receiver types are unknown to a lexer-level
//!   analysis) — an over-approximation that can only add reachability,
//!   never hide it.
//! - Unqualified `name(…)` resolves to every workspace free fn of that
//!   name.
//! - A qualified call whose qualifier names no workspace type or
//!   module is external (`std`, vendored crates) and produces no edge.
//! - Cross-crate edges only follow the crate dependency DAG, inferred
//!   from `typilus_*` path idents in each file: a `.len(…)` call in
//!   `space` can never resolve into `pyast`, because `space` does not
//!   depend on it. This keeps ubiquitous method names (`push`, `iter`,
//!   `row`, …) from wiring unrelated crates together.
//!
//! Calls inside closures belong to the enclosing `fn`, so reachability
//! flows through `WorkerPool::map_ordered(…, |…| f(…))` into `f`.
//!
//! Calls inside a `catch_unwind(…)` argument list are *caught*: a panic
//! below them unwinds into the supervisor, not the client connection,
//! so **serve** reachability does not flow through them. **Hotpath**
//! reachability uses every edge — catching a panic does not undo the
//! allocations a callee performs.
//!
//! Reachability is a deterministic BFS per root family
//! ([`crate::parse::RootKind`]); each reached node keeps its BFS parent
//! so diagnostics can print the call chain that makes a panic
//! client-reachable.

use crate::parse::{FnItem, PanicKind, RootKind};
use std::collections::{BTreeMap, BTreeSet};

/// Per-crate transitive dependency closures (each crate includes
/// itself), inferred from `typilus_<name>` idents by the engine.
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

/// Expands direct dependency edges into transitive closures, with every
/// crate a member of its own closure.
pub fn close_deps(direct: &CrateDeps) -> CrateDeps {
    let mut closed: CrateDeps = direct.clone();
    for (k, set) in &mut closed {
        set.insert(k.clone());
    }
    loop {
        let mut grew = false;
        let snapshot = closed.clone();
        for set in closed.values_mut() {
            let extra: Vec<String> = set
                .iter()
                .filter_map(|d| snapshot.get(d))
                .flatten()
                .filter(|d| !set.contains(*d))
                .cloned()
                .collect();
            if !extra.is_empty() {
                grew = true;
                set.extend(extra);
            }
        }
        if !grew {
            return closed;
        }
    }
}

/// A function's global identity: `(file index, fn index within file)`
/// flattened into one id by the builder.
pub type FnId = usize;

/// One node of the graph, borrowing the parsed item.
pub struct Node<'a> {
    /// Workspace-relative path of the defining file.
    pub path: &'a str,
    /// Crate name derived from the path (`crates/<name>/…`), or the
    /// top-level directory for root files.
    pub krate: &'a str,
    /// File stem (`typemap` for `crates/space/src/typemap.rs`) — acts
    /// as the module name for `module::fn` resolution.
    pub stem: &'a str,
    /// The parsed fn item.
    pub item: &'a FnItem,
}

/// The built graph plus per-family reachability.
pub struct CallGraph<'a> {
    /// All nodes, in (file, item) order — deterministic.
    pub nodes: Vec<Node<'a>>,
    /// Sorted, deduplicated adjacency lists (every call).
    pub edges: Vec<Vec<FnId>>,
    /// Adjacency lists restricted to calls outside `catch_unwind(…)`
    /// extents — the edges panics can unwind through. Serve BFS walks
    /// these; hotpath BFS walks [`CallGraph::edges`].
    pub uncaught_edges: Vec<Vec<FnId>>,
    /// `reach[Serve as usize][id]`: BFS parent if reachable (roots
    /// point at themselves), `None` otherwise.
    reach: [Vec<Option<FnId>>; 2],
}

/// Derives `(crate, stem)` from a workspace-relative path.
pub fn crate_and_stem(path: &str) -> (&str, &str) {
    let krate = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or_else(|| path.split('/').next().unwrap_or(path));
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    (krate, stem)
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over `files` (path + parsed fns per file).
    /// Fns with `in_graph == false` (test code, graph-exempt leaf
    /// crates) never become nodes: they are neither callees nor roots.
    /// `deps` is the transitive crate-dependency closure — edges only
    /// land in the caller's own crate or one it depends on.
    pub fn build(files: &'a [(String, Vec<FnItem>)], deps: &CrateDeps) -> CallGraph<'a> {
        let mut nodes = Vec::new();
        for (path, fns) in files {
            let (krate, stem) = crate_and_stem(path);
            for item in fns {
                if !item.in_graph {
                    continue;
                }
                nodes.push(Node {
                    path,
                    krate,
                    stem,
                    item,
                });
            }
        }

        // Name indexes. `by_name` holds every fn; `methods` only impl
        // members (reachable through `.name(…)`); `free` only
        // module-level fns (reachable through bare `name(…)`).
        let mut by_qual: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut crate_free: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut known_quals: BTreeMap<&str, ()> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            let name = n.item.name.as_str();
            match &n.item.qual {
                Some(q) => {
                    by_qual.entry((q.as_str(), name)).or_default().push(id);
                    methods.entry(name).or_default().push(id);
                    known_quals.entry(q.as_str()).or_default();
                }
                None => {
                    by_qual.entry((n.stem, name)).or_default().push(id);
                    free.entry(name).or_default().push(id);
                    crate_free.entry((n.krate, name)).or_default().push(id);
                }
            }
            known_quals.entry(n.stem).or_default();
        }

        let mut edges: Vec<Vec<FnId>> = vec![Vec::new(); nodes.len()];
        let mut uncaught_edges: Vec<Vec<FnId>> = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            // Visible callees: same crate, or a crate in the caller's
            // dependency closure.
            let visible = |c: &FnId| {
                let ck = nodes[*c].krate;
                ck == n.krate || deps.get(n.krate).is_some_and(|s| s.contains(ck))
            };
            let mut all: Vec<FnId> = Vec::new();
            let mut uncaught: Vec<FnId> = Vec::new();
            for call in &n.item.calls {
                let name = call.name.as_str();
                let mut out: Vec<FnId> = Vec::new();
                if call.method {
                    if let Some(ids) = methods.get(name) {
                        // `.unwrap()`/`.expect()` are usually
                        // Option/Result panics, and `.clone()`/iterator
                        // adapters are usually std methods that happen
                        // to share a name with a workspace impl. All of
                        // these resolve as calls only inside the crate
                        // that defines a method of that name (e.g. the
                        // pyast parser's own fallible `expect`, an
                        // nn-internal `Tensor::map`). See
                        // `resolves_in_crate`.
                        let std_shadowed = matches!(
                            name,
                            "unwrap"
                                | "expect"
                                | "clone"
                                | "iter"
                                | "iter_mut"
                                | "into_iter"
                                | "map"
                                | "filter"
                                | "retain"
                                | "fold"
                                | "zip"
                                | "for_each"
                                | "sum"
                                | "count"
                                | "min"
                                | "max"
                                | "next"
                                | "load"
                                | "store"
                                | "push"
                                | "pop"
                                | "send"
                                | "recv"
                                | "join"
                                | "read"
                                | "write"
                                | "flush"
                                | "accept"
                        );
                        if std_shadowed {
                            out.extend(ids.iter().filter(|&&c| nodes[c].krate == n.krate));
                        } else {
                            out.extend(ids.iter().filter(|c| visible(c)));
                        }
                    }
                    all.extend(out.iter().copied());
                    if !call.caught {
                        uncaught.extend(out);
                    }
                    continue;
                }
                match call.qual.as_deref() {
                    Some("Self") => {
                        if let Some(q) = &n.item.qual {
                            if let Some(ids) = by_qual.get(&(q.as_str(), name)) {
                                out.extend(ids.iter().filter(|c| visible(c)));
                            }
                        }
                    }
                    Some("self") => {
                        if let Some(ids) = by_qual.get(&(n.stem, name)) {
                            out.extend(ids.iter().filter(|c| visible(c)));
                        }
                    }
                    // Crate-qualified free-fn call: `typilus_pyast::parse(…)`
                    // (the core crate's lib is plain `typilus`).
                    Some(q) if q == "typilus" || q.starts_with("typilus_") => {
                        let krate = if q == "typilus" {
                            "core"
                        } else {
                            &q["typilus_".len()..]
                        };
                        if let Some(ids) = crate_free.get(&(krate, name)) {
                            out.extend(ids.iter().filter(|c| visible(c)));
                        }
                    }
                    Some(q) => {
                        if let Some(ids) = by_qual.get(&(q, name)) {
                            out.extend(ids.iter().filter(|c| visible(c)));
                        } else if known_quals.contains_key(q) {
                            // A workspace type/module, but no exact
                            // member match (re-export, trait method
                            // called as `Type::name`): fall back to
                            // any fn of that name.
                            if let Some(ids) = methods.get(name) {
                                out.extend(ids.iter().filter(|c| visible(c)));
                            }
                            if let Some(ids) = free.get(name) {
                                out.extend(ids.iter().filter(|c| visible(c)));
                            }
                        }
                        // Unknown qualifier: external call, no edge.
                    }
                    None => {
                        if let Some(ids) = free.get(name) {
                            out.extend(ids.iter().filter(|c| visible(c)));
                        }
                    }
                }
                all.extend(out.iter().copied());
                if !call.caught {
                    uncaught.extend(out);
                }
            }
            for (mut list, slot) in [(all, &mut edges[id]), (uncaught, &mut uncaught_edges[id])] {
                list.sort_unstable();
                list.dedup();
                list.retain(|&c| c != id);
                *slot = list;
            }
        }

        let mut graph = CallGraph {
            nodes,
            edges,
            uncaught_edges,
            reach: [Vec::new(), Vec::new()],
        };
        graph.reach = [
            graph.reachability(RootKind::Serve),
            graph.reachability(RootKind::Hotpath),
        ];
        graph
    }

    /// Deterministic BFS from every root of `kind`; returns parents.
    /// Serve reachability walks only uncaught edges — a callee reached
    /// exclusively through `catch_unwind(…)` cannot kill the daemon.
    fn reachability(&self, kind: RootKind) -> Vec<Option<FnId>> {
        let edges = match kind {
            RootKind::Serve => &self.uncaught_edges,
            RootKind::Hotpath => &self.edges,
        };
        let mut parent: Vec<Option<FnId>> = vec![None; self.nodes.len()];
        let mut queue: Vec<FnId> = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if n.item.roots.contains(&kind) {
                parent[id] = Some(id);
                queue.push(id);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            for &next in &edges[id] {
                if parent[next].is_none() {
                    parent[next] = Some(id);
                    queue.push(next);
                }
            }
        }
        parent
    }

    /// Whether `id` is reachable from any `kind` root.
    pub fn reachable(&self, kind: RootKind, id: FnId) -> bool {
        self.reach[kind as usize][id].is_some()
    }

    /// Number of fns reachable from `kind` roots.
    pub fn reachable_count(&self, kind: RootKind) -> usize {
        self.reach[kind as usize].iter().flatten().count()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The call chain from a `kind` root to `id` as fn names,
    /// `root → … → id`, truncated in the middle when longer than six.
    pub fn chain(&self, kind: RootKind, id: FnId) -> String {
        let parents = &self.reach[kind as usize];
        let mut names: Vec<&str> = Vec::new();
        let mut cur = id;
        // The workspace graph is a few thousand nodes; the bound stops
        // a malformed parent cycle from hanging the lint.
        for _ in 0..parents.len() + 1 {
            names.push(self.nodes[cur].item.name.as_str());
            match parents[cur] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
        }
        names.reverse();
        if names.len() > 6 {
            let head = names[..2].join(" → ");
            let tail = names[names.len() - 3..].join(" → ");
            format!("{head} → … → {tail}")
        } else {
            names.join(" → ")
        }
    }

    /// Whether an `unwrap`/`expect` **method call** at a node resolves
    /// to a workspace-defined method in the same crate (then it is a
    /// call, not an `Option`/`Result` panic site).
    pub fn resolves_in_crate(&self, id: FnId, name: &str) -> bool {
        let krate = self.nodes[id].krate;
        self.nodes
            .iter()
            .any(|n| n.item.qual.is_some() && n.item.name == name && n.krate == krate)
    }

    /// Panic sites of `id` that rule S should report, given resolution.
    /// Sites inside a `catch_unwind(…)` extent are supervised — their
    /// panic is a typed error at the boundary, not a daemon killer.
    pub fn live_panics(&self, id: FnId) -> impl Iterator<Item = &crate::parse::PanicSite> {
        self.nodes[id].item.panics.iter().filter(move |p| {
            !p.caught && (p.kind != PanicKind::UnwrapExpect || !self.resolves_in_crate(id, &p.what))
        })
    }
}
