//! The serve-era rule families.
//!
//! - **S-rules** (S1 unwrap/expect, S2 panicking macros, S3 slice
//!   indexing): no panic-capable expression may sit on a path reachable
//!   from a `// lint: root(serve)` function. This generalizes D4 —
//!   which only watched worker closures — to the whole interprocedural
//!   serve surface.
//! - **A-rule** (A1): nothing reachable from a `// lint: root(hotpath)`
//!   function may allocate; the serve query path's zero-allocation
//!   claim is enforced dynamically by `bench_space`/`bench_serve`
//!   counters and statically here.
//! - **U-rules** (U1, U2): `unsafe fn` must carry a `# Safety` doc
//!   section, and raw pointers must not appear in effectively-public
//!   signatures. D5 audits unsafe *blocks*; U audits the unsafe
//!   *contract surface*.
//!
//! S/A are interprocedural (driven by [`crate::callgraph`]); U is
//! file-local over the parsed items.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Rule};
use crate::engine::Ct;
use crate::lexer::TokKind;
use crate::parse::{FnItem, PanicKind, RootKind};

/// Runs S over every serve-reachable node and A over every
/// hotpath-reachable node.
pub fn run_reachability_rules(graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    for (id, node) in graph.nodes.iter().enumerate() {
        if graph.reachable(RootKind::Serve, id) {
            let chain = graph.chain(RootKind::Serve, id);
            for p in graph.live_panics(id) {
                let (rule, message) = match p.kind {
                    PanicKind::UnwrapExpect => (
                        Rule::S1,
                        format!(
                            "`{}()` on a serve-reachable path ({chain}): a client \
                             request must never panic the engine — return a typed \
                             error, or allow with a why",
                            p.what
                        ),
                    ),
                    PanicKind::Macro => (
                        Rule::S2,
                        format!(
                            "`{}` on a serve-reachable path ({chain}): a failed check \
                             takes the whole daemon down — make it a typed error, or \
                             allow with a why naming the invariant that holds",
                            p.what
                        ),
                    ),
                    PanicKind::Indexing => (
                        Rule::S3,
                        format!(
                            "indexing `{}[…]` on a serve-reachable path ({chain}): an \
                             out-of-bounds panic kills the engine — use `.get()`, an \
                             iterator, or allow with a why naming the bound",
                            p.what
                        ),
                    ),
                };
                diags.push(Diagnostic {
                    file: node.path.to_string(),
                    line: p.line,
                    rule,
                    message,
                });
            }
        }
        if graph.reachable(RootKind::Hotpath, id) {
            let chain = graph.chain(RootKind::Hotpath, id);
            for a in &node.item.allocs {
                diags.push(Diagnostic {
                    file: node.path.to_string(),
                    line: a.line,
                    rule: Rule::A1,
                    message: format!(
                        "allocation (`{}`) on the allocation-free hot path ({chain}): \
                         the serve query path must stay at zero allocations per \
                         query — reuse the scratch buffers, or allow with a why",
                        a.what
                    ),
                });
            }
        }
    }
}

/// Runs U1/U2 over one file's parsed fns. `code` is the file's token
/// stream (for U2's signature scan); test fns are skipped.
pub fn run_unsafe_rules(path: &str, code: &[Ct], fns: &[FnItem], diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if f.is_test {
            continue;
        }
        if f.is_unsafe && !f.doc_has_safety {
            diags.push(Diagnostic {
                file: path.to_string(),
                line: f.item_line,
                rule: Rule::U1,
                message: format!(
                    "`unsafe fn {}` without a `# Safety` doc section: callers cannot \
                     see their obligations — document the invariant they must uphold",
                    f.name
                ),
            });
        }
        if f.effectively_pub && !f.is_unsafe {
            // Raw pointer in the signature: `* const` / `* mut` in type
            // position. `*` as deref/multiply is never followed by the
            // `const`/`mut` keyword.
            let (lo, hi) = f.sig_range;
            for w in lo..=hi.min(code.len().saturating_sub(2)) {
                if code[w].text == "*"
                    && code[w + 1].kind == TokKind::Ident
                    && matches!(code[w + 1].text, "const" | "mut")
                {
                    diags.push(Diagnostic {
                        file: path.to_string(),
                        line: code[w].line,
                        rule: Rule::U2,
                        message: format!(
                            "raw pointer in the public signature of `fn {}`: raw \
                             pointers must not escape public APIs — return a safe \
                             wrapper, mark the fn `unsafe` with a `# Safety` \
                             contract, or narrow the visibility",
                            f.name
                        ),
                    });
                    break;
                }
            }
        }
    }
}
