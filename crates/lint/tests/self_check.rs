//! The workspace must lint clean: this is the same gate
//! `cargo run -p typilus-lint -- --deny-stale` applies in tier-1, kept
//! as a test so `cargo test` alone catches a regression.

use typilus_lint::lint_workspace;

#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = lint_workspace(&root).expect("lint runs");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale.is_empty(),
        "workspace has {} stale suppression(s):\n{}",
        report.stale.len(),
        report
            .stale
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_call_graph_is_resolved() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = lint_workspace(&root).expect("lint runs");
    let st = report.stats;
    assert!(st.files > 50, "walked only {} files", st.files);
    assert!(st.fns > 300, "parsed only {} fns", st.fns);
    assert!(st.edges > 1000, "resolved only {} edges", st.edges);
    // The serve roots must still reach the connection/framing layer
    // and the engine supervisor, and the hotpath roots must cover the
    // index query fns — a near-empty reachable set means the root
    // annotations or the resolution broke, which would silently
    // disable the S/A families. The bound is far below the pre-
    // supervision count (~170): the engine runs batches under
    // `catch_unwind`, so predict internals (pyast, models, kNN) are
    // deliberately no longer serve-reachable — their panics surface as
    // typed `internal` replies, not daemon deaths.
    assert!(
        st.serve_reachable > 30,
        "only {} fns serve-reachable",
        st.serve_reachable
    );
    assert!(
        st.hotpath_reachable > 10,
        "only {} fns hotpath-reachable",
        st.hotpath_reachable
    );
}
