//! The workspace must lint clean: this is the same gate
//! `cargo run -p typilus-lint` applies in tier-1, kept as a test so
//! `cargo test` alone catches a regression.

use typilus_lint::lint_workspace;

#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let diags = lint_workspace(&root).expect("lint runs");
    assert!(
        diags.is_empty(),
        "workspace has {} lint finding(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
