//! Lexer stress tests: the tricky corners of Rust's token grammar the
//! rules depend on, plus a byte-coverage round-trip over every `.rs`
//! file in the workspace.

use typilus_lint::{lex, workspace_files, TokKind};

/// Asserts the tokens tile `src` exactly: in order, non-overlapping,
/// with only whitespace between them.
fn assert_covers(src: &str) {
    let toks = lex(src).expect("lexes");
    let mut pos = 0;
    for t in &toks {
        assert!(t.start >= pos, "overlap at byte {}", t.start);
        assert!(
            src[pos..t.start].chars().all(char::is_whitespace),
            "non-whitespace gap {:?} before byte {}",
            &src[pos..t.start],
            t.start
        );
        assert!(t.end > t.start, "empty token at byte {}", t.start);
        pos = t.end;
    }
    assert!(
        src[pos..].chars().all(char::is_whitespace),
        "trailing non-whitespace {:?}",
        &src[pos..]
    );
}

fn kinds(src: &str) -> Vec<TokKind> {
    lex(src).expect("lexes").iter().map(|t| t.kind).collect()
}

#[test]
fn raw_strings_with_hashes() {
    let src = r####"let s = r#"quote " inside"#; let t = r##"deeper "# inside"##;"####;
    assert_covers(src);
    let n = kinds(src).iter().filter(|k| **k == TokKind::Str).count();
    assert_eq!(n, 2);
}

#[test]
fn raw_identifier_is_not_a_raw_string() {
    let src = "let r#fn = 1; let r#type = r#fn;";
    assert_covers(src);
    assert!(kinds(src).iter().all(|k| *k != TokKind::Str));
}

#[test]
fn byte_and_byte_raw_strings() {
    let src = r###"let a = b"bytes"; let b = br#"raw " bytes"#; let c = b'x';"###;
    assert_covers(src);
    let ks = kinds(src);
    assert_eq!(ks.iter().filter(|k| **k == TokKind::Str).count(), 2);
    assert_eq!(ks.iter().filter(|k| **k == TokKind::Char).count(), 1);
}

#[test]
fn nested_block_comments() {
    let src = "a /* outer /* inner */ still comment */ b";
    assert_covers(src);
    let ks = kinds(src);
    assert_eq!(
        ks.iter().filter(|k| **k == TokKind::BlockComment).count(),
        1
    );
    assert_eq!(ks.iter().filter(|k| **k == TokKind::Ident).count(), 2);
}

#[test]
fn lifetimes_vs_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    assert_covers(src);
    let ks = kinds(src);
    assert_eq!(ks.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
    assert_eq!(ks.iter().filter(|k| **k == TokKind::Char).count(), 1);
}

#[test]
fn char_escapes_and_labels() {
    let src = r"let q = '\''; let nl = '\n'; 'outer: loop { break 'outer; }";
    assert_covers(src);
    let ks = kinds(src);
    assert_eq!(ks.iter().filter(|k| **k == TokKind::Char).count(), 2);
    // `'outer` twice: the label definition and the break target.
    assert_eq!(ks.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
}

#[test]
fn string_escapes_and_line_counting() {
    let src = "let a = \"line\\\"one\\n\";\nlet b = 2; // after newline\n";
    assert_covers(src);
    let toks = lex(src).unwrap();
    let b_tok = toks
        .iter()
        .find(|t| &src[t.start..t.end] == "b")
        .expect("finds b");
    assert_eq!(b_tok.line, 2);
}

#[test]
fn every_workspace_file_lexes_and_round_trips() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let files = workspace_files(&root).expect("walk workspace");
    assert!(files.len() > 20, "suspiciously few files: {}", files.len());
    for f in files {
        let src = std::fs::read_to_string(&f).expect("read");
        // Panic message includes the file for quick triage.
        let toks = lex(&src).unwrap_or_else(|e| panic!("{}: {e:?}", f.display()));
        assert!(!toks.is_empty() || src.trim().is_empty(), "{}", f.display());
        assert_covers(&src);
    }
}
