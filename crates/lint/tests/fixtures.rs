//! Fixture tests: every rule fires on a seeded violation and stays
//! quiet on the compliant twin; suppressions silence findings only
//! with a justification; the lexer survives the tricky corners of
//! Rust's grammar it was built for.

use typilus_lint::{lint_source, Rule};

/// Lints a fixture under a synthetic non-test, non-exempt path.
fn diags(src: &str) -> Vec<(Rule, u32)> {
    lint_source("crates/fix/src/lib.rs", src)
        .expect("fixture lexes")
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

fn rules(src: &str) -> Vec<Rule> {
    diags(src).into_iter().map(|(r, _)| r).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fires_on_hashmap_for_loop() {
    let src = r#"
use std::collections::HashMap;
fn leak(m: &HashMap<String, usize>) {
    for (k, v) in m {
        println!("{k}={v}");
    }
}
"#;
    assert_eq!(diags(src), vec![(Rule::D1, 4)]);
}

#[test]
fn d1_fires_on_collect_into_vec() {
    let src = r#"
use std::collections::HashMap;
fn leak(m: HashMap<String, usize>) -> Vec<String> {
    m.into_iter().map(|(k, _)| k).collect()
}
"#;
    assert_eq!(rules(src), vec![Rule::D1]);
}

#[test]
fn d1_quiet_on_btreemap() {
    let src = r#"
use std::collections::BTreeMap;
fn ordered(m: &BTreeMap<String, usize>) {
    for (k, v) in m {
        println!("{k}={v}");
    }
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn d1_quiet_on_order_insensitive_consumers() {
    let src = r#"
use std::collections::HashMap;
fn fine(m: &HashMap<String, usize>) -> (usize, bool) {
    (m.values().count(), m.values().any(|&v| v > 3))
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn d1_quiet_on_integer_sum() {
    // Integer addition is commutative-exact: order cannot matter.
    let src = r#"
use std::collections::HashMap;
fn total(m: &HashMap<String, usize>) -> usize {
    m.values().sum()
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn d1_fires_on_serialized_hashmap_field() {
    let src = r#"
use std::collections::HashMap;
#[derive(Serialize)]
struct Artifact {
    counts: HashMap<String, usize>,
}
"#;
    assert_eq!(diags(src), vec![(Rule::D1, 5)]);
}

#[test]
fn d1_quiet_on_serialized_btreemap_field() {
    let src = r#"
use std::collections::BTreeMap;
#[derive(Serialize)]
struct Artifact {
    counts: BTreeMap<String, usize>,
}
"#;
    assert!(diags(src).is_empty());
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_float_sum_over_hashmap() {
    let src = r#"
use std::collections::HashMap;
fn mean(m: &HashMap<String, f32>) -> f32 {
    m.values().sum::<f32>() / m.len() as f32
}
"#;
    assert_eq!(rules(src), vec![Rule::D2]);
}

#[test]
fn d2_fires_on_fold_over_hashset() {
    let src = r#"
use std::collections::HashSet;
fn acc(s: &HashSet<u32>) -> f64 {
    s.iter().fold(0.0, |a, &x| a + f64::from(x))
}
"#;
    assert_eq!(rules(src), vec![Rule::D2]);
}

#[test]
fn d2_quiet_on_float_sum_over_slice() {
    let src = r#"
fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32
}
"#;
    assert!(diags(src).is_empty());
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fires_on_ad_hoc_env_read() {
    let src = r#"
fn threads() -> usize {
    std::env::var("THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}
"#;
    assert_eq!(diags(src), vec![(Rule::D3, 3)]);
}

#[test]
fn d3_quiet_in_designated_module() {
    let src = r#"
fn threads() -> usize {
    std::env::var("THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}
"#;
    let d = lint_source("crates/nn/src/config.rs", src).unwrap();
    assert!(d.is_empty(), "{d:?}");
}

// ---------------------------------------------------------------- D4

#[test]
fn d4_fires_on_unwrap_in_spawned_closure() {
    let src = r#"
fn run(xs: Vec<String>) {
    std::thread::spawn(move || {
        let n: usize = xs[0].parse().unwrap();
        println!("{n}");
    });
}
"#;
    assert_eq!(diags(src), vec![(Rule::D4, 4)]);
}

#[test]
fn d4_fires_on_expect_in_map_ordered() {
    let src = r#"
fn run(pool: &WorkerPool, xs: &[String]) -> Vec<usize> {
    pool.map_ordered(xs, |_, x| x.parse().expect("numeric"))
}
"#;
    assert_eq!(rules(src), vec![Rule::D4]);
}

#[test]
fn d4_quiet_outside_worker_closures() {
    let src = r#"
fn run(xs: &[String]) -> usize {
    xs[0].parse().unwrap()
}
"#;
    assert!(diags(src).is_empty());
}

// ---------------------------------------------------------------- D5

#[test]
fn d5_fires_on_undocumented_unsafe() {
    let src = r#"
fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    assert_eq!(diags(src), vec![(Rule::D5, 3)]);
}

#[test]
fn d5_quiet_with_adjacent_safety_comment() {
    let src = r#"
fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn d5_safety_comment_reaches_through_a_run_of_lines() {
    // "SAFETY:" on the first line of a multi-line explanation still
    // covers the unsafe token under the run's last line.
    let src = r#"
fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads and the
    // allocation lives for the duration of this call, per the
    // contract documented on `read`.
    unsafe { *p }
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn d5_fires_on_undocumented_unsafe_impl() {
    let src = r#"
struct P(*mut u8);
unsafe impl Send for P {}
"#;
    assert_eq!(diags(src), vec![(Rule::D5, 3)]);
}

// ---------------------------------------------------------------- D6

#[test]
fn d6_fires_on_instant_now() {
    let src = r#"
fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    assert_eq!(diags(src), vec![(Rule::D6, 3)]);
}

#[test]
fn d6_fires_on_thread_sleep() {
    let src = r#"
fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
"#;
    assert_eq!(rules(src), vec![Rule::D6]);
}

#[test]
fn d6_quiet_in_bench_paths() {
    let src = r#"
fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    let d = lint_source("crates/bench/src/lib.rs", src).unwrap();
    assert!(d.is_empty(), "{d:?}");
}

// ---------------------------------------------------------------- D7

#[test]
fn d7_fires_on_direct_fs_write() {
    let src = r#"
fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
"#;
    assert_eq!(diags(src), vec![(Rule::D7, 3)]);
}

#[test]
fn d7_fires_on_file_create() {
    let src = r#"
use std::fs::File;
fn open(path: &std::path::Path) -> std::io::Result<File> {
    File::create(path)
}
"#;
    assert_eq!(diags(src), vec![(Rule::D7, 4)]);
}

#[test]
fn d7_quiet_on_reads_and_dir_creation() {
    let src = r#"
fn load(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::create_dir_all(path.parent().unwrap())?;
    std::fs::read(path)
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn d7_quiet_on_writer_method_calls() {
    let src = r#"
use std::io::Write;
fn emit(w: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    w.write(bytes).map(|_| ())
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn d7_quiet_in_designated_atomic_io_module() {
    let src = r#"
fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
"#;
    let d = lint_source("crates/core/src/atomic_io.rs", src).unwrap();
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn d7_suppressible_with_justification() {
    let src = r#"
fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    // lint: allow(D7) — advisory report, never read back
    std::fs::write(path, bytes)
}
"#;
    assert!(diags(src).is_empty());
}

// ------------------------------------------------------- suppressions

#[test]
fn suppression_with_justification_silences_finding() {
    let src = r#"
use std::collections::HashMap;
fn jaccard(m: &HashMap<String, usize>) -> usize {
    let mut total = 0;
    // lint: allow(D1) — integer min-sum is commutative-exact
    for (_, &v) in m {
        total = total.max(v);
    }
    total
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn suppression_without_justification_is_itself_a_finding() {
    let src = r#"
use std::collections::HashMap;
fn leak(m: &HashMap<String, usize>) {
    // lint: allow(D1)
    for (k, v) in m {
        println!("{k}={v}");
    }
}
"#;
    let found = rules(src);
    assert!(found.contains(&Rule::Allow), "{found:?}");
}

#[test]
fn suppression_for_unknown_rule_is_rejected() {
    let src = r#"
fn f() {
    // lint: allow(D9) — no such rule
    let x = 1;
    let _ = x;
}
"#;
    assert!(rules(src).contains(&Rule::Allow));
}

#[test]
fn suppression_only_covers_the_next_code_line() {
    let src = r#"
use std::collections::HashMap;
fn leak(m: &HashMap<String, usize>) {
    // lint: allow(D1) — documented exception
    let _pairs: Vec<(&String, &usize)> = m.iter().collect();
    for (k, v) in m {
        println!("{k}={v}");
    }
}
"#;
    assert_eq!(diags(src), vec![(Rule::D1, 6)]);
}

// -------------------------------------------------- test-code exemption

#[test]
fn test_paths_are_exempt() {
    let src = r#"
use std::collections::HashMap;
fn leak(m: &HashMap<String, usize>) {
    for (k, v) in m {
        println!("{k}={v}");
    }
}
"#;
    let d = lint_source("crates/fix/tests/it.rs", src).unwrap();
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn cfg_test_regions_are_exempt() {
    let src = r#"
use std::collections::HashMap;

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn order_free() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &m {
            println!("{k}={v}");
        }
    }
}
"#;
    assert!(diags(src).is_empty());
}

// ------------------------------------------------- S: panic freedom

use typilus_lint::{lint_files, LintReport};

/// Lints a synthetic multi-file workspace; the call graph spans it.
fn workspace(files: &[(&str, &str)]) -> LintReport {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_files(&owned).expect("fixture lexes")
}

#[test]
fn s1_fires_on_unwrap_reached_from_a_serve_root() {
    let src = r#"
// lint: root(serve)
fn handle(x: &str) -> usize {
    helper(x)
}
fn helper(x: &str) -> usize {
    x.parse().unwrap()
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![Rule::S1], "{:?}", report.diagnostics);
    // The message carries the offending call chain.
    assert!(
        report.diagnostics[0].message.contains("handle → helper"),
        "{}",
        report.diagnostics[0].message
    );
}

#[test]
fn s2_fires_on_panic_macro_and_s3_on_indexing() {
    let src = r#"
// lint: root(serve)
fn handle(xs: &[u32], i: usize) -> u32 {
    if i > xs.len() {
        panic!("bad index");
    }
    xs[i]
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![Rule::S2, Rule::S3], "{:?}", report.diagnostics);
}

#[test]
fn s_rules_quiet_off_the_reachable_set() {
    // Same panicking code, but no root reaches it: S stays quiet.
    let src = r#"
fn handle(x: &str) -> usize {
    x.parse().unwrap()
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn s_rules_quiet_in_test_code() {
    let src = r#"
// lint: root(serve)
fn handle(x: &str) -> usize {
    x.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], 1);
    }
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn s1_suppressible_on_the_fn_header_with_justification() {
    let src = r#"
// lint: root(serve)
fn handle(x: &str) -> usize {
    helper(x)
}
// lint: allow(S) — input is validated by the framing layer first
fn helper(x: &str) -> usize {
    x.parse().unwrap()
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert!(report.stale.is_empty(), "{:?}", report.stale);
}

// ------------------------------------ S: catch_unwind supervision

#[test]
fn s_rules_quiet_inside_a_catch_unwind_extent() {
    // The panic unwinds into the supervisor, not the client
    // connection: a supervised batch is a legitimate panic sink.
    let src = r#"
use std::panic::{catch_unwind, AssertUnwindSafe};

// lint: root(serve)
fn handle(x: &str) -> usize {
    let got = catch_unwind(AssertUnwindSafe(|| x.parse().unwrap()));
    got.unwrap_or(0)
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn s_rules_quiet_on_a_callee_reached_only_through_catch_unwind() {
    // Serve reachability must not flow through the supervised call, so
    // the helper's unwrap/indexing never become daemon killers.
    let src = r#"
use std::panic::{catch_unwind, AssertUnwindSafe};

// lint: root(serve)
fn handle(xs: &[u32]) -> u32 {
    catch_unwind(AssertUnwindSafe(|| risky(xs))).unwrap_or(0)
}
fn risky(xs: &[u32]) -> u32 {
    xs[0]
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn s_rules_fire_when_an_uncaught_edge_also_reaches_the_callee() {
    // The same helper called both under supervision and directly: the
    // direct edge keeps it serve-reachable and S3 must still fire.
    let src = r#"
use std::panic::{catch_unwind, AssertUnwindSafe};

// lint: root(serve)
fn handle(xs: &[u32]) -> u32 {
    let first = catch_unwind(AssertUnwindSafe(|| risky(xs))).unwrap_or(0);
    first + risky(xs)
}
fn risky(xs: &[u32]) -> u32 {
    xs[0]
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![Rule::S3], "{:?}", report.diagnostics);
}

#[test]
fn a1_still_fires_through_catch_unwind() {
    // Catching a panic does not undo allocations: hotpath reachability
    // keeps flowing through supervised calls.
    let src = r#"
use std::panic::{catch_unwind, AssertUnwindSafe};

// lint: root(hotpath)
fn query(xs: &[u32]) -> usize {
    catch_unwind(AssertUnwindSafe(|| scan(xs))).unwrap_or(0)
}
fn scan(xs: &[u32]) -> usize {
    let held: Vec<u32> = xs.to_vec();
    held.len()
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![Rule::A1], "{:?}", report.diagnostics);
}

// ----------------------------------------- A: hot-path allocations

#[test]
fn a1_fires_on_allocation_reached_from_a_hotpath_root() {
    let src = r#"
// lint: root(hotpath)
fn query(xs: &[u32]) -> usize {
    scan(xs)
}
fn scan(xs: &[u32]) -> usize {
    let held: Vec<u32> = xs.to_vec();
    held.len()
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![Rule::A1], "{:?}", report.diagnostics);
    assert!(
        report.diagnostics[0].message.contains("query → scan"),
        "{}",
        report.diagnostics[0].message
    );
}

#[test]
fn a1_quiet_on_serve_only_paths() {
    // Serve-reachable code may allocate; only hotpath roots forbid it.
    let src = r#"
// lint: root(serve)
fn handle(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

// ------------------------------------------- U: unsafe invariants

#[test]
fn u1_fires_on_unsafe_fn_without_safety_doc() {
    let src = r#"
/// Reads a raw byte.
unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}
"#;
    assert_eq!(rules(src), vec![Rule::U1]);
}

#[test]
fn u1_quiet_with_safety_doc_section() {
    let src = r#"
/// Reads a raw byte.
///
/// # Safety
///
/// `p` must be valid for reads.
unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid, per the doc contract.
    unsafe { *p }
}
"#;
    assert!(diags(src).is_empty());
}

#[test]
fn u2_fires_on_pub_safe_fn_exposing_raw_pointer() {
    let src = r#"
pub fn base_ptr(xs: &[u8]) -> *const u8 {
    xs.as_ptr()
}
"#;
    assert_eq!(rules(src), vec![Rule::U2]);
}

#[test]
fn u2_quiet_on_private_and_unsafe_signatures() {
    let src = r#"
fn base_ptr(xs: &[u8]) -> *const u8 {
    xs.as_ptr()
}
"#;
    assert!(diags(src).is_empty());
}

// ------------------------------------------------ root annotations

#[test]
fn malformed_root_annotation_is_a_finding() {
    let src = r#"
// lint: root(serve
fn handle() {}
"#;
    assert!(rules(src).contains(&Rule::Allow));
}

#[test]
fn unknown_root_family_is_a_finding() {
    let src = r#"
// lint: root(fastpath)
fn handle() {}
"#;
    assert!(rules(src).contains(&Rule::Allow));
}

#[test]
fn floating_root_annotation_is_a_finding() {
    let src = r#"
// lint: root(serve)

struct NotAFn;
"#;
    assert!(rules(src).contains(&Rule::Allow));
}

// ---------------------------------------------- stale suppressions

#[test]
fn unused_suppression_is_reported_stale() {
    let src = r#"
// lint: allow(S1) — nothing here actually unwraps
fn calm(x: usize) -> usize {
    x + 1
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.stale.len(), 1, "{:?}", report.stale);
    assert_eq!(report.stale[0].line, 2);
    assert_eq!(report.stale[0].rules, vec![Rule::S1]);
}

#[test]
fn used_suppression_is_not_stale() {
    let src = r#"
use std::collections::HashMap;
fn leak(m: &HashMap<String, usize>) {
    // lint: allow(D1) — display order does not matter here
    for (k, v) in m {
        println!("{k}={v}");
    }
}
"#;
    let report = workspace(&[("crates/fix/src/lib.rs", src)]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert!(report.stale.is_empty(), "{:?}", report.stale);
}

// ------------------------------------------------------ call graph

#[test]
fn call_graph_resolves_cross_crate_edges_within_declared_deps() {
    // `fix` depends on `util` (the `typilus_util` ident below declares
    // it); the chain handle → fetch → pick crosses the crate boundary
    // and still carries S3 back to the indexing site.
    let caller = r#"
use typilus_util::fetch;

// lint: root(serve)
fn handle(xs: &[u32]) -> u32 {
    fetch(xs)
}
"#;
    let callee = r#"
pub fn fetch(xs: &[u32]) -> u32 {
    pick(xs)
}
fn pick(xs: &[u32]) -> u32 {
    xs[0]
}
"#;
    let report = workspace(&[
        ("crates/fix/src/lib.rs", caller),
        ("crates/util/src/lib.rs", callee),
    ]);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![Rule::S3], "{:?}", report.diagnostics);
    assert!(
        report.diagnostics[0]
            .message
            .contains("handle → fetch → pick"),
        "{}",
        report.diagnostics[0].message
    );
    assert!(report.stats.edges >= 2, "{:?}", report.stats);
    assert!(report.stats.serve_reachable >= 3, "{:?}", report.stats);
}

#[test]
fn call_graph_refuses_edges_outside_the_dependency_closure() {
    // No `typilus_util` ident in the caller: same-named free fns in an
    // undeclared crate must not produce an edge, so nothing is
    // reachable and S stays quiet.
    let caller = r#"
// lint: root(serve)
fn handle(xs: &[u32]) -> u32 {
    fetch(xs)
}
fn fetch(xs: &[u32]) -> u32 {
    xs.len() as u32
}
"#;
    let callee = r#"
pub fn fetch(xs: &[u32]) -> u32 {
    xs[0]
}
"#;
    let report = workspace(&[
        ("crates/fix/src/lib.rs", caller),
        ("crates/util/src/lib.rs", callee),
    ]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}
