//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use std::error::Error;
use std::path::Path;
use typilus::{
    evaluate_files, open_space_index, space_sidecar_path, table2_row, train_with_options,
    Aggregation, CheckerProfile, EncoderKind, GraphConfig, KnnConfig, LossKind, ModelConfig,
    NodeInit, Parallelism, PreparedCorpus, RpForestConfig, SpaceConfig, TrainError, TrainOptions,
    TrainedSystem, TypilusConfig,
};
use typilus_check::TypeChecker;
use typilus_corpus::{generate, CorpusConfig};
use typilus_serve::{Client, ClientOptions, Endpoint, Response, ServeOptions, Server};

type CmdResult = Result<(), Box<dyn Error>>;

/// Prints usage and exits the dispatcher cleanly.
pub fn usage() {
    eprintln!(
        "\
typilus — neural type hints for Python (Typilus, PLDI 2020, in Rust)

USAGE:
  typilus gen-corpus --out DIR [--files N] [--seed S] [--error-rate F]
  typilus train      --corpus DIR --model OUT [--encoder graph|seq|path|transformer]
                     [--loss class|space|typilus] [--epochs N] [--dim D]
                     [--gnn-steps T] [--lr F] [--seed S] [--threads N]
                     [--knn-k K] [--knn-p P] [--profile]
                     [--index exact|forest|sharded] [--shards N] [--trees N]
                     [--leaf-size N] [--search-k N] [--rebuild-threshold N]
                     [--checkpoint-dir DIR] [--resume] [--kill-after-epoch N]
  typilus predict    --model FILE [--top K] [--min-confidence F] [--check]
                     [--out FILE] PY_FILE...
  typilus eval       --model FILE --corpus DIR [--common N] [--threads N]
  typilus audit      --model FILE --corpus DIR [--min-confidence F]
  typilus index      --model FILE [--info | --verify] [--shards N] [--trees N]
                     [--leaf-size N] [--search-k N] [--rebuild-threshold N]
                     [--seed S] [--threads N]
  typilus serve      --model FILE (--addr HOST:PORT | --socket PATH)
                     [--batch-max N] [--batch-bytes-max N] [--queue-max N]
                     [--timeout-ms N] [--threads N]
  typilus query      (--addr HOST:PORT | --socket PATH) [--top K]
                     [--min-confidence F] [--out FILE] [--retry]
                     [--timeout-ms N] PY_FILE...
  typilus query      ... --add-symbol NAME --add-type TYPE PY_FILE
  typilus query      ... (--stats | --reindex | --drain | --shutdown)

Corpora are directories of .py files. Models are .typilus artefacts
written by `train` (see typilus::TrainedSystem::save).

Training, corpus preparation and evaluation fan per-file work across a
persistent worker pool; results are bit-identical for every thread
count. --threads 0 (the default) auto-detects: the TYPILUS_THREADS
environment variable if set, otherwise the number of available CPU
cores. A malformed TYPILUS_THREADS (anything but a positive integer) is
a configuration error.

--knn-k / --knn-p set the kNN prediction parameters of Eq. 5 (k
nearest markers, distance exponent p); k must be positive and p
non-negative.

--index picks the TypeSpace nearest-neighbour index built after
training: exact (default, brute force), forest (in-memory RP forest),
or sharded (the million-marker index: shard groups of trees built in
parallel, persisted as an mmap-able `MODEL.space` sidecar that loads
in O(header) and serves zero-copy). --shards/--trees/--leaf-size/
--search-k/--rebuild-threshold tune it.

`typilus index` (re)builds the sharded index of an existing model and
rewrites the sidecar; --info prints the sidecar's header, --verify
additionally sweeps its checksums. The sidecar bytes are identical at
any --threads value.

`train --profile` prints arena allocation counters after training; when
the binary is built with `--features nn-profile` it also prints a per-op
kernel time/volume table.

Crash safety: with --checkpoint-dir, train writes an atomic,
checksummed checkpoint after every epoch; --resume restarts from the
newest valid checkpoint (corrupt ones are reported and skipped) and
produces byte-identical artifacts to an uninterrupted run.
--kill-after-epoch N aborts right after checkpointing epoch N (exit
code 3) — the fault-injection hook used by scripts/detcheck.sh.

`typilus serve` keeps a loaded model resident and answers requests over
a length-prefixed binary protocol: the sidecar mmap, worker pool and
prediction scratch stay warm across requests, and concurrent predicts
are batched into single pooled forward passes — replies are
byte-identical to one-shot `typilus predict` output at any client or
thread count. Serving never writes an artifact; kill it at any moment.
A panic anywhere in the engine is supervised: the affected requests
get a typed `internal` error, the worker scratch is rebuilt, repeat
offenders are quarantined, and the daemon keeps serving — `--stats`
reports the health (ok/degraded/draining) and recovery counters.
--batch-bytes-max caps the source bytes drained into one engine pass.
`typilus query` is the matching client: predict files, bind one
open-vocabulary marker (--add-symbol/--add-type), or ask for --stats,
--reindex (in-memory index rebuild), --drain (stop accepting new
connections), --shutdown. --retry turns on resilient transport:
connect/read/write timeouts, reconnect with bounded exponential
backoff and deterministic jitter, retries for idempotent requests
only (never --add-symbol). --timeout-ms bounds the whole query.

Unparseable or empty .py files never abort a run: they are quarantined,
counted and named on stderr, and the rest of the corpus proceeds."
    );
}

/// Reads all `.py` files under `dir` (one level or nested).
fn read_corpus_dir(dir: &str) -> Result<Vec<(String, String)>, Box<dyn Error>> {
    let mut out = Vec::new();
    fn walk(dir: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "py") {
                let source = std::fs::read_to_string(&path)?;
                out.push((path.display().to_string(), source));
            }
        }
        Ok(())
    }
    walk(Path::new(dir), &mut out)?;
    if out.is_empty() {
        return Err(format!("no .py files found under {dir}").into());
    }
    out.sort();
    Ok(out)
}

fn load_prepared(
    dir: &str,
    graph: &GraphConfig,
    seed: u64,
) -> Result<PreparedCorpus, Box<dyn Error>> {
    let files = read_corpus_dir(dir)?;
    let named: Vec<(&str, &str)> = files
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let data = PreparedCorpus::from_sources(&named, graph, seed);
    eprintln!(
        "loaded {} files from {dir} ({} train / {} valid / {} test)",
        data.files.len(),
        data.split.train.len(),
        data.split.valid.len(),
        data.split.test.len()
    );
    if !data.quarantine.is_empty() {
        eprintln!("warning: {}", data.quarantine.summary());
        for (name, reason) in &data.quarantine.skipped {
            eprintln!("  skipped {name}: {reason}");
        }
    }
    Ok(data)
}

/// `typilus gen-corpus`
pub fn gen_corpus(args: &Args) -> CmdResult {
    let out_dir = args.require("out")?;
    let files = args.get_parsed("files", 120usize)?;
    let seed = args.get_parsed("seed", 0u64)?;
    let error_rate = args.get_parsed("error-rate", 0.0f64)?;
    let corpus = generate(&CorpusConfig {
        files,
        seed,
        error_rate,
        ..CorpusConfig::default()
    });
    for f in &corpus.files {
        let path = Path::new(out_dir).join(&f.name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        typilus::atomic_io::write_atomic(&path, f.source.as_bytes())?;
    }
    let planted: usize = corpus.files.iter().map(|f| f.injected_errors.len()).sum();
    println!(
        "wrote {} files to {out_dir} ({} planted annotation errors)",
        corpus.files.len(),
        planted
    );
    Ok(())
}

fn encoder_from(name: &str) -> Result<EncoderKind, ArgError> {
    Ok(match name {
        "graph" => EncoderKind::Graph,
        "seq" => EncoderKind::Seq,
        "path" => EncoderKind::Path,
        "transformer" => EncoderKind::Transformer,
        other => return Err(ArgError(format!("unknown encoder {other:?}"))),
    })
}

fn loss_from(name: &str) -> Result<LossKind, ArgError> {
    Ok(match name {
        "class" => LossKind::Class,
        "space" => LossKind::Space,
        "typilus" => LossKind::Typilus,
        other => return Err(ArgError(format!("unknown loss {other:?}"))),
    })
}

/// `typilus train`
pub fn train_cmd(args: &Args) -> CmdResult {
    let corpus_dir = args.require("corpus")?;
    let model_path = args.require("model")?.to_string();
    let seed = args.get_parsed("seed", 0u64)?;
    let parallelism = Parallelism::fixed(args.get_parsed("threads", 0usize)?);
    // Surface a malformed TYPILUS_THREADS as a config error up front,
    // before any corpus loading or training happens.
    parallelism.try_resolve()?;
    let knn = KnnConfig {
        k: args.get_parsed("knn-k", KnnConfig::default().k)?,
        p: args.get_parsed("knn-p", KnnConfig::default().p)?,
    };
    knn.validate()?;
    let space = space_config_from(args, SpaceConfig::default())?;
    let (approximate_index, space) = match args.get("index").unwrap_or("exact") {
        "exact" => (false, space),
        "forest" => (true, SpaceConfig { shards: 1, ..space }),
        "sharded" => (
            true,
            SpaceConfig {
                shards: space.shards.max(2),
                ..space
            },
        ),
        other => {
            return Err(ArgError(format!(
                "--index: unknown mode {other:?} (exact|forest|sharded)"
            ))
            .into())
        }
    };
    let graph = GraphConfig::default();
    let data = load_prepared(corpus_dir, &graph, seed)?;
    let config = TypilusConfig {
        model: ModelConfig {
            encoder: encoder_from(args.get("encoder").unwrap_or("graph"))?,
            loss: loss_from(args.get("loss").unwrap_or("typilus"))?,
            dim: args.get_parsed("dim", 32usize)?,
            gnn_steps: args.get_parsed("gnn-steps", 8usize)?,
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
            seed,
            ..ModelConfig::default()
        },
        graph,
        epochs: args.get_parsed("epochs", 15usize)?,
        batch_size: args.get_parsed("batch-size", 8usize)?,
        lr: args.get_parsed("lr", 0.015f32)?,
        knn,
        approximate_index,
        space,
        common_threshold: args.get_parsed("common", 15usize)?,
        seed,
        parallelism,
    };
    let profile = args.has_flag("profile");
    if profile {
        typilus_nn::reset_profile();
        typilus_nn::reset_arena_stats();
    }
    let opts = TrainOptions {
        checkpoint_dir: args.get("checkpoint-dir").map(Into::into),
        resume: args.has_flag("resume"),
        kill_after_epoch: match args.get("kill-after-epoch") {
            Some(_) => Some(args.get_parsed("kill-after-epoch", 0usize)?),
            None => None,
        },
    };
    let system = match train_with_options(&data, &config, &opts) {
        Ok(system) => system,
        Err(TrainError::Killed { epoch }) => {
            // The checkpoint for `epoch` is already on disk; a
            // distinctive exit code lets harnesses assert the kill
            // actually happened before they resume.
            eprintln!("train: killed after epoch {epoch} (checkpoint written)");
            std::process::exit(3);
        }
        Err(e) => return Err(e.into()),
    };
    for e in &system.epochs {
        eprintln!(
            "epoch {:>3}: loss {:.4} ({:.1}s)",
            e.epoch, e.mean_loss, e.seconds
        );
    }
    if profile {
        let stats = typilus_nn::arena_stats();
        eprintln!(
            "arena: {} fresh allocations, {} reused buffers, {} recycled ({:.1}% reuse)",
            stats.fresh,
            stats.reused,
            stats.recycled,
            100.0 * stats.reused as f64 / (stats.fresh + stats.reused).max(1) as f64
        );
        match typilus_nn::profile_report() {
            Some(table) => eprintln!("{table}"),
            None => eprintln!("per-op profile unavailable: rebuild with `--features nn-profile`"),
        }
    }
    system.save(&model_path)?;
    println!(
        "saved model to {model_path} ({} weights, {} type-map markers, {} distinct types)",
        system.model.params.scalar_count(),
        system.type_map.len(),
        system.type_map.distinct_types()
    );
    Ok(())
}

/// The sharded-index knobs shared by `train` and `index`, defaulted
/// from `base`.
fn space_config_from(args: &Args, base: SpaceConfig) -> Result<SpaceConfig, ArgError> {
    Ok(SpaceConfig {
        shards: args.get_parsed("shards", base.shards)?,
        forest: RpForestConfig {
            trees: args.get_parsed("trees", base.forest.trees)?,
            leaf_size: args.get_parsed("leaf-size", base.forest.leaf_size)?,
            search_k: args.get_parsed("search-k", base.forest.search_k)?,
        },
        rebuild_threshold: args.get_parsed("rebuild-threshold", base.rebuild_threshold)?,
    })
}

/// `typilus index` — build, inspect or verify a model's sharded
/// TypeSpace index sidecar.
pub fn index_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let sidecar = space_sidecar_path(model_path);
    if args.has_flag("info") || args.has_flag("verify") {
        let index = open_space_index(&sidecar)?;
        if args.has_flag("verify") {
            index.verify()?;
        }
        let config = index.config();
        println!(
            "sidecar {}: {} markers (dim {}), {} shards, {} trees \
             (leaf size {}, search-k {}), rebuild threshold {}, seed {}, \
             file id {:016x}{}",
            sidecar.display(),
            index.len(),
            index.dim(),
            index.shard_count(),
            config.forest.trees,
            config.forest.leaf_size,
            config.forest.search_k,
            config.rebuild_threshold,
            index.seed(),
            index.file_id(),
            if args.has_flag("verify") {
                " [checksums verified]"
            } else {
                ""
            }
        );
        return Ok(());
    }
    let mut system = TrainedSystem::load(model_path)?;
    let config = space_config_from(args, system.config.space)?;
    let seed = args.get_parsed("seed", system.config.seed)?;
    if args.get("threads").is_some() {
        system.config.parallelism = Parallelism::fixed(args.get_parsed("threads", 0usize)?);
        system.config.parallelism.try_resolve()?;
    }
    // Record the knobs so automatic overlay rebuilds and future
    // `typilus index` runs default to them. The artifact stays
    // byte-identical at any --threads value: the thread policy
    // serializes as auto-detect, and the sharded build itself is
    // thread-count independent.
    system.config.space = config;
    system.config.approximate_index = true;
    let threads = system.config.parallelism.resolve();
    let pool = system.pool.get_or_create(|| threads);
    system
        .type_map
        .build_sharded_index(&config, seed, Some(pool))?;
    system.save(model_path)?;
    let index = system
        .type_map
        .space_index()
        .ok_or("internal error: sharded index absent right after a successful build")?;
    println!(
        "indexed {} markers into {} shards ({} trees); sidecar {} ({} bytes, file id {:016x})",
        index.len(),
        index.shard_count(),
        config.forest.trees,
        sidecar.display(),
        index.payload().len(),
        index.file_id()
    );
    Ok(())
}

/// One renderable candidate: display type, probability, and the
/// checker verdict suffix (`""` when the checker did not run).
struct RenderEntry {
    ty: String,
    probability: f32,
    verdict: &'static str,
}

/// One renderable symbol row of a prediction report.
struct RenderSymbol {
    name: String,
    kind: String,
    entries: Vec<RenderEntry>,
}

/// Renders one file's rows exactly the way `typilus predict` always
/// has. `typilus query` renders served [`SymbolHints`] through the same
/// function, which is what makes served reports byte-identical to
/// one-shot output.
fn render_file(
    report: &mut String,
    file: &str,
    symbols: &[RenderSymbol],
    top: usize,
    min_confidence: f32,
) -> Result<(), std::fmt::Error> {
    use std::fmt::Write as _;
    writeln!(report, "== {file}")?;
    for s in symbols {
        let confidence = s.entries.first().map(|e| e.probability).unwrap_or(0.0);
        if confidence < min_confidence {
            continue;
        }
        let shown: Vec<String> = s
            .entries
            .iter()
            .take(top)
            .map(|e| format!("{} (p={:.2}){}", e.ty, e.probability, e.verdict))
            .collect();
        if shown.is_empty() {
            continue;
        }
        writeln!(
            report,
            "  {:<20} {:<10} {}",
            s.name,
            s.kind,
            shown.join(", ")
        )?;
    }
    Ok(())
}

/// `typilus predict`
pub fn predict_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let top = args.get_parsed("top", 3usize)?;
    let min_confidence = args.get_parsed("min-confidence", 0.0f32)?;
    let run_checker = args.has_flag("check");
    let out_path = args.get("out");
    let files = &args.positionals()[1..];
    if files.is_empty() {
        return Err("predict needs at least one .py file".into());
    }
    let system = TrainedSystem::load(model_path)?;
    let checker = TypeChecker::new(CheckerProfile::Mypy);
    let mut report = String::new();
    for file in files {
        let source = std::fs::read_to_string(file)?;
        let predictions = system.predict_source(&source)?;
        // For the optional checker filter we need the parsed module.
        let parsed = typilus_pyast::parse(&source)?;
        let table = typilus_pyast::SymbolTable::build(&parsed.module);
        let symbols: Vec<RenderSymbol> = predictions
            .iter()
            .map(|p| RenderSymbol {
                name: p.name.clone(),
                kind: format!("{:?}", p.kind),
                entries: p
                    .candidates
                    .iter()
                    .enumerate()
                    .map(|(i, c)| RenderEntry {
                        ty: c.ty.to_string(),
                        probability: c.probability,
                        // Only candidates within --top are shown, so
                        // only those pay for a checker pass.
                        verdict: if i < top && run_checker && !c.ty.is_top() {
                            let issues = checker.check_with_override(
                                &parsed,
                                &table,
                                p.symbol,
                                c.ty.clone(),
                            );
                            if issues.is_empty() {
                                " [ok]"
                            } else {
                                " [type error]"
                            }
                        } else {
                            ""
                        },
                    })
                    .collect(),
            })
            .collect();
        render_file(&mut report, file, &symbols, top, min_confidence)?;
    }
    match out_path {
        // A prediction artifact on disk goes through the same
        // atomic-write path as models: no torn half-report on crash.
        Some(path) => typilus::atomic_io::write_atomic(Path::new(path), report.as_bytes())?,
        None => print!("{report}"),
    }
    Ok(())
}

/// Parses the endpoint flags shared by `serve` and `query`.
fn endpoint_from(args: &Args) -> Result<Endpoint, ArgError> {
    match (args.get("addr"), args.get("socket")) {
        (Some(addr), None) => Ok(Endpoint::Tcp(addr.to_string())),
        (None, Some(path)) => Ok(Endpoint::Unix(path.into())),
        (Some(_), Some(_)) => Err(ArgError("give --addr or --socket, not both".to_string())),
        (None, None) => Err(ArgError(
            "--addr HOST:PORT or --socket PATH is required".to_string(),
        )),
    }
}

/// Turns an error reply into the CLI's error type.
fn server_error(code: typilus_serve::ErrorCode, message: &str) -> Box<dyn Error> {
    format!("server error [{code}]: {message}").into()
}

/// `typilus serve` — the long-lived batched prediction daemon.
pub fn serve_cmd(args: &Args) -> CmdResult {
    use std::io::Write as _;
    let model_path = args.require("model")?;
    let endpoint = endpoint_from(args)?;
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        batch_max: args.get_parsed("batch-max", defaults.batch_max)?,
        batch_bytes_max: args.get_parsed("batch-bytes-max", defaults.batch_bytes_max)?,
        queue_max: args.get_parsed("queue-max", defaults.queue_max)?,
        timeout_ms: args.get_parsed("timeout-ms", defaults.timeout_ms)?,
    };
    let mut system = TrainedSystem::load(model_path)?;
    if args.get("threads").is_some() {
        system.config.parallelism = Parallelism::fixed(args.get_parsed("threads", 0usize)?);
        system.config.parallelism.try_resolve()?;
    }
    let server = Server::bind(&endpoint, options)?;
    // The readiness line goes to stdout and is flushed explicitly so
    // harnesses piping the output can wait on it.
    println!(
        "serving {model_path} on {} ({} markers, {} distinct types, index {})",
        server.endpoint(),
        system.type_map.len(),
        system.type_map.distinct_types(),
        system.type_map.index_kind()
    );
    std::io::stdout().flush()?;
    let s = server.run(&mut system);
    println!(
        "served {} requests ({} predictions, {} markers added, {} errors) \
         in {} batches (largest {})",
        s.requests, s.predicts, s.markers_added, s.errors, s.batches, s.largest_batch
    );
    if s.panics_recovered > 0 || s.quarantined > 0 || s.client_gone > 0 || s.write_faults > 0 {
        println!(
            "recovered {} engine panics ({} requests quarantined, \
             {} client-gone writes, {} write faults)",
            s.panics_recovered, s.quarantined, s.client_gone, s.write_faults
        );
    }
    Ok(())
}

/// `typilus query` — client for a running `typilus serve` daemon.
pub fn query_cmd(args: &Args) -> CmdResult {
    let endpoint = endpoint_from(args)?;
    // --retry opts into the resilient transport profile (timeouts,
    // reconnect with deterministic backoff, idempotent-only
    // retries); --timeout-ms bounds the whole query either way.
    let mut options = if args.has_flag("retry") {
        ClientOptions::default()
    } else {
        ClientOptions::blocking()
    };
    if args.get("timeout-ms").is_some() {
        let ms = args.get_parsed("timeout-ms", 0u64)?;
        options.deadline_ms = ms;
        if options.connect_timeout_ms == 0 {
            options.connect_timeout_ms = ms;
        }
        if options.read_timeout_ms == 0 {
            options.read_timeout_ms = ms;
        }
        if options.write_timeout_ms == 0 {
            options.write_timeout_ms = ms;
        }
    }
    let mut client = Client::connect_with(&endpoint, options)?;
    if args.has_flag("stats") {
        return match client.stats()? {
            Response::Stats(s) => {
                println!(
                    "type map: {} markers, {} distinct types, dim {}, index {} \
                     ({} overlay)",
                    s.markers, s.distinct_types, s.dim, s.index, s.overlay
                );
                println!(
                    "server: {} requests ({} predictions, {} markers added, {} errors) \
                     in {} batches (largest {})",
                    s.requests, s.predicts, s.markers_added, s.errors, s.batches, s.largest_batch
                );
                println!(
                    "health: {} ({} panics recovered, {} quarantined, \
                     {} client-gone writes, {} write faults)",
                    s.health, s.panics_recovered, s.quarantined, s.client_gone, s.write_faults
                );
                for (key, count) in &s.warnings {
                    println!("warning[{key}]: raised {count}x");
                }
                Ok(())
            }
            Response::Error { code, message } => Err(server_error(code, &message)),
            other => Err(format!("unexpected reply to stats: {other:?}").into()),
        };
    }
    if args.has_flag("reindex") {
        return match client.reindex()? {
            Response::Reindexed { markers, index } => {
                println!("reindexed {markers} markers (index {index}, in memory only)");
                Ok(())
            }
            Response::Error { code, message } => Err(server_error(code, &message)),
            other => Err(format!("unexpected reply to reindex: {other:?}").into()),
        };
    }
    if args.has_flag("drain") {
        return match client.drain()? {
            Response::Draining => {
                println!("server is draining (existing connections served, new ones refused)");
                Ok(())
            }
            Response::Error { code, message } => Err(server_error(code, &message)),
            other => Err(format!("unexpected reply to drain: {other:?}").into()),
        };
    }
    if args.has_flag("shutdown") {
        return match client.shutdown()? {
            Response::Bye => {
                println!("server shut down");
                Ok(())
            }
            Response::Error { code, message } => Err(server_error(code, &message)),
            other => Err(format!("unexpected reply to shutdown: {other:?}").into()),
        };
    }
    if args.get("add-symbol").is_some() || args.get("add-type").is_some() {
        let symbol = args.require("add-symbol")?;
        let ty = args.require("add-type")?;
        let file = args
            .positionals()
            .get(1)
            .ok_or("--add-symbol needs one PY_FILE with the binding snippet")?;
        let source = std::fs::read_to_string(file)?;
        return match client.add_marker(&source, symbol, ty)? {
            Response::MarkerAdded { markers } => {
                println!("bound {symbol}: {ty} ({markers} markers, in memory only)");
                Ok(())
            }
            Response::Error { code, message } => Err(server_error(code, &message)),
            other => Err(format!("unexpected reply to add-marker: {other:?}").into()),
        };
    }
    let top = args.get_parsed("top", 3usize)?;
    let min_confidence = args.get_parsed("min-confidence", 0.0f32)?;
    let out_path = args.get("out");
    let files = &args.positionals()[1..];
    if files.is_empty() {
        return Err(
            "query needs at least one .py file (or --stats/--reindex/--drain/--shutdown)".into(),
        );
    }
    let mut report = String::new();
    for file in files {
        let source = std::fs::read_to_string(file)?;
        match client.predict(&source)? {
            Response::Predictions(symbols) => {
                let rows: Vec<RenderSymbol> = symbols
                    .iter()
                    .map(|s| RenderSymbol {
                        name: s.name.clone(),
                        kind: s.kind.clone(),
                        entries: s
                            .hints
                            .iter()
                            .map(|h| RenderEntry {
                                ty: h.ty.clone(),
                                probability: h.probability,
                                verdict: "",
                            })
                            .collect(),
                    })
                    .collect();
                render_file(&mut report, file, &rows, top, min_confidence)?;
            }
            Response::Error { code, message } => return Err(server_error(code, &message)),
            other => return Err(format!("unexpected reply to predict: {other:?}").into()),
        }
    }
    match out_path {
        Some(path) => typilus::atomic_io::write_atomic(Path::new(path), report.as_bytes())?,
        None => print!("{report}"),
    }
    Ok(())
}

/// `typilus eval`
pub fn eval_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let corpus_dir = args.require("corpus")?;
    let common = args.get_parsed("common", 15usize)?;
    let mut system = TrainedSystem::load(model_path)?;
    if args.get("threads").is_some() {
        system.config.parallelism = Parallelism::fixed(args.get_parsed("threads", 0usize)?);
        // The loaded system lazily builds its worker pool from this
        // config; reject a malformed TYPILUS_THREADS here rather than
        // mid-evaluation.
        system.config.parallelism.try_resolve()?;
    }
    let data = load_prepared(corpus_dir, &system.config.graph, system.config.seed)?;
    let examples = evaluate_files(&system, &data, &data.split.test);
    let row = table2_row(&examples, &system.hierarchy, common);
    println!(
        "evaluated {} annotated symbols from the test split",
        row.counts.0
    );
    println!(
        "  exact match:            {:>5.1}% (common {:.1}%, rare {:.1}%)",
        row.exact_all, row.exact_common, row.exact_rare
    );
    println!(
        "  match up to parametric: {:>5.1}% (common {:.1}%, rare {:.1}%)",
        row.para_all, row.para_common, row.para_rare
    );
    println!("  type neutral:           {:>5.1}%", row.neutral);
    Ok(())
}

/// `typilus audit`
pub fn audit_cmd(args: &Args) -> CmdResult {
    let model_path = args.require("model")?;
    let corpus_dir = args.require("corpus")?;
    let min_confidence = args.get_parsed("min-confidence", 0.8f32)?;
    let system = TrainedSystem::load(model_path)?;
    let data = load_prepared(corpus_dir, &system.config.graph, system.config.seed)?;
    let checker = TypeChecker::new(CheckerProfile::Mypy);
    let mut findings = 0usize;
    println!(
        "{:<40} {:<18} {:<18} {:<18} conf",
        "file", "symbol", "annotated", "predicted"
    );
    for (idx, file) in data.files.iter().enumerate() {
        for p in system.predict_file(&data, idx) {
            let (Some(original), Some(top)) = (&p.ground_truth, p.top()) else {
                continue;
            };
            if top.ty == *original || top.probability < min_confidence {
                continue;
            }
            let issues =
                checker.check_with_override(&file.parsed, &file.table, p.symbol, top.ty.clone());
            if issues.is_empty() {
                findings += 1;
                println!(
                    "{:<40} {:<18} {:<18} {:<18} {:.2}",
                    file.name,
                    p.name,
                    original.to_string(),
                    top.ty.to_string(),
                    top.probability
                );
            }
        }
    }
    println!("\n{findings} confident, type-checkable disagreements");
    Ok(())
}
