//! `typilus` — the command-line face of the Typilus reproduction.
//!
//! ```sh
//! typilus gen-corpus --out /tmp/corpus --files 80
//! typilus train --corpus /tmp/corpus --model /tmp/model.typilus
//! typilus predict --model /tmp/model.typilus --check some_file.py
//! typilus eval --model /tmp/model.typilus --corpus /tmp/corpus
//! typilus audit --model /tmp/model.typilus --corpus /tmp/corpus
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(
        raw,
        &[
            "check", "drain", "help", "info", "profile", "reindex", "resume", "retry", "shutdown",
            "stats", "verify",
        ],
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            commands::usage();
            std::process::exit(2);
        }
    };
    let Some(command) = parsed.positionals().first().map(String::as_str) else {
        commands::usage();
        std::process::exit(2);
    };
    let result = match command {
        "gen-corpus" => commands::gen_corpus(&parsed),
        "train" => commands::train_cmd(&parsed),
        "predict" => commands::predict_cmd(&parsed),
        "eval" => commands::eval_cmd(&parsed),
        "audit" => commands::audit_cmd(&parsed),
        "index" => commands::index_cmd(&parsed),
        "serve" => commands::serve_cmd(&parsed),
        "query" => commands::query_cmd(&parsed),
        "help" | "--help" => {
            commands::usage();
            return;
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            commands::usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
