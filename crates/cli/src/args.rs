//! A small flag parser (no external argument-parsing crate is available
//! offline): `--key value` pairs, `--flag` booleans, and positionals.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error produced for malformed or unknown arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments. `known_flags` lists options that take no
    /// value; every other `--name` consumes the next token as its value.
    ///
    /// # Errors
    ///
    /// Fails when a value-taking option has no following token.
    pub fn parse(
        raw: impl IntoIterator<Item = String>,
        known_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if known_flags.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                    out.options.insert(name.to_string(), value);
                }
            } else {
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// The positional arguments in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// An option's raw value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An option parsed to a type, with a default.
    ///
    /// # Errors
    ///
    /// Fails when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// A required option.
    ///
    /// # Errors
    ///
    /// Fails when the option is missing.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("--{name} is required")))
    }

    /// Whether a boolean flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str], flags: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()), flags).unwrap()
    }

    #[test]
    fn mixed_arguments() {
        let a = parse(
            &[
                "predict", "--model", "m.bin", "--top", "3", "--check", "file.py",
            ],
            &["check"],
        );
        assert_eq!(a.positionals(), &["predict", "file.py"]);
        assert_eq!(a.get("model"), Some("m.bin"));
        assert_eq!(a.get_parsed("top", 1usize).unwrap(), 3);
        assert!(a.has_flag("check"));
        assert!(!a.has_flag("verbose"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse(&["train"], &[]);
        assert_eq!(a.get_parsed("epochs", 12usize).unwrap(), 12);
        assert!(a.require("corpus").is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let r = Args::parse(["--model".to_string()], &[]);
        assert!(r.is_err());
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = parse(&["--epochs", "many"], &[]);
        assert!(a.get_parsed("epochs", 1usize).is_err());
    }
}
