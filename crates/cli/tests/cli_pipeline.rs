//! End-to-end test of the `typilus` binary: generate a corpus, train,
//! predict, evaluate and audit through the real CLI surface.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_typilus"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("typilus_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp workdir");
    dir
}

#[test]
fn full_cli_pipeline() {
    let dir = workdir();
    let corpus = dir.join("corpus");
    let model = dir.join("model.typilus");

    // gen-corpus
    let out = bin()
        .args([
            "gen-corpus",
            "--out",
            corpus.to_str().unwrap(),
            "--files",
            "15",
            "--seed",
            "3",
        ])
        .output()
        .expect("gen-corpus runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // train (tiny settings for test speed)
    let out = bin()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--epochs",
            "2",
            "--dim",
            "8",
            "--gnn-steps",
            "2",
        ])
        .output()
        .expect("train runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists(), "model artefact written");

    // predict on a fresh file, with the checker filter
    let sample = dir.join("sample.py");
    std::fs::write(
        &sample,
        "def f(count):\n    total = count + 1\n    return total\n",
    )
    .expect("write sample");
    let out = bin()
        .args([
            "predict",
            "--model",
            model.to_str().unwrap(),
            "--top",
            "2",
            "--check",
            sample.to_str().unwrap(),
        ])
        .output()
        .expect("predict runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("count"),
        "predictions mention the parameter: {stdout}"
    );

    // eval
    let out = bin()
        .args([
            "eval",
            "--model",
            model.to_str().unwrap(),
            "--corpus",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("eval runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exact match"), "{stdout}");

    // audit
    let out = bin()
        .args([
            "audit",
            "--model",
            model.to_str().unwrap(),
            "--corpus",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("audit runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn missing_required_option_fails() {
    let out = bin()
        .args(["train", "--corpus", "/nonexistent"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--model"), "{stderr}");
}
