//! The end-to-end trainable model: an encoder (graph / sequence / path)
//! plus a loss head (classification / space / Typilus), as in the 3×3
//! grid of paper Table 2.

use crate::gnn::{Aggregation, GnnEncoder};
use crate::input::{count_labels, prepare, NodeInit, PrepareConfig, PreparedFile};
use crate::loss::{classification_loss, space_loss, typilus_loss};
use crate::path::PathEncoder;
use crate::seq::SeqEncoder;
use crate::transformer::TransformerEncoder;
use crate::vocab::{TypeVocab, Vocab};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use typilus_graph::ProgramGraph;
use typilus_nn::{Gradients, Linear, ParamSet, Tape, Tensor, Var, WorkerPool};
use typilus_types::PyType;

/// Which encoder family to use (paper Table 2 row groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncoderKind {
    /// GGNN over program graphs (`Graph*`).
    Graph,
    /// biGRU over token sequences (`Seq*` / DeepTyper).
    Seq,
    /// code2seq-style path model (`Path*`).
    Path,
    /// Small transformer over the token sequence (the paper's Sec. 6.1
    /// "Transformers" comparison point; not part of Table 2).
    Transformer,
}

/// Which training objective to use (paper Table 2 column groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossKind {
    /// Closed-vocabulary classification, Eq. 1 (`*2Class`).
    Class,
    /// Deep similarity learning, Eq. 3 (`*2Space`).
    Space,
    /// The combined loss, Eq. 4 (`*Typilus`).
    Typilus,
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Encoder family.
    pub encoder: EncoderKind,
    /// Training objective.
    pub loss: LossKind,
    /// Embedding / hidden width `D`.
    pub dim: usize,
    /// GNN message-passing steps `T` (paper: 8).
    pub gnn_steps: usize,
    /// Similarity-loss margin `m`.
    pub margin: f32,
    /// Classification weight `λ` in Eq. 4 (paper: 1).
    pub lambda: f32,
    /// Initial node state construction (Table 4 ablation).
    pub node_init: NodeInit,
    /// Message aggregation (paper: max).
    pub aggregation: Aggregation,
    /// Minimum occurrences for a subtoken to enter the vocabulary.
    pub min_subtoken_count: usize,
    /// Maximum vocabulary size.
    pub max_vocab: usize,
    /// Minimum annotation count for a type to get a classification slot.
    pub min_type_count: usize,
    /// RNG seed for parameter initialisation.
    pub seed: u64,
    /// Input preparation limits.
    pub prepare: PrepareConfig,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            encoder: EncoderKind::Graph,
            loss: LossKind::Typilus,
            dim: 32,
            gnn_steps: 8,
            margin: 2.0,
            lambda: 1.0,
            node_init: NodeInit::Subtoken,
            aggregation: Aggregation::Max,
            min_subtoken_count: 2,
            max_vocab: 10_000,
            min_type_count: 1,
            seed: 0,
            prepare: PrepareConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum EncoderImpl {
    Graph(Box<GnnEncoder>),
    Seq(Box<SeqEncoder>),
    Path(Box<PathEncoder>),
    Transformer(Box<TransformerEncoder>),
}

/// Per-file state carried from the parallel forward phase of a training
/// step to its parallel backward phase (which consumes it on the worker
/// that built it).
struct FileForward<'p> {
    tape: Tape<'p>,
    selected: Var,
    value: Tensor,
    types: Vec<PyType>,
}

/// A trainable type-prediction model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeModel {
    /// Hyperparameters the model was built with.
    pub config: ModelConfig,
    /// All trainable weights.
    pub params: ParamSet,
    encoder: EncoderImpl,
    /// Prototype head over the full type vocabulary (`*2Class`).
    class_head: Option<Linear>,
    /// Projection `W` + prototype head over erased types (Typilus, Eq. 4).
    typilus_head: Option<(Linear, Linear)>,
    subtoken_vocab: Vocab,
    token_vocab: Vocab,
    /// Closed vocabulary over full types (classification models).
    pub type_vocab: TypeVocab,
    /// Vocabulary over parameter-erased types (Typilus loss).
    pub erased_vocab: TypeVocab,
}

impl TypeModel {
    /// Builds a model, deriving vocabularies from the training graphs.
    pub fn new(config: ModelConfig, training_graphs: &[ProgramGraph]) -> TypeModel {
        let (sub_counts, tok_counts) = count_labels(training_graphs);
        let subtoken_vocab = Vocab::build(&sub_counts, config.min_subtoken_count, config.max_vocab);
        let token_vocab = Vocab::build(&tok_counts, config.min_subtoken_count, config.max_vocab);

        let annotations: Vec<PyType> = training_graphs
            .iter()
            .flat_map(|g| g.targets.iter())
            .filter_map(|t| crate::input::parse_ground_truth(t.annotation.as_deref()))
            .collect();
        let type_vocab = TypeVocab::build(annotations.iter(), config.min_type_count);
        let erased: Vec<PyType> = annotations.iter().map(PyType::erased).collect();
        let erased_vocab = TypeVocab::build(erased.iter(), config.min_type_count);

        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let encoder = match config.encoder {
            EncoderKind::Graph => EncoderImpl::Graph(Box::new(GnnEncoder::new(
                &mut params,
                subtoken_vocab.len(),
                token_vocab.len(),
                config.dim,
                config.gnn_steps,
                config.node_init,
                config.aggregation,
                &mut rng,
            ))),
            EncoderKind::Seq => EncoderImpl::Seq(Box::new(SeqEncoder::new(
                &mut params,
                subtoken_vocab.len(),
                config.dim,
                &mut rng,
            ))),
            EncoderKind::Path => EncoderImpl::Path(Box::new(PathEncoder::new(
                &mut params,
                subtoken_vocab.len() + token_vocab.len(),
                config.dim,
                &mut rng,
            ))),
            EncoderKind::Transformer => {
                EncoderImpl::Transformer(Box::new(TransformerEncoder::new(
                    &mut params,
                    subtoken_vocab.len(),
                    config.dim,
                    2,
                    config.prepare.max_seq_len,
                    &mut rng,
                )))
            }
        };
        let class_head = match config.loss {
            LossKind::Class => Some(Linear::new(
                &mut params,
                "head.class",
                config.dim,
                type_vocab.len(),
                &mut rng,
            )),
            _ => None,
        };
        let typilus_head = match config.loss {
            LossKind::Typilus => {
                let proj =
                    Linear::new_no_bias(&mut params, "head.proj", config.dim, config.dim, &mut rng);
                let protos = Linear::new(
                    &mut params,
                    "head.erased",
                    config.dim,
                    erased_vocab.len(),
                    &mut rng,
                );
                Some((proj, protos))
            }
            _ => None,
        };
        TypeModel {
            config,
            params,
            encoder,
            class_head,
            typilus_head,
            subtoken_vocab,
            token_vocab,
            type_vocab,
            erased_vocab,
        }
    }

    /// Prepares a graph with this model's vocabularies.
    pub fn prepare(&self, graph: &ProgramGraph) -> PreparedFile {
        prepare(
            graph,
            &self.subtoken_vocab,
            &self.token_vocab,
            &self.config.prepare,
        )
    }

    /// [`TypeModel::prepare`] over many graphs on the worker pool;
    /// results keep input order.
    pub fn prepare_batch(&self, graphs: &[ProgramGraph], pool: &WorkerPool) -> Vec<PreparedFile> {
        pool.map_ordered(graphs, |_, g| self.prepare(g))
    }

    /// Encodes one prepared file to target embeddings `[targets, D]`.
    /// Returns `None` when the file has no targets (or no tokens, for the
    /// sequence model).
    pub fn embed(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Option<Var> {
        if file.targets.is_empty() {
            return None;
        }
        Some(match &self.encoder {
            EncoderImpl::Graph(e) => e.encode(tape, file),
            EncoderImpl::Seq(e) => {
                if file.token_seq.is_empty() {
                    return None;
                }
                e.encode(tape, file)
            }
            EncoderImpl::Path(e) => e.encode(tape, file),
            EncoderImpl::Transformer(e) => {
                if file.token_seq.is_empty() {
                    return None;
                }
                e.encode(tape, file)
            }
        })
    }

    /// Computes the training loss for a batch of embeddings whose rows
    /// align with `types` (the ground-truth types of the batch).
    ///
    /// # Panics
    ///
    /// Panics if `types.len()` differs from the embedding rows.
    pub fn loss(&self, tape: &mut Tape<'_>, embeddings: Var, types: &[PyType]) -> Var {
        assert_eq!(
            tape.value(embeddings).rows(),
            types.len(),
            "one type per row"
        );
        match self.config.loss {
            LossKind::Class => {
                let labels: Vec<usize> = types.iter().map(|t| self.type_vocab.id(t)).collect();
                let head = self.class_head.as_ref().expect("class head exists");
                let logits = head.apply(tape, embeddings);
                classification_loss(tape, logits, &labels)
            }
            LossKind::Space => {
                let ids = type_identity_ids(types);
                space_loss(tape, embeddings, &ids, self.config.margin)
            }
            LossKind::Typilus => {
                let ids = type_identity_ids(types);
                let labels: Vec<usize> = types
                    .iter()
                    .map(|t| self.erased_vocab.id(&t.erased()))
                    .collect();
                let (proj, protos) = self.typilus_head.as_ref().expect("typilus head exists");
                let projected = proj.apply(tape, embeddings);
                let logits = protos.apply(tape, projected);
                typilus_loss(
                    tape,
                    embeddings,
                    &ids,
                    self.config.margin,
                    logits,
                    &labels,
                    self.config.lambda,
                )
            }
        }
    }

    /// One training step over a batch of prepared files: encodes every
    /// file, concatenates annotated targets, computes the loss and
    /// returns `(loss value, gradients)`. Returns `None` if the batch has
    /// no annotated targets.
    pub fn train_step(&self, batch: &[&PreparedFile]) -> Option<(f32, Gradients)> {
        let mut tape = Tape::new(&self.params);
        let mut parts: Vec<Var> = Vec::new();
        let mut types: Vec<PyType> = Vec::new();
        for file in batch {
            let Some(emb) = self.embed(&mut tape, file) else {
                continue;
            };
            // Select only annotated targets.
            let mut keep = Vec::new();
            for (i, t) in file.targets.iter().enumerate() {
                if let Some(ty) = &t.ty {
                    keep.push(i);
                    types.push(ty.clone());
                }
            }
            if keep.is_empty() {
                continue;
            }
            let selected = tape.gather(emb, &keep);
            parts.push(selected);
        }
        if types.is_empty() {
            return None;
        }
        let embeddings = tape.concat_rows(&parts);
        let loss = self.loss(&mut tape, embeddings, &types);
        let value = tape.value(loss).item();
        let grads = tape.backward(loss);
        Some((value, grads))
    }

    /// Data-parallel [`TypeModel::train_step`]: per-file forward and
    /// backward passes fan across the worker pool while the batch-level
    /// loss (whose pairwise term couples files) stays on one sequential
    /// tape.
    ///
    /// Three phases:
    ///
    /// 1. **Forward (parallel)** — each file is encoded on its own tape,
    ///    keeping only annotated targets.
    /// 2. **Loss (sequential)** — the per-file embedding values enter a
    ///    fresh tape as inputs, are concatenated, and the batch loss is
    ///    computed exactly as in `train_step`;
    ///    [`Tape::backward_with_inputs`] yields the loss-head gradients
    ///    plus d loss / d embedding per file.
    /// 3. **Backward (parallel)** — each file's forward tape is re-walked
    ///    from its embedding via [`Tape::backward_from`]. The job list is
    ///    index-aligned with the batch, so the pool's striding sends each
    ///    file back to the worker that ran its forward pass, and the tape
    ///    is consumed there — its buffers retire into the arena of the
    ///    thread that allocated them, keeping worker arenas warm across
    ///    steps.
    ///
    /// Per-file gradients merge in file-index order, so the result is
    /// bit-identical for every pool size (the loss *value* equals
    /// `train_step`'s; gradients may differ from `train_step` only in
    /// float-accumulation order).
    pub fn train_step_parallel(
        &self,
        batch: &[&PreparedFile],
        pool: &WorkerPool,
    ) -> Option<(f32, Gradients)> {
        // Phase 1: independent per-file forward passes. The result stays
        // index-aligned with `batch` (files without annotated targets
        // keep a `None` slot) so phase 3 hits the same worker stripes.
        let forwards: Vec<Option<FileForward<'_>>> =
            pool.map_ordered(batch, |_, file| self.file_forward(file));
        if forwards.iter().all(Option::is_none) {
            return None;
        }

        // Phase 2: one sequential tape for the batch-coupled loss.
        let mut loss_tape = Tape::new(&self.params);
        let mut parts = Vec::new();
        let mut types = Vec::new();
        for fw in forwards.iter().flatten() {
            parts.push(loss_tape.input(fw.value.clone()));
            types.extend(fw.types.iter().cloned());
        }
        let embeddings = loss_tape.concat_rows(&parts);
        let loss = self.loss(&mut loss_tape, embeddings, &types);
        let value = loss_tape.value(loss).item();
        let (mut grads, seeds) = loss_tape.backward_with_inputs(loss, &parts);

        // Phase 3: per-file backward passes, seeded with d loss / d emb.
        // Jobs own their forward state; the closure consumes it, so each
        // tape (and seed) is dropped on the worker whose arena backs it.
        let mut seeds = seeds.into_iter();
        let mut jobs: Vec<Option<(FileForward<'_>, Tensor)>> = forwards
            .into_iter()
            .map(|fw| fw.map(|fw| (fw, seeds.next().expect("one seed per forward"))))
            .collect();
        let per_file: Vec<Option<Gradients>> = pool.map_ordered_mut(&mut jobs, |_, job| {
            job.take().map(|(fw, seed)| {
                let FileForward {
                    tape,
                    selected,
                    value,
                    types: _,
                } = fw;
                let grads = tape.backward_from(selected, seed);
                // The value snapshot's buffer balances the seed that
                // just migrated here from the caller: retire it through
                // the shared pool so the caller's next-step loss-tape
                // seeds can find a same-sized buffer (keeping worker
                // and caller arenas flat instead of a one-way drift).
                typilus_nn::recycle_shared(value);
                grads
            })
        });
        // Fixed (file-index) merge order keeps float accumulation
        // deterministic across thread counts.
        for g in per_file.into_iter().flatten() {
            grads.merge(g);
        }
        Some((value, grads))
    }

    /// The spawn-per-call predecessor of [`TypeModel::train_step_parallel`]:
    /// the same three phases fanned over fresh scoped threads via
    /// [`typilus_nn::par_map_ordered`]. Retained as the reference
    /// implementation the pooled path is benchmarked (`bench_pool`) and
    /// regression-tested against; results are bit-identical to the
    /// pooled path at every thread count.
    pub fn train_step_spawning(
        &self,
        batch: &[&PreparedFile],
        threads: usize,
    ) -> Option<(f32, Gradients)> {
        // Phase 1: independent per-file forward passes.
        let forwards: Vec<Option<FileForward<'_>>> =
            typilus_nn::par_map_ordered(batch, threads, |_, file| self.file_forward(file));
        let forwards: Vec<FileForward<'_>> = forwards.into_iter().flatten().collect();
        if forwards.is_empty() {
            return None;
        }

        // Phase 2: one sequential tape for the batch-coupled loss.
        let mut loss_tape = Tape::new(&self.params);
        let mut parts = Vec::with_capacity(forwards.len());
        let mut types = Vec::new();
        for fw in &forwards {
            parts.push(loss_tape.input(fw.value.clone()));
            types.extend(fw.types.iter().cloned());
        }
        let embeddings = loss_tape.concat_rows(&parts);
        let loss = self.loss(&mut loss_tape, embeddings, &types);
        let value = loss_tape.value(loss).item();
        let (mut grads, seeds) = loss_tape.backward_with_inputs(loss, &parts);

        // Phase 3: per-file backward passes, seeded with d loss / d emb.
        let jobs: Vec<(&FileForward<'_>, Tensor)> = forwards.iter().zip(seeds).collect();
        let per_file: Vec<Gradients> =
            typilus_nn::par_map_ordered(&jobs, threads, |_, (fw, seed)| {
                fw.tape.backward_from(fw.selected, seed.clone())
            });
        // Fixed (file-index) merge order keeps float accumulation
        // deterministic across thread counts.
        for g in per_file {
            grads.merge(g);
        }
        Some((value, grads))
    }

    /// Phase-1 forward pass for one file: encode, keep annotated
    /// targets, snapshot the selected-embedding value for the loss tape.
    fn file_forward(&self, file: &PreparedFile) -> Option<FileForward<'_>> {
        let mut tape = Tape::new(&self.params);
        let emb = self.embed(&mut tape, file)?;
        let mut keep = Vec::new();
        let mut types = Vec::new();
        for (i, t) in file.targets.iter().enumerate() {
            if let Some(ty) = &t.ty {
                keep.push(i);
                types.push(ty.clone());
            }
        }
        if keep.is_empty() {
            return None;
        }
        let selected = tape.gather(emb, &keep);
        let value = tape.value(selected).clone();
        Some(FileForward {
            tape,
            selected,
            value,
            types,
        })
    }

    /// Inference: embeds every target of a file (annotated or not) and
    /// returns the raw embedding matrix, or `None` without targets.
    pub fn embed_inference(&self, file: &PreparedFile) -> Option<Tensor> {
        let mut tape = Tape::new(&self.params);
        let emb = self.embed(&mut tape, file)?;
        Some(tape.value(emb).clone())
    }

    /// [`TypeModel::embed_inference`] over many files on the worker
    /// pool; results keep input order.
    pub fn embed_inference_batch(
        &self,
        files: &[&PreparedFile],
        pool: &WorkerPool,
    ) -> Vec<Option<Tensor>> {
        pool.map_ordered(files, |_, file| self.embed_inference(file))
    }

    /// Classification-head prediction for a file: per target, the best
    /// non-UNK class and its probability. Returns `None` when the
    /// model has no classification head (non-[`LossKind::Class`]
    /// models) or when the file embeds to nothing.
    pub fn predict_class(&self, file: &PreparedFile) -> Option<Vec<(PyType, f32)>> {
        let head = self.class_head.as_ref()?;
        let mut tape = Tape::new(&self.params);
        let emb = self.embed(&mut tape, file)?;
        let logits = head.apply(&mut tape, emb);
        let logp = tape.log_softmax(logits);
        let v = tape.value(logp);
        let mut out = Vec::with_capacity(v.rows());
        for r in 0..v.rows() {
            // Best non-UNK class (UNK is not a predictable type).
            let (best, best_lp) = v
                .row(r)
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &lp)| (i, lp))
                .fold((0usize, f32::NEG_INFINITY), |acc, cur| {
                    if cur.1 > acc.1 {
                        cur
                    } else {
                        acc
                    }
                });
            out.push((self.type_vocab.ty(best).clone(), best_lp.exp()));
        }
        Some(out)
    }

    /// The subtoken vocabulary (shared with corpora statistics tools).
    pub fn subtoken_vocab(&self) -> &Vocab {
        &self.subtoken_vocab
    }

    /// The whole-label vocabulary.
    pub fn token_vocab(&self) -> &Vocab {
        &self.token_vocab
    }
}

/// Assigns a stable 64-bit identity per distinct type string, for the
/// pairwise similarity loss.
fn type_identity_ids(types: &[PyType]) -> Vec<u64> {
    let mut next = 0u64;
    let mut map: HashMap<String, u64> = HashMap::new();
    types
        .iter()
        .map(|t| {
            *map.entry(t.to_string()).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_graph::{build_graph, GraphConfig};
    use typilus_nn::Adam;
    use typilus_pyast::{parse, SymbolTable};

    fn graphs(sources: &[&str]) -> Vec<ProgramGraph> {
        sources
            .iter()
            .enumerate()
            .map(|(i, src)| {
                let parsed = parse(src).unwrap();
                let table = SymbolTable::build(&parsed.module);
                build_graph(
                    &parsed,
                    &table,
                    &GraphConfig::default(),
                    &format!("f{i}.py"),
                )
            })
            .collect()
    }

    const TRAIN: &[&str] = &[
        "def f(count: int) -> int:\n    return count + 1\n",
        "def g(name: str) -> str:\n    return name\n",
        "def h(num_items: int, label: str) -> int:\n    return num_items\n",
        "def k(title: str) -> str:\n    other = title\n    return other\n",
    ];

    fn small_config(encoder: EncoderKind, loss: LossKind) -> ModelConfig {
        ModelConfig {
            encoder,
            loss,
            dim: 16,
            gnn_steps: 3,
            min_subtoken_count: 1,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn all_nine_variants_build_and_step() {
        let gs = graphs(TRAIN);
        for encoder in [EncoderKind::Graph, EncoderKind::Seq, EncoderKind::Path] {
            for loss in [LossKind::Class, LossKind::Space, LossKind::Typilus] {
                let model = TypeModel::new(small_config(encoder, loss), &gs);
                let prepared: Vec<_> = gs.iter().map(|g| model.prepare(g)).collect();
                let batch: Vec<&PreparedFile> = prepared.iter().collect();
                let (loss_val, grads) = model
                    .train_step(&batch)
                    .expect("batch has annotated targets");
                assert!(
                    loss_val.is_finite(),
                    "{encoder:?}/{loss:?} loss = {loss_val}"
                );
                assert!(grads.global_norm().is_finite());
            }
        }
    }

    /// The pooled parallel step must return the exact `train_step` loss
    /// value, and bit-identical gradients for every pool size — and
    /// agree bit-for-bit with the spawn-per-call predecessor it
    /// replaced.
    #[test]
    fn parallel_step_is_thread_count_invariant() {
        let gs = graphs(TRAIN);
        for loss in [LossKind::Class, LossKind::Space, LossKind::Typilus] {
            let model = TypeModel::new(small_config(EncoderKind::Graph, loss), &gs);
            let prepared: Vec<_> = gs.iter().map(|g| model.prepare(g)).collect();
            let batch: Vec<&PreparedFile> = prepared.iter().collect();
            let (seq_loss, _) = model.train_step(&batch).unwrap();
            let (one_loss, one_grads) = model
                .train_step_parallel(&batch, &WorkerPool::new(1))
                .unwrap();
            assert_eq!(
                seq_loss.to_bits(),
                one_loss.to_bits(),
                "{loss:?}: parallel loss must equal the sequential loss"
            );
            let check = |n_loss: f32, n_grads: &Gradients, what: &str| {
                assert_eq!(one_loss.to_bits(), n_loss.to_bits(), "{loss:?}: {what}");
                let pairs: Vec<_> = one_grads.iter().zip(n_grads.iter()).collect();
                assert!(!pairs.is_empty());
                for ((id_a, ga), (id_b, gb)) in pairs {
                    assert_eq!(id_a, id_b);
                    assert_eq!(ga.shape(), gb.shape());
                    for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{loss:?}: gradient differs: {what}"
                        );
                    }
                }
            };
            for threads in [2, 3, 8] {
                let pool = WorkerPool::new(threads);
                let (n_loss, n_grads) = model.train_step_parallel(&batch, &pool).unwrap();
                check(n_loss, &n_grads, &format!("pool of {threads}"));
                let (s_loss, s_grads) = model.train_step_spawning(&batch, threads).unwrap();
                check(s_loss, &s_grads, &format!("spawning {threads} threads"));
            }
        }
    }

    #[test]
    fn parallel_step_trains_as_well_as_sequential() {
        let gs = graphs(TRAIN);
        let mut model = TypeModel::new(small_config(EncoderKind::Graph, LossKind::Typilus), &gs);
        let prepared: Vec<_> = gs.iter().map(|g| model.prepare(g)).collect();
        let batch: Vec<&PreparedFile> = prepared.iter().collect();
        let pool = WorkerPool::new(2);
        let mut adam = Adam::new(0.01);
        let (first, _) = model.train_step_parallel(&batch, &pool).unwrap();
        for _ in 0..15 {
            let (_, grads) = model.train_step_parallel(&batch, &pool).unwrap();
            adam.step(&mut model.params, grads);
        }
        let (last, _) = model.train_step_parallel(&batch, &pool).unwrap();
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn batched_inference_matches_one_by_one() {
        let gs = graphs(TRAIN);
        let model = TypeModel::new(small_config(EncoderKind::Graph, LossKind::Typilus), &gs);
        let prepared: Vec<_> = gs.iter().map(|g| model.prepare(g)).collect();
        let refs: Vec<&PreparedFile> = prepared.iter().collect();
        let batched = model.embed_inference_batch(&refs, &WorkerPool::new(3));
        for (file, b) in prepared.iter().zip(batched) {
            let single = model.embed_inference(file).unwrap();
            let b = b.unwrap();
            assert_eq!(single.shape(), b.shape());
            for (x, y) in single.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn prepare_batch_matches_per_graph() {
        let gs = graphs(TRAIN);
        let model = TypeModel::new(small_config(EncoderKind::Graph, LossKind::Typilus), &gs);
        let pooled = model.prepare_batch(&gs, &WorkerPool::new(3));
        assert_eq!(pooled.len(), gs.len());
        for (g, p) in gs.iter().zip(&pooled) {
            let single = model.prepare(g);
            assert_eq!(single.targets.len(), p.targets.len());
            assert_eq!(single.token_seq, p.token_seq);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let gs = graphs(TRAIN);
        let mut model = TypeModel::new(small_config(EncoderKind::Graph, LossKind::Typilus), &gs);
        let prepared: Vec<_> = gs.iter().map(|g| model.prepare(g)).collect();
        let batch: Vec<&PreparedFile> = prepared.iter().collect();
        let mut adam = Adam::new(0.01);
        let (first, _) = model.train_step(&batch).unwrap();
        for _ in 0..15 {
            let (_, grads) = model.train_step(&batch).unwrap();
            adam.step(&mut model.params, grads);
        }
        let (last, _) = model.train_step(&batch).unwrap();
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn class_model_predicts_known_types() {
        let gs = graphs(TRAIN);
        let mut model = TypeModel::new(small_config(EncoderKind::Graph, LossKind::Class), &gs);
        let prepared: Vec<_> = gs.iter().map(|g| model.prepare(g)).collect();
        let batch: Vec<&PreparedFile> = prepared.iter().collect();
        let mut adam = Adam::new(0.02);
        for _ in 0..40 {
            let (_, grads) = model.train_step(&batch).unwrap();
            adam.step(&mut model.params, grads);
        }
        let preds = model.predict_class(&prepared[0]).unwrap();
        let count_idx = prepared[0]
            .targets
            .iter()
            .position(|t| t.name == "count")
            .unwrap();
        assert_eq!(preds[count_idx].0.to_string(), "int");
    }

    #[test]
    fn embeddings_cluster_by_type_after_training() {
        let gs = graphs(TRAIN);
        let mut model = TypeModel::new(small_config(EncoderKind::Graph, LossKind::Typilus), &gs);
        let prepared: Vec<_> = gs.iter().map(|g| model.prepare(g)).collect();
        let batch: Vec<&PreparedFile> = prepared.iter().collect();
        let mut adam = Adam::new(0.02);
        for _ in 0..60 {
            let (_, grads) = model.train_step(&batch).unwrap();
            adam.step(&mut model.params, grads);
        }
        // Collect embeddings with ground truth.
        let mut by_type: HashMap<String, Vec<Vec<f32>>> = HashMap::new();
        for file in &prepared {
            let emb = model.embed_inference(file).unwrap();
            for (i, t) in file.targets.iter().enumerate() {
                if let Some(ty) = &t.ty {
                    by_type
                        .entry(ty.to_string())
                        .or_default()
                        .push(emb.row(i).to_vec());
                }
            }
        }
        let ints = &by_type["int"];
        let strs = &by_type["str"];
        let d_within = Tensor::l1_row_distance(&ints[0], &ints[1]);
        let d_across = Tensor::l1_row_distance(&ints[0], &strs[0]);
        assert!(
            d_within < d_across,
            "within-type distance {d_within} should be below across-type {d_across}"
        );
    }

    #[test]
    fn serde_round_trip_of_model_shape() {
        let gs = graphs(TRAIN);
        let model = TypeModel::new(small_config(EncoderKind::Graph, LossKind::Typilus), &gs);
        // Exercise (de)serialisation through serde's derive using the
        // compact bincode-like format via serde's test-friendly path:
        // Clone + compare parameter count is sufficient shape evidence.
        let copy = model.clone();
        assert_eq!(copy.params.scalar_count(), model.params.scalar_count());
        assert_eq!(copy.type_vocab.len(), model.type_vocab.len());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::model::tests_support::graphs_for_tests;

    #[test]
    fn every_encoder_kind_round_trips_through_serbin() {
        let gs = graphs_for_tests();
        for encoder in [
            EncoderKind::Graph,
            EncoderKind::Seq,
            EncoderKind::Path,
            EncoderKind::Transformer,
        ] {
            let config = ModelConfig {
                encoder,
                loss: LossKind::Typilus,
                dim: 8,
                gnn_steps: 2,
                min_subtoken_count: 1,
                ..ModelConfig::default()
            };
            let model = TypeModel::new(config, &gs);
            let bytes = typilus_serbin::to_bytes(&model).expect("serialises");
            let back: TypeModel = typilus_serbin::from_bytes(&bytes).expect("deserialises");
            assert_eq!(back.params.scalar_count(), model.params.scalar_count());
            // Restored weights produce identical embeddings.
            let prepared = model.prepare(&gs[0]);
            let a = model.embed_inference(&prepared).expect("targets exist");
            let b = back.embed_inference(&prepared).expect("targets exist");
            assert_eq!(a, b, "{encoder:?} embeddings must survive persistence");
        }
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use typilus_graph::{build_graph, GraphConfig, ProgramGraph};
    use typilus_pyast::{parse, SymbolTable};

    /// A small shared fixture corpus for model tests.
    pub(crate) fn graphs_for_tests() -> Vec<ProgramGraph> {
        [
            "def f(count: int) -> int:\n    return count + 1\n",
            "def g(name: str) -> str:\n    return name\n",
        ]
        .iter()
        .enumerate()
        .map(|(i, src)| {
            let parsed = parse(src).unwrap();
            let table = SymbolTable::build(&parsed.module);
            build_graph(
                &parsed,
                &table,
                &GraphConfig::default(),
                &format!("f{i}.py"),
            )
        })
        .collect()
    }
}
