//! Training objectives: the classification loss (Eq. 1), the batched
//! similarity "space" loss (Eq. 3, Fig. 2) and the combined Typilus loss
//! (Eq. 4).

use typilus_nn::{Tape, Tensor, Var};

/// The classification loss `L_Class` (Eq. 1): softmax cross-entropy of
/// type-class logits against ground-truth class ids.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the logits' row count.
pub fn classification_loss(tape: &mut Tape<'_>, logits: Var, labels: &[usize]) -> Var {
    let logp = tape.log_softmax(logits);
    tape.nll_loss(logp, labels)
}

/// The similarity loss `L_Space` (Eq. 3) over a minibatch of type
/// embeddings.
///
/// For each sample `s`, let `d⁺max` be the largest distance to a
/// same-type sample and `d⁻min` the smallest distance to a
/// differently-typed sample. Same-type samples further than
/// `d⁻min − m` are pulled in (`P⁺`), differently-typed samples closer
/// than `d⁺max + m` are pushed out (`P⁻`); the loss is the mean pulled
/// distance minus the mean pushed distance (Fig. 2). Samples without a
/// positive or negative partner in the batch contribute nothing.
///
/// `type_ids` assigns an arbitrary-but-consistent id per distinct type;
/// `margin` is the paper's `m`.
///
/// # Panics
///
/// Panics if `type_ids.len()` differs from the embedding row count.
pub fn space_loss(tape: &mut Tape<'_>, embeddings: Var, type_ids: &[u64], margin: f32) -> Var {
    let n = tape.value(embeddings).rows();
    assert_eq!(type_ids.len(), n, "one type id per embedding row required");
    let distances = tape.pairwise_l1(embeddings);
    let d = tape.value(distances).clone();

    // Build the P+/P- selection masks from the *current* distances; the
    // masks are constants for this step, gradients flow through the
    // selected distances only (standard practice for mined triplet-style
    // objectives).
    let mut pos_weights = Tensor::zeros(n, n);
    let mut neg_weights = Tensor::zeros(n, n);
    let mut active_samples = 0usize;
    for s in 0..n {
        let mut d_pos_max = f32::NEG_INFINITY;
        let mut d_neg_min = f32::INFINITY;
        for i in 0..n {
            if i == s {
                continue;
            }
            if type_ids[i] == type_ids[s] {
                d_pos_max = d_pos_max.max(d.get(s, i));
            } else {
                d_neg_min = d_neg_min.min(d.get(s, i));
            }
        }
        if !d_pos_max.is_finite() || !d_neg_min.is_finite() {
            continue; // no positive or no negative partner in this batch
        }
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for i in 0..n {
            if i == s {
                continue;
            }
            if type_ids[i] == type_ids[s] {
                if d.get(s, i) > d_neg_min - margin {
                    pos.push(i);
                }
            } else if d.get(s, i) < d_pos_max + margin {
                neg.push(i);
            }
        }
        if pos.is_empty() && neg.is_empty() {
            continue;
        }
        active_samples += 1;
        if !pos.is_empty() {
            let w = 1.0 / pos.len() as f32;
            for i in pos {
                pos_weights.set(s, i, w);
            }
        }
        if !neg.is_empty() {
            let w = 1.0 / neg.len() as f32;
            for i in neg {
                neg_weights.set(s, i, w);
            }
        }
    }

    if active_samples == 0 {
        return tape.input(Tensor::scalar(0.0));
    }
    let scale = 1.0 / active_samples as f32;
    let pulled = tape.mul_const(distances, &pos_weights);
    let pulled = tape.sum_all(pulled);
    let pushed = tape.mul_const(distances, &neg_weights);
    let pushed = tape.sum_all(pushed);
    let diff = tape.sub(pulled, pushed);
    tape.scale(diff, scale)
}

/// The combined Typilus loss (Eq. 4):
/// `L_Typilus = L_Space(r) + λ · L_Class(W·r, Er(τ))`, where the
/// classification term sees a linear projection of the embeddings and the
/// *type-parameter-erased* labels.
///
/// The caller provides the already-projected logits (`W·r` through the
/// prototype layer) and the erased-type class labels.
pub fn typilus_loss(
    tape: &mut Tape<'_>,
    embeddings: Var,
    type_ids: &[u64],
    margin: f32,
    erased_logits: Var,
    erased_labels: &[usize],
    lambda: f32,
) -> Var {
    let space = space_loss(tape, embeddings, type_ids, margin);
    let class = classification_loss(tape, erased_logits, erased_labels);
    let class_scaled = tape.scale(class, lambda);
    tape.add(space, class_scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_nn::{Adam, ParamSet, Tensor};

    #[test]
    fn classification_loss_decreases_under_training() {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::zeros(4, 3));
        let x = Tensor::from_vec(2, 4, vec![1.0, 0.0, 0.5, -0.5, -1.0, 0.3, 0.0, 0.8]);
        let labels = [0usize, 2];
        let mut adam = Adam::new(0.05);
        let mut losses = Vec::new();
        for _ in 0..60 {
            let (loss_val, grads) = {
                let mut tape = Tape::new(&params);
                let xin = tape.input(x.clone());
                let wv = tape.param(w);
                let logits = tape.matmul(xin, wv);
                let loss = classification_loss(&mut tape, logits, &labels);
                (tape.value(loss).item(), tape.backward(loss))
            };
            losses.push(loss_val);
            adam.step(&mut params, grads);
        }
        assert!(losses.last().unwrap() < &0.1, "final loss {losses:?}");
    }

    #[test]
    fn space_loss_pulls_same_types_together() {
        let mut params = ParamSet::new();
        // Four embeddings: two of type 0, two of type 1, interleaved.
        let e = params.add(
            "e",
            Tensor::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 0.1, 0.1, 0.9, 0.9]),
        );
        let type_ids = [0u64, 1, 0, 1];
        let mut adam = Adam::new(0.05);
        for _ in 0..100 {
            let grads = {
                let mut tape = Tape::new(&params);
                let ev = tape.param(e);
                let loss = space_loss(&mut tape, ev, &type_ids, 0.5);
                tape.backward(loss)
            };
            adam.step(&mut params, grads);
        }
        let t = params.get(e);
        let same = Tensor::l1_row_distance(t.row(0), t.row(2));
        let diff = Tensor::l1_row_distance(t.row(0), t.row(1));
        assert!(
            same + 0.4 < diff,
            "same-type distance {same} should be clearly below different-type {diff}"
        );
    }

    #[test]
    fn space_loss_zero_without_partners() {
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        // All types distinct and all types identical -> defined but the
        // all-distinct case has no positives: still forms P- sets? No:
        // a sample needs both a positive and negative distance to define
        // the margins, so singleton types contribute nothing.
        let e = tape.input(Tensor::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]));
        let loss = space_loss(&mut tape, e, &[0, 1], 0.5);
        assert_eq!(tape.value(loss).item(), 0.0);
    }

    #[test]
    fn typilus_loss_combines_both_terms() {
        let mut params = ParamSet::new();
        let e = params.add(
            "e",
            Tensor::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 0.2, 0.0, 0.8, 1.0]),
        );
        let w = params.add("w", Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let type_ids = [0u64, 1, 0, 1];
        let labels = [0usize, 1, 0, 1];
        let mut tape = Tape::new(&params);
        let ev = tape.param(e);
        let wv = tape.param(w);
        let logits = tape.matmul(ev, wv);
        let combined = typilus_loss(&mut tape, ev, &type_ids, 0.5, logits, &labels, 1.0);
        let space_only = space_loss(&mut tape, ev, &type_ids, 0.5);
        let class_only = classification_loss(&mut tape, logits, &labels);
        let sum = tape.value(space_only).item() + tape.value(class_only).item();
        assert!((tape.value(combined).item() - sum).abs() < 1e-5);
    }

    #[test]
    fn space_loss_respects_margin() {
        // Well-separated clusters far beyond the margin: P+ and P- empty,
        // loss 0.
        let params = ParamSet::new();
        let mut tape = Tape::new(&params);
        let e = tape.input(Tensor::from_vec(4, 1, vec![0.0, 0.01, 100.0, 100.01]));
        let loss = space_loss(&mut tape, e, &[0, 0, 1, 1], 0.5);
        assert_eq!(tape.value(loss).item(), 0.0);
    }
}
