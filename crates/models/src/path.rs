//! The code2seq-style path baseline (paper Sec. 6.1, "Path*" rows).
//!
//! Each target symbol is represented by a self-weighted average of
//! encoded leaf-to-leaf AST paths that touch the symbol's tokens,
//! following the paper's adaptation of code2seq (Alon et al.) to single-
//! vector prediction via the attention-style pooling of Gilmer et al.
//! Predictions are independent per symbol, which the paper credits for
//! the Path models' slightly weaker results.

use crate::input::{LeafPath, PreparedFile};
use serde::{Deserialize, Serialize};
use typilus_nn::{Embedding, Linear, ParamId, ParamSet, Tape, Tensor, Var};

/// The path-based encoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathEncoder {
    element_embedding: Embedding,
    path_proj: Linear,
    attention: ParamId,
    /// Output width `D`.
    pub dim: usize,
}

impl PathEncoder {
    /// Creates the encoder. Path elements (endpoint subtokens and interior
    /// non-terminal labels) share one embedding table indexed by the
    /// combined id space of [`LeafPath`] (`subtoken_vocab.len() +
    /// token_vocab.len()` entries).
    pub fn new<R: rand::Rng>(
        params: &mut ParamSet,
        combined_vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> PathEncoder {
        let element_embedding = Embedding::new(params, "path.elem", combined_vocab, dim, rng);
        let path_proj = Linear::new(params, "path.proj", dim, dim, rng);
        let attention = params.add("path.attn", Tensor::glorot(dim, 1, rng));
        PathEncoder {
            element_embedding,
            path_proj,
            attention,
            dim,
        }
    }

    /// Encodes one path into a `[1, D]` vector.
    fn encode_path(&self, tape: &mut Tape<'_>, path: &LeafPath) -> Var {
        let groups = vec![0usize; path.element_ids.len()];
        let mean = self
            .element_embedding
            .lookup_mean(tape, &path.element_ids, &groups, 1);
        let proj = self.path_proj.apply(tape, mean);
        tape.tanh(proj)
    }

    /// Type embedding of one target from its paths, `[1, D]`.
    fn encode_target(&self, tape: &mut Tape<'_>, paths: &[LeafPath]) -> Var {
        if paths.is_empty() {
            return tape.input(Tensor::zeros(1, self.dim));
        }
        let vecs: Vec<Var> = paths.iter().map(|p| self.encode_path(tape, p)).collect();
        let stacked = tape.concat_rows(&vecs); // [P, D]
                                               // Self-weighted average: α = softmax(stacked · w).
        let w = tape.param(self.attention);
        let scores = tape.matmul(stacked, w); // [P, 1]
        let scores_row = tape.transpose(scores); // [1, P]
        let log_alpha = tape.log_softmax(scores_row);
        let alpha = tape.exp(log_alpha); // [1, P]
        tape.matmul(alpha, stacked) // [1, D]
    }

    /// Type embeddings of all targets, `[targets, D]`.
    ///
    /// # Panics
    ///
    /// Panics if the file has no targets.
    pub fn encode(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        assert!(
            !file.targets.is_empty(),
            "encode requires at least one target"
        );
        let rows: Vec<Var> = file
            .target_paths
            .iter()
            .map(|paths| self.encode_target(tape, paths))
            .collect();
        tape.concat_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{count_labels, prepare, PrepareConfig, PreparedFile};
    use crate::vocab::Vocab;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use typilus_graph::{build_graph, GraphConfig};
    use typilus_pyast::{parse, SymbolTable};

    fn prepared(src: &str) -> (PreparedFile, usize) {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let graph = build_graph(&parsed, &table, &GraphConfig::default(), "t.py");
        let (sub, tok) = count_labels(std::slice::from_ref(&graph));
        let sv = Vocab::build(&sub, 1, 1000);
        let tv = Vocab::build(&tok, 1, 1000);
        let combined = sv.len() + tv.len();
        (
            prepare(&graph, &sv, &tv, &PrepareConfig::default()),
            combined,
        )
    }

    #[test]
    fn encode_shapes() {
        let (file, vocab) = prepared("def f(count, items):\n    return count + len(items)\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = PathEncoder::new(&mut params, vocab, 12, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        assert_eq!(tape.value(emb).shape(), (file.targets.len(), 12));
    }

    #[test]
    fn attention_weights_sum_to_one() {
        let (file, vocab) = prepared("x = a + b\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = PathEncoder::new(&mut params, vocab, 8, &mut rng);
        let x_idx = file.targets.iter().position(|t| t.name == "x").unwrap();
        assert!(!file.target_paths[x_idx].is_empty());
        // The encoded embedding must lie in the convex hull of path
        // vectors, so its max-abs is bounded by 1 (tanh outputs).
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        assert!(tape
            .value(emb)
            .as_slice()
            .iter()
            .all(|v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn gradients_reach_attention() {
        let (file, vocab) = prepared("total = price * count\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = PathEncoder::new(&mut params, vocab, 8, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        let sq = tape.mul(emb, emb);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        let touched = params
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        assert!(
            touched >= 3,
            "embedding, projection and attention should train"
        );
    }

    #[test]
    fn pathless_target_gets_zero_embedding() {
        // A module-level symbol with one occurrence and no other
        // identifiers nearby may have no paths.
        let (file, vocab) = prepared("lonely = 1\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = PathEncoder::new(&mut params, vocab, 8, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        assert_eq!(tape.value(emb).rows(), file.targets.len());
    }
}
