//! The gated graph neural network encoder (paper Sec. 4.3).
//!
//! Message passing follows Eq. 6 with the GGNN instantiation: one learned
//! matrix per edge label and direction (`mᵗ = E_k h`), max-pooling
//! aggregation (the paper found max better than sum and likens it to a
//! meet-like lattice operator), and a single GRU cell as the update
//! function, unrolled `T = 8` steps. Initial node states average learned
//! subtoken embeddings (Eq. 7); token- and character-level variants back
//! the Table 4 ablation.

use crate::input::{NodeInit, PreparedFile, CHAR_VOCAB, NUM_RELATIONS};
use serde::{Deserialize, Serialize};
use typilus_nn::{Embedding, GruCell, Linear, ParamSet, Tape, Tensor, Var};

/// Message aggregation operator (paper: max; sum as ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregation {
    /// Elementwise maximum over incoming messages (paper default).
    Max,
    /// Sum of incoming messages (classic GGNN).
    Sum,
}

/// The GGNN encoder producing type embeddings for symbol nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnEncoder {
    subtoken_embedding: Embedding,
    token_embedding: Embedding,
    char_embedding: Embedding,
    messages: Vec<Linear>,
    gru: GruCell,
    /// Number of message-passing steps `T`.
    pub steps: usize,
    /// Hidden width `D`.
    pub dim: usize,
    /// Initial node state construction.
    pub node_init: NodeInit,
    /// Aggregation operator.
    pub aggregation: Aggregation,
}

impl GnnEncoder {
    /// Creates a GGNN encoder.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: rand::Rng>(
        params: &mut ParamSet,
        subtoken_vocab: usize,
        token_vocab: usize,
        dim: usize,
        steps: usize,
        node_init: NodeInit,
        aggregation: Aggregation,
        rng: &mut R,
    ) -> GnnEncoder {
        let subtoken_embedding = Embedding::new(params, "gnn.subtok", subtoken_vocab, dim, rng);
        let token_embedding = Embedding::new(params, "gnn.tok", token_vocab, dim, rng);
        let char_embedding = Embedding::new(params, "gnn.char", CHAR_VOCAB, dim, rng);
        let messages = (0..NUM_RELATIONS)
            .map(|k| Linear::new_no_bias(params, &format!("gnn.msg{k}"), dim, dim, rng))
            .collect();
        let gru = GruCell::new(params, "gnn.gru", dim, dim, rng);
        GnnEncoder {
            subtoken_embedding,
            token_embedding,
            char_embedding,
            messages,
            gru,
            steps,
            dim,
            node_init,
            aggregation,
        }
    }

    /// Initial node states `h⁰` for all nodes of a file.
    fn initial_states(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        match self.node_init {
            NodeInit::Subtoken => {
                let mut ids = Vec::new();
                let mut groups = Vec::new();
                for (n, subs) in file.node_subtokens.iter().enumerate() {
                    for &s in subs {
                        ids.push(s);
                        groups.push(n);
                    }
                }
                self.subtoken_embedding
                    .lookup_mean(tape, &ids, &groups, file.num_nodes)
            }
            NodeInit::Token => self.token_embedding.lookup(tape, &file.node_token_id),
            NodeInit::Char => {
                let mut ids = Vec::new();
                let mut groups = Vec::new();
                for (n, chars) in file.node_chars.iter().enumerate() {
                    for &c in chars {
                        ids.push(c);
                        groups.push(n);
                    }
                }
                self.char_embedding
                    .lookup_mean(tape, &ids, &groups, file.num_nodes)
            }
        }
    }

    /// Runs `T` steps of message passing and returns the final states of
    /// all nodes, `[num_nodes, D]`.
    pub fn node_states(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        let mut h = self.initial_states(tape, file);
        // Precompute flattened edge endpoints per relation.
        let rels: Vec<(usize, Vec<usize>, Vec<usize>)> = file
            .relations
            .iter()
            .enumerate()
            .filter(|(_, edges)| !edges.is_empty())
            .map(|(k, edges)| {
                let srcs: Vec<usize> = edges.iter().map(|&(s, _)| s as usize).collect();
                let dsts: Vec<usize> = edges.iter().map(|&(_, d)| d as usize).collect();
                (k, srcs, dsts)
            })
            .collect();
        for _ in 0..self.steps {
            let agg = if rels.is_empty() {
                tape.input(Tensor::zeros(file.num_nodes, self.dim))
            } else {
                let mut message_rows = Vec::new();
                let mut message_dsts = Vec::new();
                for (k, srcs, dsts) in &rels {
                    let src_states = tape.gather(h, srcs);
                    let msg = self.messages[*k].apply(tape, src_states);
                    message_rows.push(msg);
                    message_dsts.extend(dsts.iter().copied());
                }
                let all_messages = tape.concat_rows(&message_rows);
                match self.aggregation {
                    Aggregation::Max => {
                        tape.segment_max(all_messages, &message_dsts, file.num_nodes)
                    }
                    Aggregation::Sum => {
                        tape.segment_sum(all_messages, &message_dsts, file.num_nodes)
                    }
                }
            };
            h = self.gru.step(tape, agg, h);
        }
        h
    }

    /// Type embeddings of the file's prediction targets, `[targets, D]`.
    ///
    /// # Panics
    ///
    /// Panics if the file has no targets (check before calling).
    pub fn encode(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        assert!(
            !file.targets.is_empty(),
            "encode requires at least one target"
        );
        let h = self.node_states(tape, file);
        let idx: Vec<usize> = file.targets.iter().map(|t| t.node as usize).collect();
        tape.gather(h, &idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{count_labels, prepare, PrepareConfig};
    use crate::vocab::Vocab;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use typilus_graph::{build_graph, GraphConfig};
    use typilus_pyast::{parse, SymbolTable};

    fn file_and_vocabs(src: &str) -> (PreparedFile, Vocab, Vocab) {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let graph = build_graph(&parsed, &table, &GraphConfig::default(), "t.py");
        let (sub, tok) = count_labels(std::slice::from_ref(&graph));
        let sv = Vocab::build(&sub, 1, 1000);
        let tv = Vocab::build(&tok, 1, 1000);
        let file = prepare(&graph, &sv, &tv, &PrepareConfig::default());
        (file, sv, tv)
    }

    fn encoder(sv: &Vocab, tv: &Vocab, params: &mut ParamSet, init: NodeInit) -> GnnEncoder {
        let mut rng = StdRng::seed_from_u64(42);
        GnnEncoder::new(
            params,
            sv.len(),
            tv.len(),
            16,
            4,
            init,
            Aggregation::Max,
            &mut rng,
        )
    }

    #[test]
    fn encode_shapes() {
        let (file, sv, tv) = file_and_vocabs("def f(a, b):\n    c = a + b\n    return c\n");
        let mut params = ParamSet::new();
        let enc = encoder(&sv, &tv, &mut params, NodeInit::Subtoken);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        assert_eq!(tape.value(emb).shape(), (file.targets.len(), 16));
    }

    #[test]
    fn all_node_inits_work() {
        let (file, sv, tv) = file_and_vocabs("x = some_value\n");
        for init in [NodeInit::Subtoken, NodeInit::Token, NodeInit::Char] {
            let mut params = ParamSet::new();
            let enc = encoder(&sv, &tv, &mut params, init);
            let mut tape = Tape::new(&params);
            let emb = enc.encode(&mut tape, &file);
            assert_eq!(tape.value(emb).rows(), file.targets.len(), "{init:?}");
        }
    }

    #[test]
    fn gradients_reach_embeddings_and_messages() {
        let (file, sv, tv) = file_and_vocabs("def f(n):\n    return n + 1\n");
        let mut params = ParamSet::new();
        let enc = encoder(&sv, &tv, &mut params, NodeInit::Subtoken);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        let t = tape.tanh(emb);
        let loss = tape.mean_all(t);
        let grads = tape.backward(loss);
        let touched = params
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        // Subtoken table + at least several message matrices + GRU weights.
        assert!(touched > 8, "only {touched} params received gradients");
    }

    #[test]
    fn sum_aggregation_differs_from_max() {
        let (file, sv, tv) = file_and_vocabs("a = b + c\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(42);
        let enc_max = GnnEncoder::new(
            &mut params,
            sv.len(),
            tv.len(),
            16,
            4,
            NodeInit::Subtoken,
            Aggregation::Max,
            &mut rng,
        );
        let mut enc_sum = enc_max.clone();
        enc_sum.aggregation = Aggregation::Sum;
        let mut tape = Tape::new(&params);
        let e1 = enc_max.encode(&mut tape, &file);
        let e2 = enc_sum.encode(&mut tape, &file);
        assert_ne!(tape.value(e1), tape.value(e2));
    }

    #[test]
    fn deterministic_encoding() {
        let (file, sv, tv) = file_and_vocabs("total = count * price\n");
        let mut params = ParamSet::new();
        let enc = encoder(&sv, &tv, &mut params, NodeInit::Subtoken);
        let v1 = {
            let mut tape = Tape::new(&params);
            let e = enc.encode(&mut tape, &file);
            tape.value(e).clone()
        };
        let v2 = {
            let mut tape = Tape::new(&params);
            let e = enc.encode(&mut tape, &file);
            tape.value(e).clone()
        };
        assert_eq!(v1, v2);
    }
}
