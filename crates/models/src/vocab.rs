//! Subtoken, token and type vocabularies.
//!
//! The paper's models represent identifiers through *subtokens* (open
//! vocabulary via SUBTOKEN_OF sharing); the classification losses need a
//! closed *type* vocabulary over the training annotations — which is
//! exactly why `*2Class` models hit a ceiling on rare types.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use typilus_types::PyType;

/// Reserved id for out-of-vocabulary entries.
pub const UNK_ID: usize = 0;

/// A string vocabulary with frequency-based construction and an UNK slot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    /// Ordered so a serialized vocabulary is bit-stable (lint rule D1).
    by_name: BTreeMap<String, usize>,
    names: Vec<String>,
}

impl Vocab {
    /// Builds a vocabulary from counted occurrences, keeping entries seen
    /// at least `min_count` times, up to `max_size` (most frequent first).
    /// Index 0 is always the UNK entry.
    pub fn build(counts: &BTreeMap<String, usize>, min_count: usize, max_size: usize) -> Vocab {
        let mut entries: Vec<(&String, &usize)> =
            counts.iter().filter(|(_, &c)| c >= min_count).collect();
        entries.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        entries.truncate(max_size.saturating_sub(1));
        let mut v = Vocab {
            by_name: BTreeMap::new(),
            names: vec!["<unk>".to_string()],
        };
        for (name, _) in entries {
            v.by_name.insert(name.clone(), v.names.len());
            v.names.push(name.clone());
        }
        v
    }

    /// Looks up an entry, falling back to [`UNK_ID`].
    pub fn id(&self, name: &str) -> usize {
        self.by_name.get(name).copied().unwrap_or(UNK_ID)
    }

    /// Whether the entry is in vocabulary.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// The entry for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Number of entries including UNK.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only the UNK entry exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }
}

/// A closed type vocabulary for classification heads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TypeVocab {
    /// Ordered so a serialized vocabulary is bit-stable (lint rule D1).
    by_type: BTreeMap<String, usize>,
    types: Vec<PyType>,
}

impl TypeVocab {
    /// Builds a type vocabulary from training annotations, keeping types
    /// seen at least `min_count` times. Index 0 is the UNK type (`Any`).
    pub fn build<'a>(annotations: impl Iterator<Item = &'a PyType>, min_count: usize) -> TypeVocab {
        let mut counts: BTreeMap<String, (usize, PyType)> = BTreeMap::new();
        for ty in annotations {
            let e = counts.entry(ty.to_string()).or_insert((0, ty.clone()));
            e.0 += 1;
        }
        let mut entries: Vec<(String, usize, PyType)> = counts
            .into_iter()
            .filter(|(_, (c, _))| *c >= min_count)
            .map(|(k, (c, t))| (k, c, t))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut v = TypeVocab {
            by_type: BTreeMap::new(),
            types: vec![PyType::Any],
        };
        for (key, _, ty) in entries {
            v.by_type.insert(key, v.types.len());
            v.types.push(ty);
        }
        v
    }

    /// The class id of a type, [`UNK_ID`] when unseen.
    pub fn id(&self, ty: &PyType) -> usize {
        self.by_type.get(&ty.to_string()).copied().unwrap_or(UNK_ID)
    }

    /// Whether the exact type is in vocabulary.
    pub fn contains(&self, ty: &PyType) -> bool {
        self.by_type.contains_key(&ty.to_string())
    }

    /// The type for a class id; an out-of-range id maps to the UNK
    /// type, like every other lookup here (lint rule S3).
    pub fn ty(&self, id: usize) -> &PyType {
        self.types.get(id).unwrap_or(&PyType::Any)
    }

    /// Number of classes including UNK.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether only the UNK class exists.
    pub fn is_empty(&self) -> bool {
        self.types.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_build_order_and_unk() {
        let mut counts = BTreeMap::new();
        counts.insert("nodes".to_string(), 10);
        counts.insert("num".to_string(), 5);
        counts.insert("rare".to_string(), 1);
        let v = Vocab::build(&counts, 2, 100);
        assert_eq!(v.len(), 3);
        assert_eq!(v.id("nodes"), 1);
        assert_eq!(v.id("num"), 2);
        assert_eq!(v.id("rare"), UNK_ID);
        assert_eq!(v.name(0), "<unk>");
    }

    #[test]
    fn vocab_max_size_truncates() {
        let mut counts = BTreeMap::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            counts.insert(name.to_string(), 10 - i);
        }
        let v = Vocab::build(&counts, 1, 3);
        assert_eq!(v.len(), 3); // unk + top 2
        assert!(v.contains("a"));
        assert!(!v.contains("d"));
    }

    #[test]
    fn type_vocab_round_trip() {
        let types: Vec<PyType> = ["int", "str", "int", "List[int]"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let v = TypeVocab::build(types.iter(), 1);
        assert_eq!(v.len(), 4); // Any + int + str + List[int]
        let int: PyType = "int".parse().unwrap();
        assert_eq!(v.ty(v.id(&int)), &int);
        let unseen: PyType = "bytes".parse().unwrap();
        assert_eq!(v.id(&unseen), UNK_ID);
    }

    #[test]
    fn type_vocab_min_count_drops_rare() {
        let types: Vec<PyType> = ["int", "int", "Foo"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let v = TypeVocab::build(types.iter(), 2);
        assert!(v.contains(&"int".parse().unwrap()));
        assert!(!v.contains(&"Foo".parse().unwrap()));
    }
}
