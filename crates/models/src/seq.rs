//! The DeepTyper-style sequence baseline (paper Sec. 6.1, "Seq*" rows).
//!
//! A two-layer bidirectional GRU over the token sequence with
//! *consistency modules*: after each biGRU layer (including the output
//! layer — the paper's addition (b)), representations of tokens bound to
//! the same variable are averaged and mixed back in, giving each variable
//! a single consistent representation. Token inputs use subtoken-averaged
//! embeddings (the paper's addition (a) relative to DeepTyper).

use crate::input::PreparedFile;
use serde::{Deserialize, Serialize};
use typilus_nn::{Embedding, GruCell, Linear, ParamSet, Tape, Tensor, Var};

/// The biGRU sequence encoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqEncoder {
    embedding: Embedding,
    fwd1: GruCell,
    bwd1: GruCell,
    fwd2: GruCell,
    bwd2: GruCell,
    out_proj: Linear,
    /// Output width `D`.
    pub dim: usize,
}

impl SeqEncoder {
    /// Creates the encoder; `dim` must be even (split across directions).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is odd.
    pub fn new<R: rand::Rng>(
        params: &mut ParamSet,
        subtoken_vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> SeqEncoder {
        assert!(dim.is_multiple_of(2), "sequence model width must be even");
        let h = dim / 2;
        let embedding = Embedding::new(params, "seq.subtok", subtoken_vocab, dim, rng);
        let fwd1 = GruCell::new(params, "seq.fwd1", dim, h, rng);
        let bwd1 = GruCell::new(params, "seq.bwd1", dim, h, rng);
        let fwd2 = GruCell::new(params, "seq.fwd2", dim, h, rng);
        let bwd2 = GruCell::new(params, "seq.bwd2", dim, h, rng);
        let out_proj = Linear::new(params, "seq.out", dim, dim, rng);
        SeqEncoder {
            embedding,
            fwd1,
            bwd1,
            fwd2,
            bwd2,
            out_proj,
            dim,
        }
    }

    /// One directional GRU pass over `[L, in]`, returning `[L, h]` in
    /// sequence order.
    fn pass(
        &self,
        tape: &mut Tape<'_>,
        gru: &GruCell,
        inputs: Var,
        len: usize,
        reverse: bool,
    ) -> Var {
        let mut states: Vec<Var> = Vec::with_capacity(len);
        let mut h = tape.input(Tensor::zeros(1, gru.hidden_dim));
        for step in 0..len {
            let i = if reverse { len - 1 - step } else { step };
            let x = tape.gather(inputs, &[i]);
            h = gru.step(tape, x, h);
            states.push(h);
        }
        if reverse {
            states.reverse();
        }
        tape.concat_rows(&states)
    }

    /// The consistency module: averages representations within each
    /// variable group and mixes the average back into each position.
    fn consistency(&self, tape: &mut Tape<'_>, x: Var, file: &PreparedFile) -> Var {
        let means = tape.segment_mean(x, &file.token_group, file.num_groups);
        let back = tape.gather(means, &file.token_group);
        let sum = tape.add(x, back);
        tape.scale(sum, 0.5)
    }

    /// Per-token representations `[L, D]`.
    pub fn token_states(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        let len = file.token_seq.len();
        // Token inputs: mean of subtoken embeddings per token.
        let mut ids = Vec::new();
        let mut groups = Vec::new();
        for (pos, &node) in file.token_seq.iter().enumerate() {
            for &s in &file.node_subtokens[node as usize] {
                ids.push(s);
                groups.push(pos);
            }
        }
        let x = self.embedding.lookup_mean(tape, &ids, &groups, len);
        // Layer 1.
        let f1 = self.pass(tape, &self.fwd1, x, len, false);
        let b1 = self.pass(tape, &self.bwd1, x, len, true);
        let h1 = tape.concat_cols(&[f1, b1]);
        let h1 = self.consistency(tape, h1, file);
        // Layer 2.
        let f2 = self.pass(tape, &self.fwd2, h1, len, false);
        let b2 = self.pass(tape, &self.bwd2, h1, len, true);
        let h2 = tape.concat_cols(&[f2, b2]);
        let h2 = self.consistency(tape, h2, file);
        self.out_proj.apply(tape, h2)
    }

    /// Type embeddings of the file's targets, `[targets, D]`. Targets
    /// with no token occurrence (possible after sequence truncation) get
    /// a zero embedding.
    ///
    /// # Panics
    ///
    /// Panics if the file has no targets or no tokens.
    pub fn encode(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        assert!(
            !file.targets.is_empty(),
            "encode requires at least one target"
        );
        assert!(!file.token_seq.is_empty(), "sequence model requires tokens");
        let states = self.token_states(tape, file);
        // Average the positions bound to each target (one segment per
        // target; unbound targets have no rows and stay zero).
        let mut ids = Vec::new();
        let mut segs = Vec::new();
        for (t, positions) in file.target_positions.iter().enumerate() {
            for &p in positions {
                if p < file.token_seq.len() {
                    ids.push(p);
                    segs.push(t);
                }
            }
        }
        if ids.is_empty() {
            return tape.input(Tensor::zeros(file.targets.len(), self.dim));
        }
        let rows = tape.gather(states, &ids);
        tape.segment_mean(rows, &segs, file.targets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{count_labels, prepare, PrepareConfig};
    use crate::vocab::Vocab;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use typilus_graph::{build_graph, GraphConfig};
    use typilus_pyast::{parse, SymbolTable};

    fn prepared(src: &str) -> (PreparedFile, Vocab) {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let graph = build_graph(&parsed, &table, &GraphConfig::default(), "t.py");
        let (sub, tok) = count_labels(std::slice::from_ref(&graph));
        let sv = Vocab::build(&sub, 1, 1000);
        let tv = Vocab::build(&tok, 1, 1000);
        (prepare(&graph, &sv, &tv, &PrepareConfig::default()), sv)
    }

    #[test]
    fn encode_shapes() {
        let (file, sv) = prepared("def f(a, b):\n    return a + b\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = SeqEncoder::new(&mut params, sv.len(), 16, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        assert_eq!(tape.value(emb).shape(), (file.targets.len(), 16));
    }

    #[test]
    fn return_target_gets_nonzero_embedding() {
        let (file, sv) = prepared("def f(a):\n    return a\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = SeqEncoder::new(&mut params, sv.len(), 16, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        let ret_idx = file
            .targets
            .iter()
            .position(|t| t.kind == typilus_pyast::SymbolKind::Return)
            .unwrap();
        let row = tape.value(emb).row(ret_idx);
        assert!(
            row.iter().any(|&v| v != 0.0),
            "return embedding should be nonzero"
        );
    }

    #[test]
    fn gradients_flow_through_both_layers() {
        let (file, sv) = prepared("x = compute(y)\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = SeqEncoder::new(&mut params, sv.len(), 8, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        let loss = tape.mean_all(emb);
        let grads = tape.backward(loss);
        let touched = params
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        // Embedding + 4 GRUs (9 params each) + projection (2).
        assert!(touched >= 30, "only {touched} params received gradients");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_width_rejected() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = SeqEncoder::new(&mut params, 10, 15, &mut rng);
    }
}
