//! # typilus-models
//!
//! The neural models of the Typilus reproduction: the GGNN encoder of the
//! paper plus the DeepTyper-style sequence and code2seq-style path
//! baselines, each trainable with the classification loss (Eq. 1), the
//! deep-similarity space loss (Eq. 3) or the combined Typilus loss
//! (Eq. 4) — the nine variants of paper Table 2.
//!
//! The high-level entry point is [`TypeModel`]: build it from training
//! graphs (vocabularies are derived automatically), call
//! [`TypeModel::train_step`] in a loop, then [`TypeModel::embed_inference`]
//! to obtain type embeddings for the TypeSpace (`typilus-space`).

#![warn(missing_docs)]

pub mod gnn;
pub mod input;
pub mod loss;
pub mod model;
pub mod path;
pub mod seq;
pub mod transformer;
pub mod vocab;

pub use gnn::{Aggregation, GnnEncoder};
pub use input::{NodeInit, PrepareConfig, PreparedFile, PreparedTarget};
pub use loss::{classification_loss, space_loss, typilus_loss};
pub use model::{EncoderKind, LossKind, ModelConfig, TypeModel};
pub use path::PathEncoder;
pub use seq::SeqEncoder;
pub use transformer::TransformerEncoder;
pub use vocab::{TypeVocab, Vocab, UNK_ID};
