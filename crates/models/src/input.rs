//! Model-ready views of a program graph.
//!
//! All three encoder families (graph, sequence, path) consume the same
//! [`ProgramGraph`]; a [`PreparedFile`] precomputes the id tensors each
//! needs: subtoken/token/char ids per node, edges grouped by label and
//! direction, the token sequence with variable-consistency groups, and
//! leaf-to-leaf AST paths per prediction target.

use crate::vocab::Vocab;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use typilus_graph::{subtokens, EdgeLabel, NodeKind, ProgramGraph};
use typilus_pyast::SymbolKind;
use typilus_types::PyType;

/// Number of directed relation slots: eight labels × two directions.
pub const NUM_RELATIONS: usize = EdgeLabel::COUNT * 2;

/// How initial node representations are formed (paper Table 4, bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeInit {
    /// Mean of learned subtoken embeddings (the paper's default, Eq. 7).
    Subtoken,
    /// One embedding per whole label (token-level, as DeepTyper).
    Token,
    /// Mean of character embeddings (a light stand-in for the paper's
    /// character CNN).
    Char,
}

/// A prediction target with its parsed ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreparedTarget {
    /// Graph node index of the symbol.
    pub node: u32,
    /// The symbol's id in the file's symbol table.
    pub symbol: typilus_pyast::SymbolId,
    /// Symbol name.
    pub name: String,
    /// Variable / parameter / return / member.
    pub kind: SymbolKind,
    /// Parsed ground-truth type, if the source had a (parsable)
    /// annotation that is neither `Any` nor bare `None`.
    pub ty: Option<PyType>,
}

/// One leaf-to-leaf AST path for the path-based encoder: subtokens of the
/// start leaf, labels of the interior nodes, subtokens of the end leaf.
///
/// Ids live in a *combined* space: endpoint subtokens use subtoken-vocab
/// ids in `0..subtoken_vocab.len()`; interior non-terminal labels use
/// token-vocab ids offset by `subtoken_vocab.len()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeafPath {
    /// Element ids along the path in the combined id space.
    pub element_ids: Vec<usize>,
}

/// A program graph preprocessed into the tensors the models need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreparedFile {
    /// Number of graph nodes.
    pub num_nodes: usize,
    /// Subtoken ids per node.
    pub node_subtokens: Vec<Vec<usize>>,
    /// Whole-label id per node (token-level vocabulary).
    pub node_token_id: Vec<usize>,
    /// Character ids per node (bytes mapped into a small alphabet).
    pub node_chars: Vec<Vec<usize>>,
    /// `(src, dst)` pairs per relation: index `2k` is label `k` forward,
    /// `2k+1` is label `k` reversed.
    pub relations: Vec<Vec<(u32, u32)>>,
    /// Prediction targets.
    pub targets: Vec<PreparedTarget>,
    /// Graph-node indices of the token sequence, in source order.
    pub token_seq: Vec<u32>,
    /// Consistency group per sequence position (positions bound to the
    /// same symbol share a group id).
    pub token_group: Vec<usize>,
    /// Number of consistency groups.
    pub num_groups: usize,
    /// For each target, the sequence positions bound to its symbol.
    pub target_positions: Vec<Vec<usize>>,
    /// For each target, sampled leaf-to-leaf paths.
    pub target_paths: Vec<Vec<LeafPath>>,
    /// Source file label.
    pub file: String,
}

/// Construction options for [`PreparedFile`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrepareConfig {
    /// Maximum tokens kept for the sequence view.
    pub max_seq_len: usize,
    /// Maximum paths sampled per target.
    pub max_paths_per_target: usize,
    /// Maximum interior length of a sampled path.
    pub max_path_len: usize,
}

impl Default for PrepareConfig {
    fn default() -> Self {
        PrepareConfig {
            max_seq_len: 400,
            max_paths_per_target: 8,
            max_path_len: 9,
        }
    }
}

/// Maps a character to a small stable alphabet id (1..=38); 0 is UNK.
pub fn char_id(c: char) -> usize {
    match c {
        'a'..='z' => 1 + (c as usize - 'a' as usize),
        'A'..='Z' => 1 + (c as usize - 'A' as usize),
        '0'..='9' => 27 + (c as usize - '0' as usize),
        '_' => 37,
        '.' => 38,
        _ => 0,
    }
}

/// Size of the character alphabet (including UNK).
pub const CHAR_VOCAB: usize = 39;

/// Counts subtoken and whole-label frequencies over graphs, for building
/// the vocabularies.
pub fn count_labels(graphs: &[ProgramGraph]) -> (BTreeMap<String, usize>, BTreeMap<String, usize>) {
    let mut sub = BTreeMap::new();
    let mut tok = BTreeMap::new();
    for g in graphs {
        for n in &g.nodes {
            *tok.entry(n.label.clone()).or_insert(0) += 1;
            for s in subtokens(&n.label) {
                *sub.entry(s).or_insert(0) += 1;
            }
        }
    }
    (sub, tok)
}

/// Parses an annotation string to the ground-truth type used in training
/// and evaluation. `Any`, bare `None` and unparsable annotations yield
/// `None` (the paper excludes `Any`/`None` annotations from its dataset).
pub fn parse_ground_truth(annotation: Option<&str>) -> Option<PyType> {
    let text = annotation?;
    let ty: PyType = text.parse().ok()?;
    if ty.is_top() || ty == PyType::None {
        return None;
    }
    Some(ty)
}

/// Prepares one program graph for all encoders.
pub fn prepare(
    graph: &ProgramGraph,
    subtoken_vocab: &Vocab,
    token_vocab: &Vocab,
    config: &PrepareConfig,
) -> PreparedFile {
    let num_nodes = graph.nodes.len();
    let mut node_subtokens = Vec::with_capacity(num_nodes);
    let mut node_token_id = Vec::with_capacity(num_nodes);
    let mut node_chars = Vec::with_capacity(num_nodes);
    for n in &graph.nodes {
        let subs: Vec<usize> = subtokens(&n.label)
            .iter()
            .map(|s| subtoken_vocab.id(s))
            .collect();
        node_subtokens.push(if subs.is_empty() {
            vec![crate::vocab::UNK_ID]
        } else {
            subs
        });
        node_token_id.push(token_vocab.id(&n.label));
        let chars: Vec<usize> = n.label.chars().take(24).map(char_id).collect();
        node_chars.push(if chars.is_empty() { vec![0] } else { chars });
    }

    // Relations: forward and reverse per label.
    let mut relations = vec![Vec::new(); NUM_RELATIONS];
    for e in &graph.edges {
        let k = e.label.as_index();
        relations[2 * k].push((e.src, e.dst));
        relations[2 * k + 1].push((e.dst, e.src));
    }

    // Targets with parsed ground truth.
    let targets: Vec<PreparedTarget> = graph
        .targets
        .iter()
        .map(|t| PreparedTarget {
            node: t.node,
            symbol: t.symbol,
            name: t.name.clone(),
            kind: t.kind,
            ty: parse_ground_truth(t.annotation.as_deref()),
        })
        .collect();

    // Sequence view: token nodes in creation order are source order.
    let token_seq: Vec<u32> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.kind == NodeKind::Token)
        .map(|(i, _)| i as u32)
        .take(config.max_seq_len)
        .collect();
    let pos_of_node: HashMap<u32, usize> =
        token_seq.iter().enumerate().map(|(p, &n)| (n, p)).collect();

    // Consistency groups: token positions bound to the same symbol node.
    let mut symbol_group: HashMap<u32, usize> = HashMap::new();
    let mut token_group = vec![0usize; token_seq.len()];
    let mut next_group = 0usize;
    // position -> symbol node; ordered so every walk over it is
    // position-ascending (determinism contract, lint rule D1).
    let mut bound: BTreeMap<usize, u32> = BTreeMap::new();
    for e in graph.edges_with(EdgeLabel::OccurrenceOf) {
        if let Some(&pos) = pos_of_node.get(&e.src) {
            bound.insert(pos, e.dst);
        }
    }
    for (pos, group) in token_group.iter_mut().enumerate() {
        let g = match bound.get(&pos) {
            Some(&sym) => *symbol_group.entry(sym).or_insert_with(|| {
                let g = next_group;
                next_group += 1;
                g
            }),
            None => {
                let g = next_group;
                next_group += 1;
                g
            }
        };
        *group = g;
    }

    // Positions per target symbol.
    let mut positions_by_symbol: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (&pos, &sym) in &bound {
        positions_by_symbol.entry(sym).or_default().push(pos);
    }
    for v in positions_by_symbol.values_mut() {
        v.sort_unstable();
    }
    // Return symbols have no token occurrences; use the occurrence edge
    // from the function-def non-terminal: approximate with the nearest
    // token position via OCCURRENCE_OF from non-terminals.
    let mut nonterm_occurrence: HashMap<u32, u32> = HashMap::new();
    for e in graph.edges_with(EdgeLabel::OccurrenceOf) {
        if graph.nodes[e.src as usize].kind == NodeKind::NonTerminal {
            nonterm_occurrence.insert(e.dst, e.src);
        }
    }
    // Paths: parent pointers from CHILD edges.
    let mut parent: Vec<Option<u32>> = vec![None; num_nodes];
    for e in graph.edges_with(EdgeLabel::Child) {
        parent[e.dst as usize] = Some(e.src);
    }

    let target_positions: Vec<Vec<usize>> = targets
        .iter()
        .map(|t| {
            let direct = positions_by_symbol
                .get(&t.node)
                .cloned()
                .unwrap_or_default();
            if !direct.is_empty() {
                return direct;
            }
            // Return symbols have no token occurrences; fall back to the
            // function header tokens (children of the function-def node),
            // which is how DeepTyper anchors return predictions.
            match nonterm_occurrence.get(&t.node) {
                Some(&func_node) => token_seq
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| parent[n as usize] == Some(func_node))
                    .map(|(p, _)| p)
                    .take(4)
                    .collect(),
                None => Vec::new(),
            }
        })
        .collect();
    let identifier_tokens: Vec<u32> = token_seq
        .iter()
        .copied()
        .filter(|&n| {
            let label = &graph.nodes[n as usize].label;
            label
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
        .collect();
    let target_paths: Vec<Vec<LeafPath>> = targets
        .iter()
        .map(|t| {
            let starts: Vec<u32> = positions_by_symbol
                .get(&t.node)
                .map(|ps| ps.iter().map(|&p| token_seq[p]).collect())
                .unwrap_or_else(|| {
                    nonterm_occurrence
                        .get(&t.node)
                        .map(|&n| vec![n])
                        .unwrap_or_default()
                });
            sample_paths(
                graph,
                &parent,
                &starts,
                &identifier_tokens,
                subtoken_vocab,
                token_vocab,
                config,
            )
        })
        .collect();

    PreparedFile {
        num_nodes,
        node_subtokens,
        node_token_id,
        node_chars,
        relations,
        targets,
        token_seq,
        token_group,
        num_groups: next_group,
        target_positions,
        target_paths,
        file: graph.file.clone(),
    }
}

/// Deterministically samples leaf-to-leaf paths from each start node to
/// nearby identifier tokens through the AST parent chain.
#[allow(clippy::too_many_arguments)]
fn sample_paths(
    graph: &ProgramGraph,
    parent: &[Option<u32>],
    starts: &[u32],
    identifier_tokens: &[u32],
    subtoken_vocab: &Vocab,
    token_vocab: &Vocab,
    config: &PrepareConfig,
) -> Vec<LeafPath> {
    let ancestors = |mut n: u32| -> Vec<u32> {
        let mut out = vec![n];
        while let Some(p) = parent[n as usize] {
            out.push(p);
            n = p;
            if out.len() > 32 {
                break;
            }
        }
        out
    };
    let mut paths = Vec::new();
    'outer: for &start in starts {
        let up = ancestors(start);
        let up_pos: HashMap<u32, usize> = up.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        // Nearest identifier tokens around the start in sequence order.
        for &other in identifier_tokens {
            if other == start {
                continue;
            }
            let down = ancestors(other);
            // Lowest common ancestor.
            let Some((lca_down_idx, lca_up_idx)) = down
                .iter()
                .enumerate()
                .find_map(|(i, n)| up_pos.get(n).map(|&j| (i, j)))
            else {
                continue;
            };
            let interior_len = lca_up_idx + lca_down_idx;
            if interior_len > config.max_path_len {
                continue;
            }
            let mut element_ids = Vec::new();
            for s in subtokens(&graph.nodes[start as usize].label) {
                element_ids.push(subtoken_vocab.id(&s));
            }
            // Up through interior labels (token-level vocab, offset into
            // the combined id space).
            let offset = subtoken_vocab.len();
            for &n in up.iter().take(lca_up_idx + 1).skip(1) {
                element_ids.push(offset + token_vocab.id(&graph.nodes[n as usize].label));
            }
            for &n in down.iter().take(lca_down_idx).skip(1).rev() {
                element_ids.push(offset + token_vocab.id(&graph.nodes[n as usize].label));
            }
            for s in subtokens(&graph.nodes[other as usize].label) {
                element_ids.push(subtoken_vocab.id(&s));
            }
            paths.push(LeafPath { element_ids });
            if paths.len() >= config.max_paths_per_target {
                break 'outer;
            }
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_graph::{build_graph, GraphConfig};
    use typilus_pyast::{parse, SymbolTable};

    fn prepared(src: &str) -> PreparedFile {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let graph = build_graph(&parsed, &table, &GraphConfig::default(), "t.py");
        let (sub, tok) = count_labels(std::slice::from_ref(&graph));
        let sv = Vocab::build(&sub, 1, 1000);
        let tv = Vocab::build(&tok, 1, 1000);
        prepare(&graph, &sv, &tv, &PrepareConfig::default())
    }

    #[test]
    fn relations_include_reverses() {
        let p = prepared("x = 1\ny = x\n");
        let k = EdgeLabel::NextToken.as_index();
        assert_eq!(p.relations[2 * k].len(), p.relations[2 * k + 1].len());
        let fwd = &p.relations[2 * k][0];
        let rev = &p.relations[2 * k + 1][0];
        assert_eq!((fwd.0, fwd.1), (rev.1, rev.0));
    }

    #[test]
    fn ground_truth_parsing() {
        let p = prepared("def f(a: int, b: Any, c) -> None:\n    return None\n");
        let a = p.targets.iter().find(|t| t.name == "a").unwrap();
        assert_eq!(a.ty.as_ref().unwrap().to_string(), "int");
        let b = p.targets.iter().find(|t| t.name == "b").unwrap();
        assert!(b.ty.is_none(), "Any is excluded");
        let c = p.targets.iter().find(|t| t.name == "c").unwrap();
        assert!(c.ty.is_none(), "unannotated");
        let ret = p
            .targets
            .iter()
            .find(|t| t.kind == SymbolKind::Return)
            .unwrap();
        assert!(ret.ty.is_none(), "bare None return is excluded");
    }

    #[test]
    fn consistency_groups_share_symbols() {
        let p = prepared("total = 1\nresult = total + total\n");
        // Find positions of the three `total` tokens.
        let positions: Vec<usize> = p
            .token_seq
            .iter()
            .enumerate()
            .filter(|(_, &_n)| true)
            .map(|(i, _)| i)
            .collect();
        assert!(!positions.is_empty());
        let total_positions: Vec<usize> = p
            .targets
            .iter()
            .find(|t| t.name == "total")
            .map(|t| {
                p.target_positions[p.targets.iter().position(|x| x.name == t.name).unwrap()].clone()
            })
            .unwrap();
        assert_eq!(total_positions.len(), 3);
        let g0 = p.token_group[total_positions[0]];
        assert!(total_positions.iter().all(|&pos| p.token_group[pos] == g0));
    }

    #[test]
    fn paths_exist_for_parameters() {
        let p = prepared("def f(count):\n    return count + offset\n");
        let count_idx = p.targets.iter().position(|t| t.name == "count").unwrap();
        assert!(
            !p.target_paths[count_idx].is_empty(),
            "expected paths for parameter symbol"
        );
        for path in &p.target_paths[count_idx] {
            assert!(!path.element_ids.is_empty());
        }
    }

    #[test]
    fn subtoken_fallback_to_unk() {
        let p = prepared("x = 1\n");
        // Every node has at least one subtoken id.
        assert!(p.node_subtokens.iter().all(|s| !s.is_empty()));
        assert!(p.node_chars.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn char_alphabet() {
        assert_eq!(char_id('a'), 1);
        assert_eq!(char_id('A'), 1);
        assert_eq!(char_id('z'), 26);
        assert_eq!(char_id('0'), 27);
        assert_eq!(char_id('_'), 37);
        assert_eq!(char_id('!'), 0);
        assert!(CHAR_VOCAB > char_id('.'));
    }
}
