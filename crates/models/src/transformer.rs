//! A small transformer encoder baseline.
//!
//! The paper (Sec. 6.1, "Transformers") reports testing small
//! transformers in place of DeepTyper's biGRU and finding they did not
//! improve on it, attributing this to transformers' appetite for data
//! and their quadratic memory in sequence length. This module
//! reproduces that comparison point: a compact pre-norm transformer
//! (learned positional embeddings, single-head self-attention, two
//! blocks) over the same token sequence and consistency pooling as the
//! sequence baseline.

use crate::input::PreparedFile;
use serde::{Deserialize, Serialize};
use typilus_nn::{Embedding, Linear, ParamSet, Tape, Tensor, Var};

/// One pre-norm transformer block: self-attention + feed-forward, both
/// with residual connections.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Block {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    ff1: Linear,
    ff2: Linear,
}

impl Block {
    fn new<R: rand::Rng>(params: &mut ParamSet, name: &str, dim: usize, rng: &mut R) -> Block {
        Block {
            wq: Linear::new_no_bias(params, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new_no_bias(params, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new_no_bias(params, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new_no_bias(params, &format!("{name}.wo"), dim, dim, rng),
            ff1: Linear::new(params, &format!("{name}.ff1"), dim, 2 * dim, rng),
            ff2: Linear::new(params, &format!("{name}.ff2"), 2 * dim, dim, rng),
        }
    }

    fn apply(&self, tape: &mut Tape<'_>, x: Var, dim: usize) -> Var {
        // Pre-norm attention with residual.
        let normed = tape.row_norm(x);
        let q = self.wq.apply(tape, normed);
        let k = self.wk.apply(tape, normed);
        let v = self.wv.apply(tape, normed);
        let scores = tape.matmul_t(q, k); // [L, L]
        let scaled = tape.scale(scores, 1.0 / (dim as f32).sqrt());
        let log_attn = tape.log_softmax(scaled);
        let attn = tape.exp(log_attn);
        let mixed = tape.matmul(attn, v);
        let projected = self.wo.apply(tape, mixed);
        let x = tape.add(x, projected);
        // Pre-norm feed-forward with residual.
        let normed = tape.row_norm(x);
        let h = self.ff1.apply(tape, normed);
        let h = tape.relu(h);
        let h = self.ff2.apply(tape, h);
        tape.add(x, h)
    }
}

/// The transformer sequence encoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerEncoder {
    embedding: Embedding,
    positions: Embedding,
    blocks: Vec<Block>,
    out_proj: Linear,
    /// Output width `D`.
    pub dim: usize,
    /// Maximum sequence length (positions beyond it reuse the last slot).
    pub max_len: usize,
}

impl TransformerEncoder {
    /// Creates a transformer with `blocks` pre-norm layers.
    pub fn new<R: rand::Rng>(
        params: &mut ParamSet,
        subtoken_vocab: usize,
        dim: usize,
        blocks: usize,
        max_len: usize,
        rng: &mut R,
    ) -> TransformerEncoder {
        let embedding = Embedding::new(params, "xf.subtok", subtoken_vocab, dim, rng);
        let positions = Embedding::new(params, "xf.pos", max_len, dim, rng);
        let blocks = (0..blocks)
            .map(|i| Block::new(params, &format!("xf.block{i}"), dim, rng))
            .collect();
        let out_proj = Linear::new(params, "xf.out", dim, dim, rng);
        TransformerEncoder {
            embedding,
            positions,
            blocks,
            out_proj,
            dim,
            max_len,
        }
    }

    /// Per-token representations `[L, D]`.
    pub fn token_states(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        let len = file.token_seq.len();
        let mut ids = Vec::new();
        let mut groups = Vec::new();
        for (pos, &node) in file.token_seq.iter().enumerate() {
            for &s in &file.node_subtokens[node as usize] {
                ids.push(s);
                groups.push(pos);
            }
        }
        let tok = self.embedding.lookup_mean(tape, &ids, &groups, len);
        let pos_ids: Vec<usize> = (0..len).map(|p| p.min(self.max_len - 1)).collect();
        let pos = self.positions.lookup(tape, &pos_ids);
        let mut x = tape.add(tok, pos);
        for block in &self.blocks {
            x = block.apply(tape, x, self.dim);
        }
        let x = tape.row_norm(x);
        self.out_proj.apply(tape, x)
    }

    /// Type embeddings of the file's targets, `[targets, D]` — same
    /// consistency pooling as the biGRU baseline.
    ///
    /// # Panics
    ///
    /// Panics if the file has no targets or no tokens.
    pub fn encode(&self, tape: &mut Tape<'_>, file: &PreparedFile) -> Var {
        assert!(
            !file.targets.is_empty(),
            "encode requires at least one target"
        );
        assert!(!file.token_seq.is_empty(), "transformer requires tokens");
        let states = self.token_states(tape, file);
        let mut ids = Vec::new();
        let mut segs = Vec::new();
        for (t, positions) in file.target_positions.iter().enumerate() {
            for &p in positions {
                if p < file.token_seq.len() {
                    ids.push(p);
                    segs.push(t);
                }
            }
        }
        if ids.is_empty() {
            return tape.input(Tensor::zeros(file.targets.len(), self.dim));
        }
        let rows = tape.gather(states, &ids);
        tape.segment_mean(rows, &segs, file.targets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{count_labels, prepare, PrepareConfig};
    use crate::vocab::Vocab;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use typilus_graph::{build_graph, GraphConfig};
    use typilus_pyast::{parse, SymbolTable};

    fn prepared(src: &str) -> (PreparedFile, Vocab) {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let graph = build_graph(&parsed, &table, &GraphConfig::default(), "t.py");
        let (sub, tok) = count_labels(std::slice::from_ref(&graph));
        let sv = Vocab::build(&sub, 1, 1000);
        let tv = Vocab::build(&tok, 1, 1000);
        (prepare(&graph, &sv, &tv, &PrepareConfig::default()), sv)
    }

    #[test]
    fn encode_shapes() {
        let (file, sv) = prepared("def f(a, b):\n    return a + b\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TransformerEncoder::new(&mut params, sv.len(), 16, 2, 128, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        assert_eq!(tape.value(emb).shape(), (file.targets.len(), 16));
    }

    #[test]
    fn attention_rows_mix_information() {
        // With more tokens than max_len, positions clamp instead of
        // panicking.
        let (file, sv) = prepared("a = 1\nb = a + 2\nc = b * a\nd = c - b\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TransformerEncoder::new(&mut params, sv.len(), 8, 1, 4, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        assert!(tape.value(emb).as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_reach_all_blocks() {
        let (file, sv) = prepared("total = price * count\n");
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = TransformerEncoder::new(&mut params, sv.len(), 8, 2, 64, &mut rng);
        let mut tape = Tape::new(&params);
        let emb = enc.encode(&mut tape, &file);
        let t = tape.tanh(emb);
        let loss = tape.mean_all(t);
        let grads = tape.backward(loss);
        let touched = params
            .iter()
            .filter(|(id, _, _)| grads.get(*id).is_some())
            .count();
        // 2 embeddings + 2 blocks x 8 params + out proj x 2.
        assert!(touched >= 14, "only {touched} params received gradients");
    }
}
