//! The serve wire protocol: length-prefixed frames carrying
//! serbin-encoded request/response values.
//!
//! A *frame* is a 4-byte little-endian payload length followed by that
//! many payload bytes. Frames longer than [`MAX_FRAME_LEN`] are
//! rejected before any allocation — a hostile length prefix cannot
//! balloon server memory. The payload is a [`Request`] (client → server)
//! or [`Response`] (server → client) encoded with `typilus-serbin`,
//! the same self-describing binary serde format the model artifacts
//! use.
//!
//! Every reply to a frame is exactly one frame; a client can therefore
//! pipeline requests and match replies by order. Error replies carry a
//! stable machine-readable [`ErrorCode`] next to the human-readable
//! message, so clients branch on the code, not the text.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload length (bytes). Large enough for
/// any real source file plus its predictions, small enough that a
/// hostile length prefix cannot make the server allocate gigabytes.
pub const MAX_FRAME_LEN: u32 = 4 * 1024 * 1024;

/// Errors of frame-level I/O.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The stream ended (or failed) midway through a frame.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`]. The stream cannot
    /// be resynchronised after this; the connection must be dropped.
    Oversized {
        /// Length the prefix announced.
        len: u32,
        /// The configured ceiling.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; [`FrameError::Oversized`] if the payload
/// itself exceeds the limit (a server bug, but never a panic).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF at a frame boundary,
/// [`FrameError::Io`] on a mid-frame disconnect or read failure, and
/// [`FrameError::Oversized`] when the announced length exceeds the
/// ceiling (nothing is read past the prefix in that case).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    // Distinguish "closed between frames" (clean) from "closed inside
    // a frame" (mid-request disconnect): read the first prefix byte
    // separately.
    let (head, rest) = prefix.split_at_mut(1);
    match r.read(head) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(rest)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Predict ranked type hints for every annotatable symbol of a
    /// Python source snippet.
    Predict {
        /// The snippet to analyse.
        source: String,
    },
    /// One-shot open-vocabulary adaptation: embed `symbol` from
    /// `source` and bind the embedding to `ty` — no retraining.
    AddMarker {
        /// Snippet containing an occurrence of the symbol.
        source: String,
        /// Name of the symbol to embed.
        symbol: String,
        /// Type to bind, in display syntax (e.g. `List[int]`).
        ty: String,
    },
    /// Rebuild the sharded TypeSpace index over all current markers
    /// (folding any overlay in), in memory only.
    Reindex,
    /// Server and type-map statistics.
    Stats,
    /// Clean shutdown: the server replies [`Response::Bye`], stops
    /// accepting, drains nothing further, and exits its run loop.
    Shutdown,
    /// Graceful degradation: stop accepting *new* connections while
    /// existing connections keep being served. The reply is
    /// [`Response::Draining`]; a later [`Request::Shutdown`] finishes
    /// the job.
    Drain,
}

impl Request {
    /// Whether a client may safely retry this request after a
    /// transport failure. Retrying a request whose reply was lost must
    /// not change server state a second time: `predict`, `stats`,
    /// `reindex` and `drain` converge to the same state no matter how
    /// often they run, while `add-marker` inserts a marker per
    /// execution and `shutdown` must not chase a dying server across
    /// reconnects.
    pub fn idempotent(&self) -> bool {
        match self {
            Request::Predict { .. } | Request::Reindex | Request::Stats | Request::Drain => true,
            Request::AddMarker { .. } | Request::Shutdown => false,
        }
    }
}

/// One ranked candidate type for a symbol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hint {
    /// Candidate type in display syntax.
    pub ty: String,
    /// Normalised probability (Eq. 5 of the paper).
    pub probability: f32,
}

/// All ranked hints for one symbol of the analysed snippet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolHints {
    /// Symbol name.
    pub name: String,
    /// Symbol kind (`Variable` / `Parameter` / `Return`), Debug-formatted
    /// exactly as the one-shot CLI prints it.
    pub kind: String,
    /// Candidates in descending probability order.
    pub hints: Vec<Hint>,
}

impl SymbolHints {
    /// Converts a pipeline prediction into its wire shape. The
    /// formatting of `kind` and `ty` matches the one-shot CLI exactly,
    /// which is what makes served reports byte-identical to
    /// `typilus predict` output.
    pub fn of(p: &typilus::SymbolPrediction) -> SymbolHints {
        SymbolHints {
            name: p.name.clone(),
            kind: format!("{:?}", p.kind),
            hints: p
                .candidates
                .iter()
                .map(|c| Hint {
                    ty: c.ty.to_string(),
                    probability: c.probability,
                })
                .collect(),
        }
    }
}

/// Machine-readable error classes. Stable: clients and tests branch on
/// these, never on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame payload did not decode as a [`Request`].
    Malformed,
    /// The frame length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized,
    /// The snippet is not valid Python.
    Parse,
    /// The named symbol does not occur in the snippet.
    SymbolNotFound,
    /// The snippet produced no symbol embeddings.
    NoEmbedding,
    /// The type string does not parse as a Python type.
    BadType,
    /// The TypeSpace rejected the operation (width mismatch, index
    /// rebuild failure, ...).
    Space,
    /// The bounded request queue is full; retry later.
    Overloaded,
    /// The request waited past its deadline before the engine reached
    /// it.
    Timeout,
    /// The server is shutting down and no longer takes requests.
    ShuttingDown,
    /// The engine hit an internal failure (e.g. a recovered panic)
    /// while serving this request; the daemon is still up and the
    /// request may be retried.
    Internal,
    /// The request matches a source that made the engine panic
    /// repeatedly; it is refused without being run again.
    Quarantined,
    /// The server is draining: it no longer accepts new connections.
    Draining,
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Parse => "parse",
            ErrorCode::SymbolNotFound => "symbol-not-found",
            ErrorCode::NoEmbedding => "no-embedding",
            ErrorCode::BadType => "bad-type",
            ErrorCode::Space => "space",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Draining => "draining",
        };
        f.write_str(name)
    }
}

/// The server's health, reported in [`ServerStats`]. Operators and
/// load balancers branch on this, so the states are stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// Serving normally; no recovered panics, no quarantined requests.
    Ok,
    /// Still serving, but the engine has recovered from at least one
    /// panic or is refusing quarantined requests — worth a look.
    Degraded,
    /// Draining: existing connections are served, new ones refused.
    Draining,
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Health::Ok => "ok",
            Health::Degraded => "degraded",
            Health::Draining => "draining",
        })
    }
}

/// Server and type-map statistics ([`Request::Stats`] reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Markers in the type map.
    pub markers: usize,
    /// Distinct types among the markers.
    pub distinct_types: usize,
    /// Markers in the incremental overlay (sharded index only).
    pub overlay: usize,
    /// Embedding width.
    pub dim: usize,
    /// Index state: `exact` / `forest` / `sharded` / `detached`.
    pub index: String,
    /// Requests accepted since startup.
    pub requests: u64,
    /// Predict requests answered.
    pub predicts: u64,
    /// Markers added through `add-marker`.
    pub markers_added: u64,
    /// Engine batches executed.
    pub batches: u64,
    /// Largest batch drained in one engine pass.
    pub largest_batch: u64,
    /// Error replies sent (any code).
    pub errors: u64,
    /// Engine panics caught by the supervisor; the affected requests
    /// were answered [`ErrorCode::Internal`] and serving continued.
    pub panics_recovered: u64,
    /// Request hashes currently quarantined (each made the engine
    /// panic twice and is refused with [`ErrorCode::Quarantined`]).
    pub quarantined: u64,
    /// Reply writes that failed because the client was gone
    /// (broken pipe / connection reset) — the client's fault.
    pub client_gone: u64,
    /// Reply writes that failed for any other reason — the server
    /// side's fault, worth alerting on.
    pub write_faults: u64,
    /// Current health state.
    pub health: Health,
    /// Warn-once conditions raised so far, as `(key, count)` in key
    /// order — repeats are suppressed on stderr but stay observable
    /// here.
    pub warnings: Vec<(String, u64)>,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Ranked hints per symbol, in the snippet's symbol order.
    Predictions(Vec<SymbolHints>),
    /// The marker was bound; the map now holds this many markers.
    MarkerAdded {
        /// Marker count after the insertion.
        markers: usize,
    },
    /// The index was rebuilt over all markers.
    Reindexed {
        /// Markers covered by the rebuilt index.
        markers: usize,
        /// Index state after the rebuild.
        index: String,
    },
    /// Statistics snapshot.
    Stats(ServerStats),
    /// Acknowledgement of [`Request::Shutdown`]; the connection closes
    /// after this frame.
    Bye,
    /// Acknowledgement of [`Request::Drain`]: no new connections are
    /// accepted from now on, but this connection stays usable.
    Draining,
    /// The request failed; the connection stays usable unless the
    /// code is [`ErrorCode::Oversized`] or [`ErrorCode::ShuttingDown`].
    Error {
        /// Stable machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Encodes any protocol value for framing.
///
/// # Errors
///
/// Propagates serbin encoding errors (unrepresentable values).
pub fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>, typilus_serbin::Error> {
    typilus_serbin::to_bytes(value)
}

/// Decodes a framed payload into a protocol value.
///
/// # Errors
///
/// Propagates serbin decoding errors (malformed payload).
pub fn decode<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, typilus_serbin::Error> {
    typilus_serbin::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            FrameError::Closed
        ));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(b"junk");
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            FrameError::Oversized { .. }
        ));
    }

    #[test]
    fn truncated_frame_is_io_not_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            FrameError::Io(_)
        ));
    }

    #[test]
    fn request_and_response_round_trip_serbin() {
        let req = Request::AddMarker {
            source: "x = 1\n".to_string(),
            symbol: "x".to_string(),
            ty: "int".to_string(),
        };
        let bytes = encode(&req).unwrap();
        assert_eq!(decode::<Request>(&bytes).unwrap(), req);
        let resp = Response::Error {
            code: ErrorCode::Timeout,
            message: "deadline exceeded".to_string(),
        };
        let bytes = encode(&resp).unwrap();
        assert_eq!(decode::<Response>(&bytes).unwrap(), resp);
    }

    #[test]
    fn idempotency_table_matches_retry_policy() {
        let predict = Request::Predict {
            source: "x = 1\n".to_string(),
        };
        let add = Request::AddMarker {
            source: "x = 1\n".to_string(),
            symbol: "x".to_string(),
            ty: "int".to_string(),
        };
        assert!(predict.idempotent());
        assert!(Request::Stats.idempotent());
        assert!(Request::Reindex.idempotent());
        assert!(Request::Drain.idempotent());
        assert!(!add.idempotent());
        assert!(!Request::Shutdown.idempotent());
    }

    #[test]
    fn resilience_codes_round_trip() {
        for code in [
            ErrorCode::Internal,
            ErrorCode::Quarantined,
            ErrorCode::Draining,
        ] {
            let resp = Response::Error {
                code,
                message: code.to_string(),
            };
            let bytes = encode(&resp).unwrap();
            assert_eq!(decode::<Response>(&bytes).unwrap(), resp);
        }
        let bytes = encode(&Response::Draining).unwrap();
        assert_eq!(decode::<Response>(&bytes).unwrap(), Response::Draining);
    }
}
