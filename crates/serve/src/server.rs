//! The serve daemon: accept loop, per-connection readers, and the
//! single-threaded batching engine that owns the trained system.
//!
//! # Threading model
//!
//! One *engine* thread (the caller of [`Server::run`]) owns the
//! `&mut TrainedSystem` and is the only thread that touches the model
//! or the type map. Connection threads decode frames into [`Request`]s
//! and push them over a **bounded** channel; the engine drains up to
//! `batch_max` queued jobs per pass and replies through per-job
//! one-shot channels. When the queue is full, the connection thread
//! answers [`ErrorCode::Overloaded`] itself — backpressure never
//! blocks a reader on a slow engine.
//!
//! # Determinism
//!
//! Jobs are processed strictly in arrival order. Maximal runs of
//! consecutive `Predict` jobs are batched into one
//! [`TrainedSystem::predict_sources`] call, whose per-source results
//! are exactly what lone `predict_source` calls return (ordered pool
//! reduction; sources are independent). Mutating requests
//! (`add-marker`, `reindex`) are natural barriers because the engine
//! is single-threaded. Net effect: every reply is byte-identical to a
//! one-shot CLI run against the same system state, at any thread or
//! client count.

use crate::protocol::{
    decode, encode, read_frame, write_frame, ErrorCode, FrameError, Request, Response, ServerStats,
    SymbolHints,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use typilus::{AddMarkerError, TrainedSystem};
use typilus_types::PyType;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7977`. Port `0` binds an
    /// ephemeral port; [`Server::endpoint`] reports the resolved one.
    Tcp(String),
    /// A Unix-domain socket path. A stale socket file at the path is
    /// removed at bind time and the live one at shutdown.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Tunables of a serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Most queued jobs drained into one engine pass (consecutive
    /// predicts among them share one pooled forward pass).
    pub batch_max: usize,
    /// Bound of the request queue; a full queue answers
    /// [`ErrorCode::Overloaded`] instead of blocking the reader.
    pub queue_max: usize,
    /// Per-request deadline in milliseconds: a job still queued past
    /// it is answered [`ErrorCode::Timeout`] instead of being run.
    pub timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            batch_max: 16,
            queue_max: 256,
            timeout_ms: 10_000,
        }
    }
}

/// What a finished serve run did, for the operator's log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Requests accepted (decoded frames).
    pub requests: u64,
    /// Predict requests answered with predictions.
    pub predicts: u64,
    /// Markers bound through `add-marker`.
    pub markers_added: u64,
    /// Engine batches executed.
    pub batches: u64,
    /// Largest batch drained in one pass.
    pub largest_batch: u64,
    /// Error replies sent (any [`ErrorCode`]).
    pub errors: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    predicts: AtomicU64,
    markers_added: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
    errors: AtomicU64,
}

impl Counters {
    fn summary(&self) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::SeqCst),
            predicts: self.predicts.load(Ordering::SeqCst),
            markers_added: self.markers_added.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            largest_batch: self.largest_batch.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
        }
    }
}

/// One queued request plus its reply channel and deadline.
struct Job {
    request: Request,
    reply: SyncSender<Response>,
    deadline: Instant,
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl ListenerKind {
    fn accept(&self) -> std::io::Result<StreamKind> {
        match self {
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| StreamKind::Tcp(s)),
            ListenerKind::Unix(l) => l.accept().map(|(s, _)| StreamKind::Unix(s)),
        }
    }
}

enum StreamKind {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.read(buf),
            StreamKind::Unix(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.write(buf),
            StreamKind::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.flush(),
            StreamKind::Unix(s) => s.flush(),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: ListenerKind,
    endpoint: Endpoint,
    options: ServeOptions,
}

impl Server {
    /// Binds the endpoint. A stale Unix socket file is removed first;
    /// TCP port `0` binds an ephemeral port (see [`Server::endpoint`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, ...).
    pub fn bind(endpoint: &Endpoint, options: ServeOptions) -> std::io::Result<Server> {
        let (listener, resolved) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = l.local_addr()?.to_string();
                (ListenerKind::Tcp(l), Endpoint::Tcp(actual))
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                (ListenerKind::Unix(l), Endpoint::Unix(path.clone()))
            }
        };
        Ok(Server {
            listener,
            endpoint: resolved,
            options,
        })
    }

    /// The resolved endpoint the server listens on (for TCP port `0`,
    /// the actual ephemeral address).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Runs the daemon until a [`Request::Shutdown`] arrives. The
    /// calling thread becomes the engine and is the only thread that
    /// touches `system`; serving mutates process memory only — no
    /// artifact on disk is written, so a kill at any moment leaves
    /// them untouched.
    pub fn run(self, system: &mut TrainedSystem) -> ServeSummary {
        let Server {
            listener,
            endpoint,
            options,
        } = self;
        let (jobs_tx, jobs_rx) = sync_channel::<Job>(options.queue_max.max(1));
        // The conn thread that writes the `Bye` reply acks here, so
        // the engine never lets the process exit while the farewell
        // frame is still unflushed (the client would see a closed
        // connection instead of a clean shutdown).
        let (bye_tx, bye_rx) = sync_channel::<()>(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let timeout = Duration::from_millis(options.timeout_ms.max(1));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            thread::spawn(move || {
                accept_loop(listener, jobs_tx, bye_tx, shutdown, counters, timeout)
            })
        };

        engine_loop(
            &options, &endpoint, &jobs_rx, &bye_rx, system, &shutdown, &counters,
        );

        let _ = accept.join();
        if let Endpoint::Unix(path) = &endpoint {
            let _ = std::fs::remove_file(path);
        }
        counters.summary()
    }
}

/// Drains and executes jobs until shutdown. Strict arrival order;
/// maximal consecutive predict runs share one pooled forward pass.
// lint: root(serve)
fn engine_loop(
    options: &ServeOptions,
    endpoint: &Endpoint,
    jobs_rx: &Receiver<Job>,
    bye_rx: &Receiver<()>,
    system: &mut TrainedSystem,
    shutdown: &AtomicBool,
    counters: &Counters,
) {
    let batch_max = options.batch_max.max(1);
    'serve: loop {
        let first = match jobs_rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut batch = vec![first];
        while batch.len() < batch_max {
            match jobs_rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        counters.batches.fetch_add(1, Ordering::SeqCst);
        counters
            .largest_batch
            .fetch_max(batch.len() as u64, Ordering::SeqCst);

        // One clock read per batch; the deadline decision is
        // operational (drop stale work) and never reaches reply
        // payloads or artifacts.
        // lint: allow(D6) — request-timeout bookkeeping, not a result path
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if now > job.deadline {
                send_reply(
                    counters,
                    &job,
                    error_reply(ErrorCode::Timeout, "request timed out in queue"),
                );
            } else {
                live.push(job);
            }
        }

        // Index-free dispatch (lint rule S3): walk the batch as a
        // shrinking slice, splitting a maximal predict run off the
        // front when one starts.
        let mut rest: &[Job] = &live;
        while let Some((first, tail)) = rest.split_first() {
            match &first.request {
                Request::Predict { .. } => {
                    let run_len = 1 + tail
                        .iter()
                        .take_while(|job| matches!(job.request, Request::Predict { .. }))
                        .count();
                    let (run, after) = rest.split_at(run_len);
                    let sources: Vec<String> = run
                        .iter()
                        .map(|job| match &job.request {
                            Request::Predict { source } => source.clone(),
                            _ => String::new(),
                        })
                        .collect();
                    let results = system.predict_sources(&sources);
                    for (job, result) in run.iter().zip(results) {
                        let resp = match result {
                            Ok(preds) => {
                                counters.predicts.fetch_add(1, Ordering::SeqCst);
                                Response::Predictions(preds.iter().map(SymbolHints::of).collect())
                            }
                            Err(e) => error_reply(ErrorCode::Parse, &e.to_string()),
                        };
                        send_reply(counters, job, resp);
                    }
                    rest = after;
                }
                Request::AddMarker { source, symbol, ty } => {
                    let resp = match ty.parse::<PyType>() {
                        Err(e) => error_reply(ErrorCode::BadType, &e.to_string()),
                        Ok(parsed) => match system.add_marker(source, symbol, parsed) {
                            Ok(markers) => {
                                counters.markers_added.fetch_add(1, Ordering::SeqCst);
                                Response::MarkerAdded { markers }
                            }
                            Err(e) => error_reply(add_marker_code(&e), &e.to_string()),
                        },
                    };
                    send_reply(counters, first, resp);
                    rest = tail;
                }
                Request::Reindex => {
                    // Disjoint field borrows: the pool lives in
                    // `system.pool`, the rebuild mutates
                    // `system.type_map`.
                    let pool = system
                        .pool
                        .get_or_create(|| system.config.parallelism.resolve());
                    let resp = match system.type_map.build_sharded_index(
                        &system.config.space,
                        system.config.seed,
                        Some(pool),
                    ) {
                        Ok(()) => Response::Reindexed {
                            markers: system.type_map.len(),
                            index: system.type_map.index_kind().to_string(),
                        },
                        Err(e) => error_reply(ErrorCode::Space, &e.to_string()),
                    };
                    send_reply(counters, first, resp);
                    rest = tail;
                }
                Request::Stats => {
                    let resp = Response::Stats(stats(system, counters));
                    send_reply(counters, first, resp);
                    rest = tail;
                }
                Request::Shutdown => {
                    shutdown.store(true, Ordering::SeqCst);
                    send_reply(counters, first, Response::Bye);
                    for job in tail {
                        send_reply(
                            counters,
                            job,
                            error_reply(ErrorCode::ShuttingDown, "server is shutting down"),
                        );
                    }
                    // Unblock the accept loop so it can observe the
                    // flag and exit.
                    nudge(endpoint);
                    while let Ok(job) = jobs_rx.try_recv() {
                        send_reply(
                            counters,
                            &job,
                            error_reply(ErrorCode::ShuttingDown, "server is shutting down"),
                        );
                    }
                    // Wait (bounded) for the conn thread to flush the
                    // `Bye` frame before tearing the process down; a
                    // client that vanished first simply never acks.
                    let _ = bye_rx.recv_timeout(Duration::from_secs(2));
                    break 'serve;
                }
            }
        }
    }
}

/// Maps an adaptation failure to its wire code.
fn add_marker_code(e: &AddMarkerError) -> ErrorCode {
    match e {
        AddMarkerError::Parse(_) => ErrorCode::Parse,
        AddMarkerError::SymbolNotFound { .. } => ErrorCode::SymbolNotFound,
        AddMarkerError::NoEmbedding => ErrorCode::NoEmbedding,
        AddMarkerError::Space(_) => ErrorCode::Space,
    }
}

fn error_reply(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
    }
}

/// Sends a reply to a job's connection thread, counting error replies.
/// A gone receiver (client disconnected or timed out) is not an error.
fn send_reply(counters: &Counters, job: &Job, resp: Response) {
    if matches!(resp, Response::Error { .. }) {
        counters.errors.fetch_add(1, Ordering::SeqCst);
    }
    let _ = job.reply.send(resp);
}

fn stats(system: &TrainedSystem, counters: &Counters) -> ServerStats {
    let s = counters.summary();
    ServerStats {
        markers: system.type_map.len(),
        distinct_types: system.type_map.distinct_types(),
        overlay: system.type_map.overlay_len(),
        dim: system.type_map.dim(),
        index: system.type_map.index_kind().to_string(),
        requests: s.requests,
        predicts: s.predicts,
        markers_added: s.markers_added,
        batches: s.batches,
        largest_batch: s.largest_batch,
        errors: s.errors,
        warnings: typilus_nn::warning_counts(),
    }
}

/// Opens and immediately drops a connection to the endpoint, so an
/// accept loop blocked in `accept()` wakes up and re-checks the
/// shutdown flag.
fn nudge(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr.as_str());
        }
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

// lint: root(serve)
fn accept_loop(
    listener: ListenerKind,
    jobs: SyncSender<Job>,
    bye_ack: SyncSender<()>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    timeout: Duration,
) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let jobs = jobs.clone();
        let bye_ack = bye_ack.clone();
        let shutdown = Arc::clone(&shutdown);
        let counters = Arc::clone(&counters);
        thread::spawn(move || handle_conn(stream, jobs, bye_ack, shutdown, counters, timeout));
    }
}

/// Reads frames off one connection, queues them for the engine, and
/// writes the replies back. Client misbehaviour degrades only this
/// connection: malformed payloads get an error reply and the stream
/// stays usable (framing is intact); an oversized prefix or mid-frame
/// disconnect closes the stream.
// lint: root(serve)
fn handle_conn(
    mut stream: StreamKind,
    jobs: SyncSender<Job>,
    bye_ack: SyncSender<()>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    timeout: Duration,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
            Err(FrameError::Oversized { len, max }) => {
                // The stream cannot be resynchronised; reply and drop.
                counters.errors.fetch_add(1, Ordering::SeqCst);
                let resp = error_reply(
                    ErrorCode::Oversized,
                    &format!("frame of {len} bytes exceeds the {max}-byte limit"),
                );
                let _ = write_reply(&mut stream, &resp);
                break;
            }
        };
        let request: Request = match decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                counters.errors.fetch_add(1, Ordering::SeqCst);
                let resp = error_reply(ErrorCode::Malformed, &format!("undecodable request: {e}"));
                if write_reply(&mut stream, &resp).is_err() {
                    break;
                }
                continue;
            }
        };
        counters.requests.fetch_add(1, Ordering::SeqCst);
        if shutdown.load(Ordering::SeqCst) {
            counters.errors.fetch_add(1, Ordering::SeqCst);
            let resp = error_reply(ErrorCode::ShuttingDown, "server is shutting down");
            let _ = write_reply(&mut stream, &resp);
            break;
        }
        let (reply_tx, reply_rx) = sync_channel::<Response>(1);
        // The deadline starts when the request is accepted off the
        // wire; it is compared once per engine batch.
        // lint: allow(D6) — request-timeout bookkeeping, not a result path
        let deadline = Instant::now() + timeout;
        let job = Job {
            request,
            reply: reply_tx,
            deadline,
        };
        let resp = match jobs.try_send(job) {
            Ok(()) => {
                // Backstop far beyond the engine's own deadline check,
                // so a conn thread can never hang forever.
                match reply_rx.recv_timeout(timeout * 2 + Duration::from_secs(1)) {
                    Ok(resp) => resp,
                    Err(_) => {
                        counters.errors.fetch_add(1, Ordering::SeqCst);
                        error_reply(ErrorCode::Timeout, "no engine reply before the deadline")
                    }
                }
            }
            Err(TrySendError::Full(_)) => {
                counters.errors.fetch_add(1, Ordering::SeqCst);
                error_reply(ErrorCode::Overloaded, "request queue is full; retry")
            }
            Err(TrySendError::Disconnected(_)) => {
                counters.errors.fetch_add(1, Ordering::SeqCst);
                error_reply(ErrorCode::ShuttingDown, "server is shutting down")
            }
        };
        let is_bye = matches!(resp, Response::Bye);
        let written = write_reply(&mut stream, &resp).is_ok();
        if is_bye && written {
            let _ = bye_ack.try_send(());
        }
        if !written || is_bye {
            break;
        }
    }
}

fn write_reply(stream: &mut StreamKind, resp: &Response) -> Result<(), FrameError> {
    let bytes = encode(resp).map_err(|_| FrameError::Closed)?;
    write_frame(stream, &bytes)
}
