//! The serve daemon: accept loop, per-connection readers, and the
//! single-threaded batching engine that owns the trained system.
//!
//! # Threading model
//!
//! One *engine* thread (the caller of [`Server::run`]) owns the
//! `&mut TrainedSystem` and is the only thread that touches the model
//! or the type map. Connection threads decode frames into [`Request`]s
//! and push them over a **bounded** channel; the engine drains up to
//! `batch_max` queued jobs (and at most `batch_bytes_max` source
//! bytes) per pass and replies through per-job one-shot channels. When
//! the queue is full, the connection thread answers
//! [`ErrorCode::Overloaded`] itself — backpressure never blocks a
//! reader on a slow engine.
//!
//! # Supervision
//!
//! Every batch is dispatched inside `catch_unwind`: a panic anywhere
//! in the predict / add-marker path answers the affected requests with
//! a typed [`ErrorCode::Internal`] reply, rebuilds the worker pool
//! (and with it every worker thread's prediction scratch), bumps
//! `panics_recovered`, and keeps serving. A request whose batch
//! panicked twice is *quarantined*: further identical requests are
//! refused with [`ErrorCode::Quarantined`] instead of being retried
//! into a third crash. [`Request::Drain`] flips the server into a
//! draining state — existing connections keep being served, new ones
//! get one [`ErrorCode::Draining`] frame and are dropped — and the
//! current health (`ok` / `degraded` / `draining`) rides along in
//! every [`ServerStats`] reply.
//!
//! # Determinism
//!
//! Jobs are processed strictly in arrival order. Maximal runs of
//! consecutive `Predict` jobs are batched into one
//! [`TrainedSystem::predict_sources`] call, whose per-source results
//! are exactly what lone `predict_source` calls return (ordered pool
//! reduction; sources are independent). Mutating requests
//! (`add-marker`, `reindex`) are natural barriers because the engine
//! is single-threaded. Net effect: every reply is byte-identical to a
//! one-shot CLI run against the same system state, at any thread or
//! client count — including after a recovered panic, because recovery
//! replaces only the pool, never the model or the type map.

use crate::protocol::{
    decode, encode, read_frame, write_frame, ErrorCode, FrameError, Health, Request, Response,
    ServerStats, SymbolHints,
};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use typilus::atomic_io::crc64;
use typilus::faults::Fault;
use typilus::{AddMarkerError, TrainedSystem};
use typilus_nn::PoolCell;
use typilus_types::PyType;

/// Batches containing a request with this many prior panic
/// involvements refuse it with [`ErrorCode::Quarantined`].
const QUARANTINE_AFTER: u32 = 2;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7977`. Port `0` binds an
    /// ephemeral port; [`Server::endpoint`] reports the resolved one.
    Tcp(String),
    /// A Unix-domain socket path. A stale socket file at the path is
    /// removed at bind time and the live one at shutdown.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Tunables of a serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Most queued jobs drained into one engine pass (consecutive
    /// predicts among them share one pooled forward pass).
    pub batch_max: usize,
    /// Most request source bytes drained into one engine pass — one
    /// giant snippet cannot starve every other queued request for a
    /// whole batch; later jobs simply wait for the next pass.
    pub batch_bytes_max: usize,
    /// Bound of the request queue; a full queue answers
    /// [`ErrorCode::Overloaded`] instead of blocking the reader.
    pub queue_max: usize,
    /// Per-request deadline in milliseconds: a job still queued past
    /// it is answered [`ErrorCode::Timeout`] instead of being run.
    pub timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            batch_max: 16,
            batch_bytes_max: 4 * 1024 * 1024,
            queue_max: 256,
            timeout_ms: 10_000,
        }
    }
}

/// What a finished serve run did, for the operator's log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Requests accepted (decoded frames).
    pub requests: u64,
    /// Predict requests answered with predictions.
    pub predicts: u64,
    /// Markers bound through `add-marker`.
    pub markers_added: u64,
    /// Engine batches executed.
    pub batches: u64,
    /// Largest batch drained in one pass.
    pub largest_batch: u64,
    /// Error replies sent (any [`ErrorCode`]).
    pub errors: u64,
    /// Engine panics caught and recovered by the supervisor.
    pub panics_recovered: u64,
    /// Request hashes quarantined at the end of the run.
    pub quarantined: u64,
    /// Reply writes that failed because the peer was gone.
    pub client_gone: u64,
    /// Reply writes that failed for server-side reasons.
    pub write_faults: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    predicts: AtomicU64,
    markers_added: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
    errors: AtomicU64,
    panics_recovered: AtomicU64,
    quarantined: AtomicU64,
    client_gone: AtomicU64,
    write_faults: AtomicU64,
}

impl Counters {
    fn summary(&self) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::SeqCst),
            predicts: self.predicts.load(Ordering::SeqCst),
            markers_added: self.markers_added.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            largest_batch: self.largest_batch.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            panics_recovered: self.panics_recovered.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            client_gone: self.client_gone.load(Ordering::SeqCst),
            write_faults: self.write_faults.load(Ordering::SeqCst),
        }
    }
}

/// One queued request plus its reply channel and deadline.
struct Job {
    request: Request,
    reply: SyncSender<Response>,
    deadline: Instant,
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl ListenerKind {
    fn accept(&self) -> std::io::Result<StreamKind> {
        match self {
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| StreamKind::Tcp(s)),
            ListenerKind::Unix(l) => l.accept().map(|(s, _)| StreamKind::Unix(s)),
        }
    }
}

enum StreamKind {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.read(buf),
            StreamKind::Unix(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.write(buf),
            StreamKind::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.flush(),
            StreamKind::Unix(s) => s.flush(),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: ListenerKind,
    endpoint: Endpoint,
    options: ServeOptions,
}

impl Server {
    /// Binds the endpoint. A stale Unix socket file is removed first;
    /// TCP port `0` binds an ephemeral port (see [`Server::endpoint`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, ...).
    pub fn bind(endpoint: &Endpoint, options: ServeOptions) -> std::io::Result<Server> {
        let (listener, resolved) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = l.local_addr()?.to_string();
                (ListenerKind::Tcp(l), Endpoint::Tcp(actual))
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                (ListenerKind::Unix(l), Endpoint::Unix(path.clone()))
            }
        };
        Ok(Server {
            listener,
            endpoint: resolved,
            options,
        })
    }

    /// The resolved endpoint the server listens on (for TCP port `0`,
    /// the actual ephemeral address).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Runs the daemon until a [`Request::Shutdown`] arrives. The
    /// calling thread becomes the engine and is the only thread that
    /// touches `system`; serving mutates process memory only — no
    /// artifact on disk is written, so a kill at any moment leaves
    /// them untouched.
    pub fn run(self, system: &mut TrainedSystem) -> ServeSummary {
        let Server {
            listener,
            endpoint,
            options,
        } = self;
        let (jobs_tx, jobs_rx) = sync_channel::<Job>(options.queue_max.max(1));
        // The conn thread that writes the `Bye` reply acks here, so
        // the engine never lets the process exit while the farewell
        // frame is still unflushed (the client would see a closed
        // connection instead of a clean shutdown).
        let (bye_tx, bye_rx) = sync_channel::<()>(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let timeout = Duration::from_millis(options.timeout_ms.max(1));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let draining = Arc::clone(&draining);
            let counters = Arc::clone(&counters);
            thread::spawn(move || {
                accept_loop(
                    listener, jobs_tx, bye_tx, shutdown, draining, counters, timeout,
                )
            })
        };

        engine_loop(
            &options, &endpoint, &jobs_rx, &bye_rx, system, &shutdown, &draining, &counters,
        );

        let _ = accept.join();
        if let Endpoint::Unix(path) = &endpoint {
            let _ = std::fs::remove_file(path);
        }
        counters.summary()
    }
}

/// Drains and supervises batches until shutdown. Strict arrival
/// order; maximal consecutive predict runs share one pooled forward
/// pass; every batch runs inside `catch_unwind` so a panicking
/// request degrades to a typed error instead of killing the daemon.
// lint: root(serve)
#[allow(clippy::too_many_arguments)]
fn engine_loop(
    options: &ServeOptions,
    endpoint: &Endpoint,
    jobs_rx: &Receiver<Job>,
    bye_rx: &Receiver<()>,
    system: &mut TrainedSystem,
    shutdown: &AtomicBool,
    draining: &AtomicBool,
    counters: &Counters,
) {
    let batch_max = options.batch_max.max(1);
    let batch_bytes_max = options.batch_bytes_max.max(1);
    // Panic involvements per request hash; at [`QUARANTINE_AFTER`]
    // the request is refused instead of run. Engine-local: no lock,
    // no growth beyond distinct poisoned requests.
    let mut quarantine: BTreeMap<u64, u32> = BTreeMap::new();
    'serve: loop {
        let first = match jobs_rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut bytes = request_source_bytes(&first.request);
        let mut batch = vec![first];
        while batch.len() < batch_max && bytes < batch_bytes_max {
            match jobs_rx.try_recv() {
                Ok(job) => {
                    bytes += request_source_bytes(&job.request);
                    batch.push(job);
                }
                Err(_) => break,
            }
        }
        counters.batches.fetch_add(1, Ordering::SeqCst);
        counters
            .largest_batch
            .fetch_max(batch.len() as u64, Ordering::SeqCst);

        // One clock read per batch; the deadline decision is
        // operational (drop stale work) and never reaches reply
        // payloads or artifacts.
        // lint: allow(D6) — request-timeout bookkeeping, not a result path
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for job in batch {
            if now > job.deadline {
                send_reply(
                    counters,
                    &job,
                    error_reply(ErrorCode::Timeout, "request timed out in queue"),
                );
            } else if is_quarantined(&quarantine, &job.request) {
                send_reply(
                    counters,
                    &job,
                    error_reply(
                        ErrorCode::Quarantined,
                        "request made the engine panic repeatedly and is quarantined",
                    ),
                );
            } else {
                live.push(job);
            }
        }

        // Supervised dispatch: a panic anywhere below answers the
        // batch with typed `internal` errors and serving continues.
        let outcome = match catch_unwind(AssertUnwindSafe(|| {
            dispatch_batch(&live, system, shutdown, draining, counters)
        })) {
            Ok(outcome) => outcome,
            Err(_) => {
                recover_from_panic(&live, system, counters, &mut quarantine);
                BatchOutcome::Continue
            }
        };
        if matches!(outcome, BatchOutcome::Shutdown) {
            // Unblock the accept loop so it can observe the flag and
            // exit, then answer everything still queued.
            nudge(endpoint);
            while let Ok(job) = jobs_rx.try_recv() {
                send_reply(
                    counters,
                    &job,
                    error_reply(ErrorCode::ShuttingDown, "server is shutting down"),
                );
            }
            // Wait (bounded) for the conn thread to flush the `Bye`
            // frame before tearing the process down; a client that
            // vanished first simply never acks.
            let _ = bye_rx.recv_timeout(Duration::from_secs(2));
            break 'serve;
        }
    }
}

/// What [`dispatch_batch`] tells the engine loop to do next.
enum BatchOutcome {
    /// Keep serving.
    Continue,
    /// A [`Request::Shutdown`] was answered; drain and exit.
    Shutdown,
}

/// Executes one deadline- and quarantine-filtered batch in strict
/// arrival order. Runs inside the supervisor's `catch_unwind`: a
/// panic here is recovered by [`recover_from_panic`], so the call
/// chains below this point are not panic sinks for the daemon.
fn dispatch_batch(
    jobs: &[Job],
    system: &mut TrainedSystem,
    shutdown: &AtomicBool,
    draining: &AtomicBool,
    counters: &Counters,
) -> BatchOutcome {
    if let Some(fault) = typilus::faults::check("serve.engine.batch") {
        fault.trigger_panic("serve.engine.batch");
    }
    // Index-free dispatch (lint rule S3): walk the batch as a
    // shrinking slice, splitting a maximal predict run off the front
    // when one starts.
    let mut rest: &[Job] = jobs;
    while let Some((first, tail)) = rest.split_first() {
        match &first.request {
            Request::Predict { .. } => {
                let run_len = 1 + tail
                    .iter()
                    .take_while(|job| matches!(job.request, Request::Predict { .. }))
                    .count();
                let (run, after) = rest.split_at(run_len);
                let sources: Vec<String> = run
                    .iter()
                    .map(|job| match &job.request {
                        Request::Predict { source } => source.clone(),
                        _ => String::new(),
                    })
                    .collect();
                let results = system.predict_sources(&sources);
                for (job, result) in run.iter().zip(results) {
                    let resp = match result {
                        Ok(preds) => {
                            counters.predicts.fetch_add(1, Ordering::SeqCst);
                            Response::Predictions(preds.iter().map(SymbolHints::of).collect())
                        }
                        Err(e) => error_reply(ErrorCode::Parse, &e.to_string()),
                    };
                    send_reply(counters, job, resp);
                }
                rest = after;
            }
            Request::AddMarker { source, symbol, ty } => {
                let resp = if typilus::faults::check("serve.add_marker").is_some() {
                    error_reply(
                        ErrorCode::Space,
                        "injected fault at serve.add_marker: marker not bound",
                    )
                } else {
                    match ty.parse::<PyType>() {
                        Err(e) => error_reply(ErrorCode::BadType, &e.to_string()),
                        Ok(parsed) => match system.add_marker(source, symbol, parsed) {
                            Ok(markers) => {
                                counters.markers_added.fetch_add(1, Ordering::SeqCst);
                                Response::MarkerAdded { markers }
                            }
                            Err(e) => error_reply(add_marker_code(&e), &e.to_string()),
                        },
                    }
                };
                send_reply(counters, first, resp);
                rest = tail;
            }
            Request::Reindex => {
                let resp = if typilus::faults::check("serve.reindex").is_some() {
                    error_reply(
                        ErrorCode::Space,
                        "injected fault at serve.reindex: index unchanged",
                    )
                } else {
                    // Disjoint field borrows: the pool lives in
                    // `system.pool`, the rebuild mutates
                    // `system.type_map`.
                    let pool = system
                        .pool
                        .get_or_create(|| system.config.parallelism.resolve());
                    match system.type_map.build_sharded_index(
                        &system.config.space,
                        system.config.seed,
                        Some(pool),
                    ) {
                        Ok(()) => Response::Reindexed {
                            markers: system.type_map.len(),
                            index: system.type_map.index_kind().to_string(),
                        },
                        Err(e) => error_reply(ErrorCode::Space, &e.to_string()),
                    }
                };
                send_reply(counters, first, resp);
                rest = tail;
            }
            Request::Stats => {
                let resp = Response::Stats(stats(system, counters, draining));
                send_reply(counters, first, resp);
                rest = tail;
            }
            Request::Drain => {
                draining.store(true, Ordering::SeqCst);
                send_reply(counters, first, Response::Draining);
                rest = tail;
            }
            Request::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                send_reply(counters, first, Response::Bye);
                for job in tail {
                    send_reply(
                        counters,
                        job,
                        error_reply(ErrorCode::ShuttingDown, "server is shutting down"),
                    );
                }
                return BatchOutcome::Shutdown;
            }
        }
    }
    BatchOutcome::Continue
}

/// Recovery path for a caught engine panic: answer every
/// not-yet-replied job of the batch with a typed `internal` error,
/// charge the batch's requests to the quarantine, and rebuild the
/// worker pool — a panic can leave worker threads' prediction scratch
/// in an arbitrary state, and a fresh [`PoolCell`] lazily respawns
/// clean workers on the next predict. The model and the type map are
/// never touched, which is what keeps post-recovery replies
/// byte-identical to one-shot runs.
fn recover_from_panic(
    batch: &[Job],
    system: &mut TrainedSystem,
    counters: &Counters,
    quarantine: &mut BTreeMap<u64, u32>,
) {
    counters.panics_recovered.fetch_add(1, Ordering::SeqCst);
    for job in batch {
        send_reply_best_effort(
            counters,
            job,
            error_reply(
                ErrorCode::Internal,
                "engine panicked while serving this batch; state was rebuilt",
            ),
        );
        if let Some(hash) = request_hash(&job.request) {
            *quarantine.entry(hash).or_insert(0) += 1;
        }
    }
    let poisoned = quarantine
        .values()
        .filter(|&&count| count >= QUARANTINE_AFTER)
        .count() as u64;
    counters.quarantined.store(poisoned, Ordering::SeqCst);
    system.pool = PoolCell::new();
}

/// Whether the quarantine refuses this request.
fn is_quarantined(quarantine: &BTreeMap<u64, u32>, request: &Request) -> bool {
    request_hash(request)
        .and_then(|hash| quarantine.get(&hash))
        .is_some_and(|&count| count >= QUARANTINE_AFTER)
}

/// Quarantine identity of a request: the CRC-64 of its payload
/// fields, NUL-separated so `("ab","c")` and `("a","bc")` differ.
/// Control requests carry no payload and are never quarantined.
fn request_hash(request: &Request) -> Option<u64> {
    match request {
        Request::Predict { source } => Some(crc64(source.as_bytes())),
        Request::AddMarker { source, symbol, ty } => {
            let mut buf = Vec::with_capacity(source.len() + symbol.len() + ty.len() + 2);
            buf.extend_from_slice(source.as_bytes());
            buf.push(0);
            buf.extend_from_slice(symbol.as_bytes());
            buf.push(0);
            buf.extend_from_slice(ty.as_bytes());
            Some(crc64(&buf))
        }
        Request::Reindex | Request::Stats | Request::Shutdown | Request::Drain => None,
    }
}

/// Source bytes a request contributes to the per-batch byte cap.
fn request_source_bytes(request: &Request) -> usize {
    match request {
        Request::Predict { source } => source.len(),
        Request::AddMarker { source, .. } => source.len(),
        Request::Reindex | Request::Stats | Request::Shutdown | Request::Drain => 0,
    }
}

/// Maps an adaptation failure to its wire code.
fn add_marker_code(e: &AddMarkerError) -> ErrorCode {
    match e {
        AddMarkerError::Parse(_) => ErrorCode::Parse,
        AddMarkerError::SymbolNotFound { .. } => ErrorCode::SymbolNotFound,
        AddMarkerError::NoEmbedding => ErrorCode::NoEmbedding,
        AddMarkerError::Space(_) => ErrorCode::Space,
    }
}

fn error_reply(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
    }
}

/// Sends a reply to a job's connection thread, counting error replies.
/// A gone receiver (client disconnected or timed out) is not an error.
fn send_reply(counters: &Counters, job: &Job, resp: Response) {
    if matches!(resp, Response::Error { .. }) {
        counters.errors.fetch_add(1, Ordering::SeqCst);
    }
    let _ = job.reply.send(resp);
}

/// Post-panic variant of [`send_reply`]: `try_send`, because a job
/// that was already answered before the panic has a full or
/// disconnected reply channel, and the recovery path must never block
/// the engine on it.
fn send_reply_best_effort(counters: &Counters, job: &Job, resp: Response) {
    let is_error = matches!(resp, Response::Error { .. });
    if job.reply.try_send(resp).is_ok() && is_error {
        counters.errors.fetch_add(1, Ordering::SeqCst);
    }
}

fn stats(system: &TrainedSystem, counters: &Counters, draining: &AtomicBool) -> ServerStats {
    let s = counters.summary();
    let health = if draining.load(Ordering::SeqCst) {
        Health::Draining
    } else if s.panics_recovered > 0 || s.quarantined > 0 {
        Health::Degraded
    } else {
        Health::Ok
    };
    ServerStats {
        markers: system.type_map.len(),
        distinct_types: system.type_map.distinct_types(),
        overlay: system.type_map.overlay_len(),
        dim: system.type_map.dim(),
        index: system.type_map.index_kind().to_string(),
        requests: s.requests,
        predicts: s.predicts,
        markers_added: s.markers_added,
        batches: s.batches,
        largest_batch: s.largest_batch,
        errors: s.errors,
        panics_recovered: s.panics_recovered,
        quarantined: s.quarantined,
        client_gone: s.client_gone,
        write_faults: s.write_faults,
        health,
        warnings: typilus_nn::warning_counts(),
    }
}

/// Opens and immediately drops a connection to the endpoint, so an
/// accept loop blocked in `accept()` wakes up and re-checks the
/// shutdown flag.
fn nudge(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr.as_str());
        }
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

// lint: root(serve)
fn accept_loop(
    listener: ListenerKind,
    jobs: SyncSender<Job>,
    bye_ack: SyncSender<()>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    counters: Arc<Counters>,
    timeout: Duration,
) {
    loop {
        let mut stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if draining.load(Ordering::SeqCst) {
            // Draining: refuse the new connection with one typed
            // frame and drop it; established connections are
            // unaffected.
            counters.errors.fetch_add(1, Ordering::SeqCst);
            let resp = error_reply(
                ErrorCode::Draining,
                "server is draining and accepts no new connections",
            );
            let _ = write_reply_counted(&mut stream, &resp, &counters);
            continue;
        }
        let jobs = jobs.clone();
        let bye_ack = bye_ack.clone();
        let shutdown = Arc::clone(&shutdown);
        let counters = Arc::clone(&counters);
        thread::spawn(move || handle_conn(stream, jobs, bye_ack, shutdown, counters, timeout));
    }
}

/// Reads frames off one connection, queues them for the engine, and
/// writes the replies back. Client misbehaviour degrades only this
/// connection: malformed payloads get an error reply and the stream
/// stays usable (framing is intact); an oversized prefix or mid-frame
/// disconnect closes the stream.
// lint: root(serve)
fn handle_conn(
    mut stream: StreamKind,
    jobs: SyncSender<Job>,
    bye_ack: SyncSender<()>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    timeout: Duration,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
            Err(FrameError::Oversized { len, max }) => {
                // The stream cannot be resynchronised; reply and drop.
                counters.errors.fetch_add(1, Ordering::SeqCst);
                let resp = error_reply(
                    ErrorCode::Oversized,
                    &format!("frame of {len} bytes exceeds the {max}-byte limit"),
                );
                let _ = write_reply_counted(&mut stream, &resp, &counters);
                break;
            }
        };
        let request: Request = match decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                counters.errors.fetch_add(1, Ordering::SeqCst);
                let resp = error_reply(ErrorCode::Malformed, &format!("undecodable request: {e}"));
                if !write_reply_counted(&mut stream, &resp, &counters) {
                    break;
                }
                continue;
            }
        };
        counters.requests.fetch_add(1, Ordering::SeqCst);
        if shutdown.load(Ordering::SeqCst) {
            counters.errors.fetch_add(1, Ordering::SeqCst);
            let resp = error_reply(ErrorCode::ShuttingDown, "server is shutting down");
            let _ = write_reply_counted(&mut stream, &resp, &counters);
            break;
        }
        let (reply_tx, reply_rx) = sync_channel::<Response>(1);
        // The deadline starts when the request is accepted off the
        // wire; it is compared once per engine batch.
        // lint: allow(D6) — request-timeout bookkeeping, not a result path
        let deadline = Instant::now() + timeout;
        let job = Job {
            request,
            reply: reply_tx,
            deadline,
        };
        let resp = match jobs.try_send(job) {
            Ok(()) => {
                // Backstop far beyond the engine's own deadline check,
                // so a conn thread can never hang forever.
                match reply_rx.recv_timeout(timeout * 2 + Duration::from_secs(1)) {
                    Ok(resp) => resp,
                    Err(RecvTimeoutError::Disconnected) => {
                        // The engine dropped the reply channel without
                        // answering (it died or discarded the job) —
                        // tell the client *now* instead of making it
                        // sit out the whole backstop.
                        counters.errors.fetch_add(1, Ordering::SeqCst);
                        error_reply(
                            ErrorCode::Internal,
                            "engine dropped the request without a reply",
                        )
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        counters.errors.fetch_add(1, Ordering::SeqCst);
                        error_reply(ErrorCode::Timeout, "no engine reply before the deadline")
                    }
                }
            }
            Err(TrySendError::Full(_)) => {
                counters.errors.fetch_add(1, Ordering::SeqCst);
                error_reply(ErrorCode::Overloaded, "request queue is full; retry")
            }
            Err(TrySendError::Disconnected(_)) => {
                counters.errors.fetch_add(1, Ordering::SeqCst);
                error_reply(ErrorCode::ShuttingDown, "server is shutting down")
            }
        };
        let is_bye = matches!(resp, Response::Bye);
        let written = write_reply_counted(&mut stream, &resp, &counters);
        if is_bye && written {
            let _ = bye_ack.try_send(());
        }
        if !written || is_bye {
            break;
        }
    }
}

/// Writes a reply frame, classifying a failure as *client-gone*
/// (broken pipe / connection reset: the peer left, routine) or a
/// *server-side write fault* (anything else: worth alerting on).
/// Returns whether the write succeeded.
fn write_reply_counted(stream: &mut StreamKind, resp: &Response, counters: &Counters) -> bool {
    match write_reply(stream, resp) {
        Ok(()) => true,
        Err(FrameError::Io(e)) if is_client_gone(&e) => {
            counters.client_gone.fetch_add(1, Ordering::SeqCst);
            false
        }
        Err(_) => {
            counters.write_faults.fetch_add(1, Ordering::SeqCst);
            false
        }
    }
}

/// Error kinds a vanished peer produces on write.
fn is_client_gone(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

fn write_reply(stream: &mut StreamKind, resp: &Response) -> Result<(), FrameError> {
    let bytes = encode(resp).map_err(|_| FrameError::Closed)?;
    if let Some(fault) = typilus::faults::check("serve.reply.write") {
        match fault {
            Fault::IoError => {
                return Err(FrameError::Io(std::io::Error::other(
                    "injected fault at serve.reply.write",
                )));
            }
            Fault::ShortWrite(n) => {
                // A torn reply: prefix plus the first `n` payload
                // bytes, then failure — the client sees a mid-frame
                // I/O error, never a bad decode.
                let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
                let _ = stream.write_all(&len.to_le_bytes());
                let cut = bytes.len().min(n);
                let _ = stream.write_all(bytes.get(..cut).unwrap_or(&bytes));
                let _ = stream.flush();
                return Err(FrameError::Io(std::io::Error::other(
                    "injected short write at serve.reply.write",
                )));
            }
            Fault::Panic => fault.trigger_panic("serve.reply.write"),
        }
    }
    write_frame(stream, &bytes)
}
