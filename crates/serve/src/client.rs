//! A small synchronous client for the serve protocol — used by the
//! CLI's `query` verb, the protocol tests, and `bench_serve`.

use crate::protocol::{decode, encode, read_frame, write_frame, FrameError, Request, Response};
use crate::server::Endpoint;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

/// Errors of a client round trip.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting to the endpoint failed.
    Connect(std::io::Error),
    /// Frame-level failure (server closed the stream, oversized
    /// reply, mid-frame I/O error).
    Frame(FrameError),
    /// A payload failed to encode or decode.
    Codec(typilus_serbin::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "cannot connect to server: {e}"),
            ClientError::Frame(e) => write!(f, "protocol frame error: {e}"),
            ClientError::Codec(e) => write!(f, "protocol codec error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<typilus_serbin::Error> for ClientError {
    fn from(e: typilus_serbin::Error) -> Self {
        ClientError::Codec(e)
    }
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected client. One request is in flight at a time; replies
/// arrive in request order.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a serving endpoint.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the endpoint is unreachable.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str())
                .map(Stream::Tcp)
                .map_err(ClientError::Connect)?,
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(Stream::Unix)
                .map_err(ClientError::Connect)?,
        };
        Ok(Client { stream })
    }

    /// Sends one request and waits for its reply.
    ///
    /// # Errors
    ///
    /// Frame or codec failures; a server that closed the stream
    /// surfaces as [`FrameError::Closed`] inside
    /// [`ClientError::Frame`].
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let bytes = encode(request)?;
        write_frame(&mut self.stream, &bytes)?;
        let reply = read_frame(&mut self.stream)?;
        Ok(decode::<Response>(&reply)?)
    }

    /// Predicts type hints for a source snippet.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn predict(&mut self, source: &str) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Predict {
            source: source.to_string(),
        })
    }

    /// Binds one `(symbol-from-source, type)` marker into the server's
    /// type map.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn add_marker(
        &mut self,
        source: &str,
        symbol: &str,
        ty: &str,
    ) -> Result<Response, ClientError> {
        self.roundtrip(&Request::AddMarker {
            source: source.to_string(),
            symbol: symbol.to_string(),
            ty: ty.to_string(),
        })
    }

    /// Fetches server and type-map statistics.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Stats)
    }

    /// Asks the server to rebuild its TypeSpace index in memory.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn reindex(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Reindex)
    }

    /// Asks the server to shut down cleanly; the reply is
    /// [`Response::Bye`] and the connection closes after it.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Shutdown)
    }

    /// Writes raw bytes as one frame — test hook for malformed and
    /// hostile payloads.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Reads one reply frame and decodes it — pairs with
    /// [`Client::send_raw_frame`].
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn read_reply(&mut self) -> Result<Response, ClientError> {
        let reply = read_frame(&mut self.stream)?;
        Ok(decode::<Response>(&reply)?)
    }

    /// Writes arbitrary bytes to the stream without framing — test
    /// hook for truncated prefixes and mid-frame disconnects.
    ///
    /// # Errors
    ///
    /// Propagates the write failure as [`ClientError::Connect`].
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(ClientError::Connect)
    }
}
