//! A small synchronous client for the serve protocol — used by the
//! CLI's `query` verb, the protocol tests, and `bench_serve`.
//!
//! Two modes. [`Client::connect`] is the legacy blocking client: no
//! socket timeouts, no retries — it trusts the server completely.
//! [`Client::connect_with`] takes [`ClientOptions`] and survives a
//! hostile network: connect/read/write timeouts, reconnect with
//! bounded exponential backoff and *deterministic* seeded jitter (the
//! schedule is a pure function of `jitter_seed` — no wall-clock
//! entropy, so retry timing is reproducible), and an overall deadline
//! budget per [`Client::roundtrip`]. Retries happen only for requests
//! [`Request::idempotent`] declares safe to re-send: a lost
//! `add-marker` reply must not bind the marker twice.

use crate::protocol::{decode, encode, read_frame, write_frame, FrameError, Request, Response};
use crate::server::Endpoint;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::thread;
use std::time::{Duration, Instant};

/// Errors of a client round trip.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting to the endpoint failed.
    Connect(std::io::Error),
    /// Frame-level failure (server closed the stream, oversized
    /// reply, mid-frame I/O error).
    Frame(FrameError),
    /// A payload failed to encode or decode.
    Codec(typilus_serbin::Error),
    /// The overall deadline budget ran out before a reply arrived.
    Deadline {
        /// Attempts made before giving up (1 = only the initial try).
        attempts: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "cannot connect to server: {e}"),
            ClientError::Frame(e) => write!(f, "protocol frame error: {e}"),
            ClientError::Codec(e) => write!(f, "protocol codec error: {e}"),
            ClientError::Deadline { attempts } => {
                write!(f, "deadline budget exhausted after {attempts} attempt(s)")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<typilus_serbin::Error> for ClientError {
    fn from(e: typilus_serbin::Error) -> Self {
        ClientError::Codec(e)
    }
}

/// Resilience tunables of [`Client::connect_with`]. A zero disables
/// the corresponding timeout (block indefinitely), matching the
/// legacy [`Client::connect`] behaviour when everything is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Connect timeout in milliseconds (TCP only; Unix-socket
    /// connects are local and do not block on a live kernel).
    pub connect_timeout_ms: u64,
    /// Socket read timeout in milliseconds.
    pub read_timeout_ms: u64,
    /// Socket write timeout in milliseconds.
    pub write_timeout_ms: u64,
    /// Reconnect-and-resend attempts after the first try, applied
    /// only to [`Request::idempotent`] requests.
    pub retries: u32,
    /// First backoff delay in milliseconds; doubles per retry.
    pub backoff_base_ms: u64,
    /// Ceiling of the (pre-jitter) backoff delay in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the deterministic jitter stream. Same seed, same
    /// schedule — retry timing carries no wall-clock entropy.
    pub jitter_seed: u64,
    /// Overall budget per [`Client::roundtrip`] in milliseconds,
    /// covering every retry, backoff sleep and reconnect. Zero
    /// disables the budget.
    pub deadline_ms: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout_ms: 2_000,
            read_timeout_ms: 15_000,
            write_timeout_ms: 15_000,
            retries: 3,
            backoff_base_ms: 25,
            backoff_cap_ms: 1_000,
            jitter_seed: 0x7479_7069_6c75_7331, // "typilus1"
            deadline_ms: 30_000,
        }
    }
}

impl ClientOptions {
    /// The legacy profile: no timeouts, no retries, no deadline —
    /// exactly what [`Client::connect`] has always done.
    pub fn blocking() -> ClientOptions {
        ClientOptions {
            connect_timeout_ms: 0,
            read_timeout_ms: 0,
            write_timeout_ms: 0,
            retries: 0,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            jitter_seed: 0,
            deadline_ms: 0,
        }
    }

    /// The exact backoff schedule a client with these options sleeps
    /// through for its first `attempts` retries. Pure and
    /// deterministic: the jitter is drawn from a splitmix64 stream
    /// seeded by `jitter_seed`, so the same options always produce
    /// the same schedule — tests and operators can reason about retry
    /// timing exactly.
    pub fn backoff_schedule(&self, attempts: u32) -> Vec<Duration> {
        let mut rng = self.jitter_seed;
        (1..=attempts)
            .map(|attempt| Duration::from_millis(backoff_delay_ms(self, attempt, &mut rng)))
            .collect()
    }
}

/// The splitmix64 step: a tiny, well-mixed PRNG whose whole state is
/// one `u64` — deterministic jitter without any clock involvement.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 33)
}

/// Pre-sleep delay before retry `attempt` (1-based): exponential from
/// `backoff_base_ms` capped at `backoff_cap_ms`, then jittered into
/// `[0.75 × delay, 1.25 × delay)` from the deterministic stream.
fn backoff_delay_ms(options: &ClientOptions, attempt: u32, rng: &mut u64) -> u64 {
    let base = options.backoff_base_ms.max(1);
    let cap = options.backoff_cap_ms.max(base);
    let exponent = attempt.saturating_sub(1).min(16);
    let raw = base.saturating_mul(1u64 << exponent).min(cap);
    let span = (raw / 2).max(1);
    raw - raw / 4 + splitmix64(rng) % span
}

/// Whether a failed attempt is worth a reconnect-and-retry: transport
/// failures are (the server may be back, or a peer is healthy), while
/// codec errors and oversized frames are deterministic — retrying
/// them re-earns the same failure.
fn retriable(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Connect(_)
            | ClientError::Frame(FrameError::Closed)
            | ClientError::Frame(FrameError::Io(_))
    )
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    /// Applies socket read/write timeouts; `None` blocks forever.
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
            Stream::Unix(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected client. One request is in flight at a time; replies
/// arrive in request order.
pub struct Client {
    stream: Stream,
    endpoint: Endpoint,
    options: ClientOptions,
    /// Jitter stream state; advances once per backoff sleep.
    rng: u64,
}

impl Client {
    /// Connects to a serving endpoint with the legacy blocking
    /// profile: no timeouts, no retries.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the endpoint is unreachable.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        Client::connect_with(endpoint, ClientOptions::blocking())
    }

    /// Connects to a serving endpoint with explicit resilience
    /// options (see [`ClientOptions`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the endpoint is unreachable
    /// within the connect timeout.
    pub fn connect_with(
        endpoint: &Endpoint,
        options: ClientOptions,
    ) -> Result<Client, ClientError> {
        let stream = open_stream(endpoint, &options, None)?;
        Ok(Client {
            stream,
            endpoint: endpoint.clone(),
            options,
            rng: options.jitter_seed,
        })
    }

    /// Sends one request and waits for its reply. Under resilient
    /// options, a transport failure on an [`Request::idempotent`]
    /// request triggers reconnect-and-resend with deterministic
    /// backoff, all within the `deadline_ms` budget; non-idempotent
    /// requests (`add-marker`, `shutdown`) surface the first failure.
    ///
    /// # Errors
    ///
    /// Frame or codec failures; a server that closed the stream
    /// surfaces as [`FrameError::Closed`] inside
    /// [`ClientError::Frame`]; [`ClientError::Deadline`] when the
    /// budget runs out mid-retry.
    // lint: allow(D6) — deadline/backoff bookkeeping: timing gates retries, never reply payloads
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let deadline = (self.options.deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(self.options.deadline_ms));
        let mut last = self.try_roundtrip(request, deadline);
        for attempt in 1..=self.options.retries {
            let err = match last {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            if !request.idempotent() || !retriable(&err) {
                return Err(err);
            }
            let delay =
                Duration::from_millis(backoff_delay_ms(&self.options, attempt, &mut self.rng));
            if past_deadline(deadline, delay) {
                return Err(ClientError::Deadline { attempts: attempt });
            }
            thread::sleep(delay);
            last = open_stream(&self.endpoint, &self.options, deadline).and_then(|stream| {
                self.stream = stream;
                self.try_roundtrip(request, deadline)
            });
        }
        last
    }

    /// One unretried attempt: clamp socket timeouts to the remaining
    /// budget, write the frame, read the reply.
    fn try_roundtrip(
        &mut self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<Response, ClientError> {
        let read = effective_timeout(self.options.read_timeout_ms, deadline)?;
        let write = effective_timeout(self.options.write_timeout_ms, deadline)?;
        self.stream
            .set_timeouts(read, write)
            .map_err(ClientError::Connect)?;
        let bytes = encode(request)?;
        write_frame(&mut self.stream, &bytes)?;
        let reply = read_frame(&mut self.stream)?;
        Ok(decode::<Response>(&reply)?)
    }

    /// Predicts type hints for a source snippet.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn predict(&mut self, source: &str) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Predict {
            source: source.to_string(),
        })
    }

    /// Binds one `(symbol-from-source, type)` marker into the server's
    /// type map. Never retried: the reply could be lost *after* the
    /// marker was bound, and a resend would bind it twice.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn add_marker(
        &mut self,
        source: &str,
        symbol: &str,
        ty: &str,
    ) -> Result<Response, ClientError> {
        self.roundtrip(&Request::AddMarker {
            source: source.to_string(),
            symbol: symbol.to_string(),
            ty: ty.to_string(),
        })
    }

    /// Fetches server and type-map statistics (including health).
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Stats)
    }

    /// Asks the server to rebuild its TypeSpace index in memory.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn reindex(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Reindex)
    }

    /// Asks the server to stop accepting new connections while
    /// serving existing ones; the reply is [`Response::Draining`] and
    /// this connection stays usable.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn drain(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Drain)
    }

    /// Asks the server to shut down cleanly; the reply is
    /// [`Response::Bye`] and the connection closes after it.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Shutdown)
    }

    /// Writes raw bytes as one frame — test hook for malformed and
    /// hostile payloads.
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Reads one reply frame and decodes it — pairs with
    /// [`Client::send_raw_frame`].
    ///
    /// # Errors
    ///
    /// See [`Client::roundtrip`].
    pub fn read_reply(&mut self) -> Result<Response, ClientError> {
        let reply = read_frame(&mut self.stream)?;
        Ok(decode::<Response>(&reply)?)
    }

    /// Writes arbitrary bytes to the stream without framing — test
    /// hook for truncated prefixes and mid-frame disconnects.
    ///
    /// # Errors
    ///
    /// Propagates the write failure as [`ClientError::Connect`].
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(ClientError::Connect)
    }
}

/// Opens a stream to the endpoint, honouring the connect timeout and
/// any overall deadline.
fn open_stream(
    endpoint: &Endpoint,
    options: &ClientOptions,
    deadline: Option<Instant>,
) -> Result<Stream, ClientError> {
    let connect = effective_timeout(options.connect_timeout_ms, deadline)?;
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = match connect {
                Some(timeout) => {
                    let resolved = addr
                        .as_str()
                        .to_socket_addrs()
                        .map_err(ClientError::Connect)?
                        .next()
                        .ok_or_else(|| {
                            ClientError::Connect(std::io::Error::other(
                                "address resolved to no socket address",
                            ))
                        })?;
                    TcpStream::connect_timeout(&resolved, timeout).map_err(ClientError::Connect)?
                }
                None => TcpStream::connect(addr.as_str()).map_err(ClientError::Connect)?,
            };
            Ok(Stream::Tcp(stream))
        }
        Endpoint::Unix(path) => {
            // std offers no UnixStream::connect_timeout; a local
            // socket connect does not block on a live kernel, and the
            // read/write timeouts still bound everything after it.
            Ok(Stream::Unix(
                UnixStream::connect(path).map_err(ClientError::Connect)?,
            ))
        }
    }
}

/// The socket timeout to apply: the configured one (zero = none),
/// clamped to whatever remains of the overall deadline.
///
/// # Errors
///
/// [`ClientError::Deadline`] when the budget is already gone.
fn effective_timeout(
    configured_ms: u64,
    deadline: Option<Instant>,
) -> Result<Option<Duration>, ClientError> {
    let configured = (configured_ms > 0).then(|| Duration::from_millis(configured_ms));
    let Some(deadline) = deadline else {
        return Ok(configured);
    };
    // lint: allow(D6) — deadline budget accounting, not a result path
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ClientError::Deadline { attempts: 1 });
    }
    Ok(Some(configured.map_or(remaining, |c| c.min(remaining))))
}

/// Whether sleeping `delay` would overrun the deadline.
fn past_deadline(deadline: Option<Instant>, delay: Duration) -> bool {
    // lint: allow(D6) — deadline budget accounting, not a result path
    deadline.is_some_and(|d| Instant::now() + delay >= d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let options = ClientOptions {
            backoff_base_ms: 10,
            backoff_cap_ms: 100,
            jitter_seed: 42,
            ..ClientOptions::default()
        };
        let a = options.backoff_schedule(8);
        let b = options.backoff_schedule(8);
        assert_eq!(a, b, "same seed must give the same schedule");
        for (i, delay) in a.iter().enumerate() {
            // Jitter keeps every delay inside [0.75, 1.25) of the
            // capped exponential value.
            let raw = (10u64 << i.min(16)).min(100);
            let ms = u64::try_from(delay.as_millis()).unwrap_or(u64::MAX);
            assert!(
                ms >= raw - raw / 4,
                "delay {ms} below jitter floor of {raw}"
            );
            assert!(
                ms < raw + raw / 2,
                "delay {ms} above jitter ceiling of {raw}"
            );
        }
        let other = ClientOptions {
            jitter_seed: 43,
            ..options
        };
        assert_ne!(a, other.backoff_schedule(8), "different seeds must differ");
    }

    #[test]
    fn blocking_profile_disables_everything() {
        let options = ClientOptions::blocking();
        assert_eq!(options.retries, 0);
        assert_eq!(options.deadline_ms, 0);
        assert_eq!(effective_timeout(0, None).unwrap(), None);
    }

    #[test]
    fn effective_timeout_clamps_to_deadline() {
        let deadline = Instant::now() + Duration::from_millis(50);
        let t = effective_timeout(10_000, Some(deadline)).unwrap().unwrap();
        assert!(t <= Duration::from_millis(50));
        let gone = Instant::now() - Duration::from_millis(1);
        assert!(matches!(
            effective_timeout(10_000, Some(gone)),
            Err(ClientError::Deadline { .. })
        ));
    }
}
