//! # typilus-serve
//!
//! The long-lived type-hint daemon of the Typilus reproduction — the
//! piece that turns one-shot CLI runs into an *interactive* service:
//! the model, τmap and mmap'd TypeSpace sidecar are loaded once, the
//! worker pool and prediction scratch stay warm, and clients talk a
//! small length-prefixed binary protocol over TCP or a Unix socket.
//!
//! Three design rules, in order:
//!
//! 1. **No panics on client input.** Every fallible step of the
//!    predict / add-marker path returns a typed error that becomes an
//!    [`protocol::ErrorCode`]-tagged reply; malformed frames, oversized
//!    frames and mid-request disconnects degrade the *connection*,
//!    never the process.
//! 2. **Batching is invisible.** Concurrent predict requests are
//!    drained into a single pooled forward pass
//!    ([`typilus::TrainedSystem::predict_sources`]), whose per-source
//!    results are exactly what lone calls would return — replies are
//!    byte-identical to one-shot `typilus predict` output at any
//!    thread or client count.
//! 3. **No artifact writes.** Serving (including `add-marker` and
//!    `reindex`) mutates only process memory; killing the daemon at
//!    any moment leaves every on-disk artifact untouched.
//! 4. **No panic kills the daemon.** Every batch runs under a
//!    `catch_unwind` supervisor: a panicking request gets a typed
//!    `internal` reply, repeat offenders are quarantined, worker
//!    scratch is rebuilt, and serving continues — while the client
//!    side ([`client::ClientOptions`]) adds timeouts, deterministic
//!    backoff and idempotent-only retries.
//!
//! See `DESIGN.md` §13 for the wire format, ordering guarantees and
//! the failure model.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ClientOptions};
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Health, Hint, Request, Response, ServerStats,
    SymbolHints, MAX_FRAME_LEN,
};
pub use server::{Endpoint, ServeOptions, ServeSummary, Server};
