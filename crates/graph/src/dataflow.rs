//! Approximate may-use dataflow for the NEXT_MAY_USE edges.
//!
//! Computes, for every variable occurrence, the set of occurrences of the
//! same symbol that *may* execute next, branching-aware: after the last
//! use in an `if` branch, both the join point and nothing else may follow;
//! uses in a loop body may be followed by uses at the loop head. This is
//! the standard approximation used by Allamanis et al. (2018), which the
//! Typilus paper adopts.

use std::collections::{HashMap, HashSet};
use typilus_pyast::ast::{Stmt, StmtKind};
use typilus_pyast::symtable::{SymbolId, SymbolKind, SymbolTable};
use typilus_pyast::Span;

/// A `(from, to)` pair of occurrence byte offsets: the token at `from`
/// may be followed by the use at `to`.
pub type MayUseEdge = (usize, usize);

/// Computes the NEXT_MAY_USE edge list for a module body.
///
/// Only variable-like symbols participate (variables, parameters, class
/// members); function and class names are skipped, matching the paper's
/// "token bound to a variable" phrasing.
pub fn may_use_edges(body: &[Stmt], table: &SymbolTable) -> Vec<MayUseEdge> {
    // Sorted (offset, symbol) list over variable-like symbols.
    let mut occs: Vec<(usize, SymbolId)> = Vec::new();
    for sym in table.symbols() {
        if !matches!(
            sym.kind,
            SymbolKind::Variable | SymbolKind::Parameter | SymbolKind::ClassMember
        ) {
            continue;
        }
        for span in &sym.occurrences {
            occs.push((span.start.offset, sym.id));
        }
    }
    occs.sort_unstable_by_key(|&(off, _)| off);

    let mut analysis = Analysis {
        occs,
        edges: Vec::new(),
    };
    analysis.block(body, State::new(), true);
    analysis.edges.sort_unstable();
    analysis.edges.dedup();
    analysis.edges
}

/// symbol -> set of offsets of upcoming possible next uses.
type State = HashMap<SymbolId, HashSet<usize>>;

fn union(mut a: State, b: &State) -> State {
    for (k, v) in b {
        a.entry(*k).or_default().extend(v.iter().copied());
    }
    a
}

struct Analysis {
    occs: Vec<(usize, SymbolId)>,
    edges: Vec<MayUseEdge>,
}

impl Analysis {
    /// Occurrences inside `span` excluding the given child spans.
    fn occurrences_in(&self, span: Span, exclude: &[Span]) -> Vec<(usize, SymbolId)> {
        let lo = self
            .occs
            .partition_point(|&(off, _)| off < span.start.offset);
        let hi = self.occs.partition_point(|&(off, _)| off < span.end.offset);
        self.occs[lo..hi]
            .iter()
            .filter(|&&(off, _)| {
                !exclude
                    .iter()
                    .any(|e| off >= e.start.offset && off < e.end.offset)
            })
            .copied()
            .collect()
    }

    /// Processes a linear run of occurrences backwards through `state`.
    fn linear(&mut self, occs: &[(usize, SymbolId)], mut state: State, emit: bool) -> State {
        for &(off, sym) in occs.iter().rev() {
            if emit {
                if let Some(next) = state.get(&sym) {
                    for &to in next {
                        self.edges.push((off, to));
                    }
                }
            }
            state.insert(sym, HashSet::from([off]));
        }
        state
    }

    /// Analyses a block backwards; returns the entry state.
    fn block(&mut self, stmts: &[Stmt], exit: State, emit: bool) -> State {
        let mut state = exit;
        for stmt in stmts.iter().rev() {
            state = self.stmt(stmt, state, emit);
        }
        state
    }

    fn stmt(&mut self, stmt: &Stmt, after: State, emit: bool) -> State {
        match &stmt.kind {
            StmtKind::FunctionDef(f) => {
                // New control-flow context; analyse the body in isolation.
                self.block(&f.body, State::new(), emit);
                after
            }
            StmtKind::ClassDef(c) => {
                self.block(&c.body, State::new(), emit);
                after
            }
            StmtKind::If { body, orelse, .. } => {
                let then_entry = self.block(body, after.clone(), emit);
                let else_entry = if orelse.is_empty() {
                    after.clone()
                } else {
                    self.block(orelse, after.clone(), emit)
                };
                let merged = union(then_entry, &else_entry);
                let header = self.header_occurrences(stmt, body, orelse);
                self.linear(&header, merged, emit)
            }
            StmtKind::While { body, orelse, .. } | StmtKind::For { body, orelse, .. } => {
                // First pass (no emission) to approximate the loop entry.
                let probe = self.block(body, after.clone(), false);
                let header = self.header_occurrences(stmt, body, orelse);
                let head_probe = self.linear(&header, union(probe, &after), false);
                // Second pass: the loop body may be followed by the head.
                let body_exit = union(after.clone(), &head_probe);
                let body_entry = self.block(body, body_exit, emit);
                let orelse_entry = if orelse.is_empty() {
                    after.clone()
                } else {
                    self.block(orelse, after.clone(), emit)
                };
                let merged = union(union(body_entry, &orelse_entry), &after);
                self.linear(&header, merged, emit)
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                let final_entry = if finalbody.is_empty() {
                    after.clone()
                } else {
                    self.block(finalbody, after.clone(), emit)
                };
                let orelse_entry = if orelse.is_empty() {
                    final_entry.clone()
                } else {
                    self.block(orelse, final_entry.clone(), emit)
                };
                let mut merged = self.block(body, orelse_entry, emit);
                for h in handlers {
                    let h_entry = self.block(&h.body, final_entry.clone(), emit);
                    merged = union(merged, &h_entry);
                }
                merged
            }
            StmtKind::With { body, .. } => {
                let body_entry = self.block(body, after, emit);
                let header = self.header_occurrences(stmt, body, &[]);
                self.linear(&header, body_entry, emit)
            }
            _ => {
                // Linear statement: all occurrences in source order.
                let occs = self.occurrences_in(stmt.meta.span, &[]);
                self.linear(&occs, after, emit)
            }
        }
    }

    /// Occurrences in the statement header (span minus nested blocks).
    fn header_occurrences(
        &self,
        stmt: &Stmt,
        body: &[Stmt],
        orelse: &[Stmt],
    ) -> Vec<(usize, SymbolId)> {
        let mut exclude = Vec::new();
        if let (Some(first), Some(last)) = (body.first(), body.last()) {
            exclude.push(first.meta.span.merge(last.meta.span));
        }
        if let (Some(first), Some(last)) = (orelse.first(), orelse.last()) {
            exclude.push(first.meta.span.merge(last.meta.span));
        }
        self.occurrences_in(stmt.meta.span, &exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_pyast::{parse, SymbolTable};

    /// Maps edge offsets back to the source text they point at, for
    /// readable assertions.
    fn edges_named(src: &str) -> Vec<(String, usize, String, usize)> {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        let word_at = |off: usize| -> String {
            src[off..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect()
        };
        may_use_edges(&parsed.module.body, &table)
            .into_iter()
            .map(|(a, b)| (word_at(a), a, word_at(b), b))
            .collect()
    }

    #[test]
    fn straight_line_chain() {
        let src = "x = 1\ny = x\nz = x\n";
        let edges = edges_named(src);
        // x(def) -> x(use1) -> x(use2); no edge def->use2 directly.
        let x_edges: Vec<_> = edges.iter().filter(|e| e.0 == "x").collect();
        assert_eq!(x_edges.len(), 2);
        assert!(x_edges[0].1 < x_edges[0].3);
    }

    #[test]
    fn branches_fork_next_use() {
        let src = "\
x = 1
if c:
    a = x
else:
    b = x
";
        let edges = edges_named(src);
        // The definition of x may be followed by either branch's use.
        let from_def: Vec<_> = edges.iter().filter(|e| e.0 == "x" && e.1 == 0).collect();
        assert_eq!(from_def.len(), 2, "{edges:?}");
    }

    #[test]
    fn loop_back_edge() {
        let src = "\
total = 0
while cond:
    total = total + 1
print(total)
";
        let edges = edges_named(src);
        // The use inside the loop may be followed by the loop-head read of
        // `total` again (back edge): some edge goes backwards in offsets.
        assert!(
            edges.iter().any(|e| e.0 == "total" && e.3 <= e.1),
            "expected a loop back edge, got {edges:?}"
        );
    }

    #[test]
    fn function_bodies_are_isolated() {
        let src = "\
x = 1
def f():
    y = 2
    return y
z = x
";
        let edges = edges_named(src);
        assert!(edges.iter().any(|e| e.0 == "x"));
        assert!(edges.iter().any(|e| e.0 == "y"));
        // No edge from y to x or vice versa.
        for e in &edges {
            assert_eq!(e.0, e.2, "may-use edges stay within one symbol: {e:?}");
        }
    }

    #[test]
    fn only_variables_participate() {
        let src = "def f():\n    pass\nf()\nf()\n";
        let edges = edges_named(src);
        assert!(
            edges.is_empty(),
            "function names have no may-use edges: {edges:?}"
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use typilus_pyast::{parse, SymbolTable};

    fn edges_of(src: &str) -> Vec<MayUseEdge> {
        let parsed = parse(src).unwrap();
        let table = SymbolTable::build(&parsed.module);
        may_use_edges(&parsed.module.body, &table)
    }

    #[test]
    fn try_handler_merges_states() {
        let src = "\
x = 1
try:
    a = x
except Exception:
    b = x
print(x)
";
        let edges = edges_of(src);
        // Definition of x flows into both the try body and the handler.
        let from_def: Vec<_> = edges.iter().filter(|(f, _)| *f == 0).collect();
        assert!(from_def.len() >= 2, "{edges:?}");
    }

    #[test]
    fn with_body_flows() {
        let src = "fh = acquire()\nwith fh:\n    fh.read()\n";
        let edges = edges_of(src);
        assert!(!edges.is_empty());
    }

    #[test]
    fn nested_loops_have_back_edges() {
        let src = "\
total = 0
while outer:
    while inner:
        total = total + 1
";
        let edges = edges_of(src);
        assert!(
            edges.iter().any(|(f, t)| t <= f),
            "nested loops need a back edge: {edges:?}"
        );
    }

    #[test]
    fn empty_module_has_no_edges() {
        assert!(edges_of("\n").is_empty());
        assert!(edges_of("pass\n").is_empty());
    }
}
