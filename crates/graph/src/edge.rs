//! Edge labels of the Typilus program graph (paper Table 1) and edge-set
//! filters used by the ablation study (paper Table 4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight edge labels of the Typilus graph representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EdgeLabel {
    /// Connects two consecutive token nodes.
    NextToken,
    /// Connects syntax nodes to their children nodes and tokens.
    Child,
    /// Connects each token bound to a variable to all potential next uses.
    NextMayUse,
    /// Connects each token bound to a variable to its next lexical use.
    NextLexicalUse,
    /// Connects the right-hand side of an assignment to its left-hand side.
    AssignedFrom,
    /// Connects `return`/`yield` statements to the enclosing function node.
    ReturnsTo,
    /// Connects token and syntax nodes that bind to a symbol to its
    /// symbol node.
    OccurrenceOf,
    /// Connects identifier tokens to the vocabulary nodes of their
    /// subtokens.
    SubtokenOf,
}

impl EdgeLabel {
    /// Number of distinct labels.
    pub const COUNT: usize = 8;

    /// All labels in a fixed order (index = `as_index`).
    pub const ALL: [EdgeLabel; EdgeLabel::COUNT] = [
        EdgeLabel::NextToken,
        EdgeLabel::Child,
        EdgeLabel::NextMayUse,
        EdgeLabel::NextLexicalUse,
        EdgeLabel::AssignedFrom,
        EdgeLabel::ReturnsTo,
        EdgeLabel::OccurrenceOf,
        EdgeLabel::SubtokenOf,
    ];

    /// Stable index of the label in `0..COUNT`.
    pub fn as_index(self) -> usize {
        match self {
            EdgeLabel::NextToken => 0,
            EdgeLabel::Child => 1,
            EdgeLabel::NextMayUse => 2,
            EdgeLabel::NextLexicalUse => 3,
            EdgeLabel::AssignedFrom => 4,
            EdgeLabel::ReturnsTo => 5,
            EdgeLabel::OccurrenceOf => 6,
            EdgeLabel::SubtokenOf => 7,
        }
    }

    /// The paper's name of the edge label (`NEXT_TOKEN`, ...).
    pub fn paper_name(self) -> &'static str {
        match self {
            EdgeLabel::NextToken => "NEXT_TOKEN",
            EdgeLabel::Child => "CHILD",
            EdgeLabel::NextMayUse => "NEXT_MAY_USE",
            EdgeLabel::NextLexicalUse => "NEXT_LEXICAL_USE",
            EdgeLabel::AssignedFrom => "ASSIGNED_FROM",
            EdgeLabel::ReturnsTo => "RETURNS_TO",
            EdgeLabel::OccurrenceOf => "OCCURRENCE_OF",
            EdgeLabel::SubtokenOf => "SUBTOKEN_OF",
        }
    }
}

impl fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A set of enabled edge labels, used to ablate the graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeSet(u8);

impl EdgeSet {
    /// The full graph: all eight labels.
    pub fn all() -> EdgeSet {
        EdgeSet(0xff)
    }

    /// No edges at all (the "only names" ablation).
    pub fn none() -> EdgeSet {
        EdgeSet(0)
    }

    /// A set from explicit labels.
    pub fn from_labels(labels: &[EdgeLabel]) -> EdgeSet {
        let mut s = EdgeSet(0);
        for &l in labels {
            s = s.with(l);
        }
        s
    }

    /// Returns the set with `label` enabled.
    pub fn with(self, label: EdgeLabel) -> EdgeSet {
        EdgeSet(self.0 | (1 << label.as_index()))
    }

    /// Returns the set with `label` disabled.
    pub fn without(self, label: EdgeLabel) -> EdgeSet {
        EdgeSet(self.0 & !(1 << label.as_index()))
    }

    /// Whether `label` is enabled.
    pub fn contains(self, label: EdgeLabel) -> bool {
        self.0 & (1 << label.as_index()) != 0
    }

    /// Paper Table 4 ablation: no syntactic edges (NEXT_TOKEN and CHILD).
    pub fn without_syntactic() -> EdgeSet {
        EdgeSet::all()
            .without(EdgeLabel::NextToken)
            .without(EdgeLabel::Child)
    }

    /// Paper Table 4 ablation: no NEXT_LEXICAL_USE / NEXT_MAY_USE edges.
    pub fn without_use_edges() -> EdgeSet {
        EdgeSet::all()
            .without(EdgeLabel::NextLexicalUse)
            .without(EdgeLabel::NextMayUse)
    }

    /// The "only names" configuration: symbol and subtoken structure only
    /// (OCCURRENCE_OF + SUBTOKEN_OF), no relational signal.
    pub fn only_names() -> EdgeSet {
        EdgeSet::from_labels(&[EdgeLabel::OccurrenceOf, EdgeLabel::SubtokenOf])
    }
}

impl Default for EdgeSet {
    fn default() -> Self {
        EdgeSet::all()
    }
}

/// One directed, labelled edge between graph node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Edge label.
    pub label: EdgeLabel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for l in EdgeLabel::ALL {
            assert!(seen.insert(l.as_index()));
            assert_eq!(EdgeLabel::ALL[l.as_index()], l);
        }
        assert_eq!(seen.len(), EdgeLabel::COUNT);
    }

    #[test]
    fn set_operations() {
        let s = EdgeSet::all().without(EdgeLabel::Child);
        assert!(!s.contains(EdgeLabel::Child));
        assert!(s.contains(EdgeLabel::NextToken));
        assert!(s.with(EdgeLabel::Child).contains(EdgeLabel::Child));
        assert!(!EdgeSet::none().contains(EdgeLabel::NextToken));
    }

    #[test]
    fn ablation_presets() {
        let ns = EdgeSet::without_syntactic();
        assert!(!ns.contains(EdgeLabel::NextToken));
        assert!(!ns.contains(EdgeLabel::Child));
        assert!(ns.contains(EdgeLabel::OccurrenceOf));
        let on = EdgeSet::only_names();
        assert!(on.contains(EdgeLabel::SubtokenOf));
        assert!(!on.contains(EdgeLabel::AssignedFrom));
    }
}
