//! Identifier subtokenisation.
//!
//! Splits identifiers on `snake_case`, `camelCase`, `PascalCase`, digit
//! boundaries and acronym boundaries, lower-casing the result — the
//! deterministic `SubTok(·)` of the paper (Eq. 7), also used for the
//! SUBTOKEN_OF vocabulary nodes.

/// Splits an identifier into lowercase subtokens.
///
/// `numNodes` → `["num", "nodes"]`; `HTTPResponse` → `["http",
/// "response"]`; `max_pool2d` → `["max", "pool", "2", "d"]`. Identifiers
/// with no letters or digits yield an empty vector.
pub fn subtokens(identifier: &str) -> Vec<String> {
    let chars: Vec<char> = identifier.chars().collect();
    let mut out = Vec::new();
    let mut cur = String::new();
    let flush = |cur: &mut String, out: &mut Vec<String>| {
        if !cur.is_empty() {
            out.push(cur.to_lowercase());
            cur.clear();
        }
    };
    for i in 0..chars.len() {
        let c = chars[i];
        if !c.is_alphanumeric() {
            flush(&mut cur, &mut out);
            continue;
        }
        let prev = if i > 0 { Some(chars[i - 1]) } else { None };
        let next = chars.get(i + 1).copied();
        let boundary = match prev {
            None => false,
            Some(p) => {
                // lower -> Upper: camelCase
                (p.is_lowercase() && c.is_uppercase())
                    // letter <-> digit
                    || (p.is_ascii_digit() != c.is_ascii_digit())
                    // ACRONYMWord: Upper Upper lower => break before last upper
                    || (p.is_uppercase()
                        && c.is_uppercase()
                        && next.is_some_and(|n| n.is_lowercase()))
            }
        };
        if boundary {
            flush(&mut cur, &mut out);
        }
        cur.push(c);
    }
    flush(&mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(input: &str) -> Vec<String> {
        subtokens(input)
    }

    #[test]
    fn snake_case() {
        assert_eq!(s("num_nodes"), vec!["num", "nodes"]);
        assert_eq!(s("_private_name_"), vec!["private", "name"]);
    }

    #[test]
    fn camel_and_pascal_case() {
        assert_eq!(s("numNodes"), vec!["num", "nodes"]);
        assert_eq!(s("GetNodes"), vec!["get", "nodes"]);
        assert_eq!(s("getHTTPResponse"), vec!["get", "http", "response"]);
    }

    #[test]
    fn digits_split() {
        assert_eq!(s("conv2d"), vec!["conv", "2", "d"]);
        assert_eq!(s("x1"), vec!["x", "1"]);
    }

    #[test]
    fn single_words() {
        assert_eq!(s("count"), vec!["count"]);
        assert_eq!(s("X"), vec!["x"]);
    }

    #[test]
    fn empty_and_symbols() {
        assert!(s("").is_empty());
        assert!(s("__").is_empty());
    }

    #[test]
    fn shared_subtokens_across_identifiers() {
        // The motivating example from the paper: numNodes and getNodes
        // share the `nodes` subtoken.
        let a = s("numNodes");
        let b = s("getNodes");
        assert!(a.iter().any(|t| b.contains(t)));
    }

    #[test]
    fn proptest_idempotent_lowercase() {
        // Subtokens contain no uppercase and no separators.
        for ident in ["A_bC2", "someVarName", "HTTP2Server", "a__b"] {
            for t in s(ident) {
                assert_eq!(t, t.to_lowercase());
                assert!(!t.contains('_'));
            }
        }
    }
}
