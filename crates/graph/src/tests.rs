//! Whole-graph construction tests, mirroring the paper's Fig. 3 example.

use crate::builder::{build_graph, GraphConfig, NodeKind, ProgramGraph};
use crate::edge::{EdgeLabel, EdgeSet};
use typilus_pyast::{parse, SymbolTable};

fn graph(src: &str) -> ProgramGraph {
    graph_with(src, &GraphConfig::default())
}

fn graph_with(src: &str, config: &GraphConfig) -> ProgramGraph {
    let parsed = parse(src).unwrap();
    let table = SymbolTable::build(&parsed.module);
    build_graph(&parsed, &table, config, "test.py")
}

fn labels_of(g: &ProgramGraph, kind: NodeKind) -> Vec<&str> {
    g.nodes
        .iter()
        .filter(|n| n.kind == kind)
        .map(|n| n.label.as_str())
        .collect()
}

#[test]
fn fig3_example_structure() {
    // The paper's running example: foo = get_foo(i, i + 1)
    let g = graph("foo = get_foo(i, i + 1)\n");
    let tokens = labels_of(&g, NodeKind::Token);
    assert_eq!(
        tokens,
        vec!["foo", "=", "get_foo", "(", "i", ",", "i", "+", "1", ")"]
    );
    // Vocabulary nodes: foo, get, i, 1? (numbers are not identifiers).
    let vocab = labels_of(&g, NodeKind::Vocabulary);
    assert!(vocab.contains(&"foo"));
    assert!(vocab.contains(&"get"));
    assert!(vocab.contains(&"i"));
    // Symbol nodes: foo, get_foo, i.
    let symbols = labels_of(&g, NodeKind::Symbol);
    assert!(symbols.contains(&"foo"));
    assert!(symbols.contains(&"get_foo"));
    assert!(symbols.contains(&"i"));
    // Non-terminals include assign, call, binop_add.
    let nts = labels_of(&g, NodeKind::NonTerminal);
    assert!(nts.contains(&"assign"));
    assert!(nts.contains(&"call"));
    assert!(nts.contains(&"binop_add"));
    // Every edge label except RETURNS_TO appears.
    assert!(g.edges_with(EdgeLabel::NextToken).count() >= 9);
    assert!(g.edges_with(EdgeLabel::Child).count() > 0);
    assert!(g.edges_with(EdgeLabel::OccurrenceOf).count() >= 4);
    assert!(g.edges_with(EdgeLabel::SubtokenOf).count() >= 4);
    assert!(g.edges_with(EdgeLabel::AssignedFrom).count() == 1);
    // Two `i` occurrences: one NEXT_LEXICAL_USE edge.
    assert_eq!(g.edges_with(EdgeLabel::NextLexicalUse).count(), 1);
}

#[test]
fn annotations_are_erased_by_default() {
    let g = graph("def f(x: int) -> str:\n    y: List[int] = []\n    return 'a'\n");
    let tokens = labels_of(&g, NodeKind::Token);
    assert!(
        !tokens.contains(&"int"),
        "annotation tokens must be erased: {tokens:?}"
    );
    assert!(!tokens.contains(&"str"));
    assert!(!tokens.contains(&"List"));
    assert!(!tokens.contains(&"->"));
    // But ground truth is preserved on the targets.
    let x = g.targets.iter().find(|t| t.name == "x").unwrap();
    assert_eq!(x.annotation.as_deref(), Some("int"));
    let y = g.targets.iter().find(|t| t.name == "y").unwrap();
    assert_eq!(y.annotation.as_deref(), Some("List[int]"));
}

#[test]
fn annotations_kept_when_configured() {
    let config = GraphConfig {
        erase_annotations: false,
        ..GraphConfig::default()
    };
    let g = graph_with("def f(x: int) -> str:\n    return 'a'\n", &config);
    let tokens = labels_of(&g, NodeKind::Token);
    assert!(tokens.contains(&"int"));
    assert!(tokens.contains(&"str"));
}

#[test]
fn returns_to_edges() {
    let g = graph("def f(n):\n    if n:\n        return 1\n    return 2\n");
    assert_eq!(g.edges_with(EdgeLabel::ReturnsTo).count(), 2);
}

#[test]
fn yield_also_returns_to() {
    let g = graph("def g(xs):\n    for x in xs:\n        yield x\n");
    assert_eq!(g.edges_with(EdgeLabel::ReturnsTo).count(), 1);
}

#[test]
fn return_symbol_is_target_with_occurrence() {
    let g = graph("def f() -> int:\n    return 1\n");
    let ret = g
        .targets
        .iter()
        .find(|t| t.kind == typilus_pyast::SymbolKind::Return)
        .expect("return target");
    assert_eq!(ret.annotation.as_deref(), Some("int"));
    // The function-def node connects to the return symbol node.
    let occ: Vec<_> = g
        .edges_with(EdgeLabel::OccurrenceOf)
        .filter(|e| e.dst == ret.node)
        .collect();
    assert!(!occ.is_empty(), "function node links to return symbol");
}

#[test]
fn edge_filter_removes_labels() {
    let src = "a = 1\nb = a + 1\n";
    let full = graph(src);
    let config = GraphConfig {
        edges: EdgeSet::without_syntactic(),
        ..GraphConfig::default()
    };
    let filtered = graph_with(src, &config);
    assert!(full.edges_with(EdgeLabel::NextToken).count() > 0);
    assert_eq!(filtered.edges_with(EdgeLabel::NextToken).count(), 0);
    assert_eq!(filtered.edges_with(EdgeLabel::Child).count(), 0);
    assert!(filtered.edges_with(EdgeLabel::OccurrenceOf).count() > 0);
}

#[test]
fn only_names_keeps_symbol_structure() {
    let config = GraphConfig {
        edges: EdgeSet::only_names(),
        ..GraphConfig::default()
    };
    let g = graph_with("value_count = other_count + 1\n", &config);
    assert!(g.edges_with(EdgeLabel::SubtokenOf).count() >= 3);
    assert!(g.edges_with(EdgeLabel::OccurrenceOf).count() >= 2);
    assert_eq!(g.edges_with(EdgeLabel::NextToken).count(), 0);
    assert_eq!(g.edges_with(EdgeLabel::AssignedFrom).count(), 0);
}

#[test]
fn subtokens_shared_between_identifiers() {
    let g = graph("num_nodes = 3\nget_nodes(num_nodes)\n");
    // `nodes` vocabulary node is shared: at least 3 SUBTOKEN_OF edges
    // point at it (num_nodes x2, get_nodes x1).
    let nodes_vocab = g
        .nodes
        .iter()
        .position(|n| n.kind == NodeKind::Vocabulary && n.label == "nodes")
        .expect("vocab node") as u32;
    let count = g
        .edges_with(EdgeLabel::SubtokenOf)
        .filter(|e| e.dst == nodes_vocab)
        .count();
    assert_eq!(count, 3);
}

#[test]
fn member_symbols_connect_across_methods() {
    let src = "\
class C:
    def __init__(self):
        self.weight = 0
    def get(self):
        return self.weight
";
    let g = graph(src);
    let member = g
        .nodes
        .iter()
        .position(|n| n.kind == NodeKind::Symbol && n.label == "self.weight")
        .expect("member symbol") as u32;
    let occ = g
        .edges_with(EdgeLabel::OccurrenceOf)
        .filter(|e| e.dst == member)
        .count();
    assert_eq!(occ, 2);
}

#[test]
fn all_edges_reference_valid_nodes() {
    let src = "\
import os
class A(Base):
    def run(self, steps: int) -> bool:
        total = 0
        for i in range(steps):
            total += i
            if total > 10:
                break
        return total > steps
";
    let g = graph(src);
    let n = g.node_count() as u32;
    for e in &g.edges {
        assert!(e.src < n, "edge source {e:?} out of range");
        assert!(e.dst < n, "edge target {e:?} out of range");
    }
    for t in &g.targets {
        assert!(t.node < n);
        assert_eq!(g.nodes[t.node as usize].kind, NodeKind::Symbol);
    }
}

#[test]
fn assigned_from_in_walrus_and_augassign() {
    let g = graph("x = 0\nx += compute()\nif (y := x) > 1:\n    pass\n");
    assert!(g.edges_with(EdgeLabel::AssignedFrom).count() >= 3);
}

#[test]
fn empty_file_yields_empty_graph() {
    let g = graph("\n");
    assert!(g.targets.is_empty());
    // Only the module node exists.
    assert_eq!(labels_of(&g, NodeKind::Token).len(), 0);
}

#[test]
fn graph_is_deterministic() {
    let src = "def f(a, b):\n    return a + b\n";
    let g1 = graph(src);
    let g2 = graph(src);
    assert_eq!(g1.nodes, g2.nodes);
    assert_eq!(g1.edges, g2.edges);
    assert_eq!(g1.targets, g2.targets);
}

#[test]
fn next_may_use_edges_appear_in_graph() {
    let g = graph("x = 1\nif c:\n    a = x\nelse:\n    b = x\n");
    // The definition of x may be followed by either branch's use, so at
    // least two NEXT_MAY_USE edges leave its first token.
    let count = g.edges_with(EdgeLabel::NextMayUse).count();
    assert!(count >= 2, "expected branching may-use edges, got {count}");
}

#[test]
fn try_except_bodies_are_graphed() {
    let src = "\
try:
    risky()
except ValueError as err:
    print(err)
finally:
    cleanup()
";
    let g = graph(src);
    let nts = labels_of(&g, NodeKind::NonTerminal);
    assert!(nts.contains(&"try_stmt"));
    // `err` is bound in the handler and used once more.
    assert_eq!(g.edges_with(EdgeLabel::NextLexicalUse).count(), 1);
}

#[test]
fn lambda_and_comprehension_nodes() {
    let g = graph("f = lambda v: v + 1\nys = [g(x) for x in xs if x]\n");
    let nts = labels_of(&g, NodeKind::NonTerminal);
    assert!(nts.contains(&"lambda_expr"));
    assert!(nts.contains(&"list_comp"));
}

#[test]
fn operators_receive_distinct_labels() {
    let g = graph("a = b ** c\nd = e @ f\n");
    let nts = labels_of(&g, NodeKind::NonTerminal);
    assert!(nts.contains(&"binop_pow"));
    assert!(nts.contains(&"binop_matmul"));
}

#[test]
fn string_and_number_tokens_have_no_subtoken_edges() {
    let g = graph("s = 'hello world'\nn = 42\n");
    for e in g.edges_with(EdgeLabel::SubtokenOf) {
        let label = &g.nodes[e.src as usize].label;
        assert!(
            !label.starts_with('\'') && !label.chars().all(|c| c.is_ascii_digit()),
            "literal {label:?} should not have subtokens"
        );
    }
}

#[test]
fn decorated_methods_graph_cleanly() {
    let src = "\
class Api:
    @staticmethod
    def ping(host: str) -> bool:
        return True

    @property
    def name(self) -> str:
        return self._name
";
    let g = graph(src);
    assert!(g.targets.iter().any(|t| t.name == "host"));
    assert_eq!(g.edges_with(EdgeLabel::ReturnsTo).count(), 2);
}
