//! Generic, ordered child enumeration for AST nodes.
//!
//! The graph builder walks the AST without matching on every variant at
//! every site: [`stmt_children`] / [`expr_children`] return the direct
//! children of a node in source order, and [`stmt_label`] /
//! [`expr_label`] name the non-terminal for the node's initial embedding.

use typilus_pyast::ast::{Expr, ExprKind, Stmt, StmtKind};

/// A reference to a direct AST child.
#[derive(Debug, Clone, Copy)]
pub enum ChildRef<'a> {
    /// A child statement.
    Stmt(&'a Stmt),
    /// A child expression.
    Expr(&'a Expr),
}

impl ChildRef<'_> {
    /// The child's source span.
    pub fn span(&self) -> typilus_pyast::Span {
        match self {
            ChildRef::Stmt(s) => s.meta.span,
            ChildRef::Expr(e) => e.meta.span,
        }
    }

    /// The child's AST node id.
    pub fn node_id(&self) -> typilus_pyast::NodeId {
        match self {
            ChildRef::Stmt(s) => s.meta.id,
            ChildRef::Expr(e) => e.meta.id,
        }
    }
}

/// The non-terminal label of a statement, used as node text in the graph.
pub fn stmt_label(stmt: &Stmt) -> String {
    match &stmt.kind {
        StmtKind::FunctionDef(f) if f.is_async => "async_function_def".into(),
        StmtKind::FunctionDef(_) => "function_def".into(),
        StmtKind::ClassDef(_) => "class_def".into(),
        StmtKind::Return(_) => "return_stmt".into(),
        StmtKind::Assign { .. } => "assign".into(),
        StmtKind::AugAssign { op, .. } => format!("aug_assign_{}", op_word(op)),
        StmtKind::AnnAssign { .. } => "ann_assign".into(),
        StmtKind::For { .. } => "for_stmt".into(),
        StmtKind::While { .. } => "while_stmt".into(),
        StmtKind::If { .. } => "if_stmt".into(),
        StmtKind::With { .. } => "with_stmt".into(),
        StmtKind::Raise { .. } => "raise_stmt".into(),
        StmtKind::Try { .. } => "try_stmt".into(),
        StmtKind::Assert { .. } => "assert_stmt".into(),
        StmtKind::Import(_) => "import_stmt".into(),
        StmtKind::ImportFrom { .. } => "import_from".into(),
        StmtKind::Global(_) => "global_stmt".into(),
        StmtKind::Nonlocal(_) => "nonlocal_stmt".into(),
        StmtKind::Expr(_) => "expr_stmt".into(),
        StmtKind::Pass => "pass_stmt".into(),
        StmtKind::Break => "break_stmt".into(),
        StmtKind::Continue => "continue_stmt".into(),
        StmtKind::Delete(_) => "delete_stmt".into(),
    }
}

fn op_word(op: &str) -> &'static str {
    match op {
        "+" => "add",
        "-" => "sub",
        "*" => "mul",
        "/" => "div",
        "//" => "floordiv",
        "%" => "mod",
        "**" => "pow",
        "<<" => "lshift",
        ">>" => "rshift",
        "|" => "bitor",
        "&" => "bitand",
        "^" => "bitxor",
        "@" => "matmul",
        _ => "op",
    }
}

/// The non-terminal label of an expression.
pub fn expr_label(expr: &Expr) -> String {
    use typilus_pyast::ast::{BinOp, BoolOp, UnaryOp};
    match &expr.kind {
        ExprKind::Name(_) => "name".into(),
        ExprKind::Num(_) => "number".into(),
        ExprKind::Str(_) | ExprKind::FString(_) => "string".into(),
        ExprKind::Bool(_) => "bool_literal".into(),
        ExprKind::NoneLit => "none_literal".into(),
        ExprKind::EllipsisLit => "ellipsis_literal".into(),
        ExprKind::Tuple(_) => "tuple_expr".into(),
        ExprKind::List(_) => "list_expr".into(),
        ExprKind::Set(_) => "set_expr".into(),
        ExprKind::Dict { .. } => "dict_expr".into(),
        ExprKind::BinOp { op, .. } => format!(
            "binop_{}",
            match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::Div => "div",
                BinOp::FloorDiv => "floordiv",
                BinOp::Mod => "mod",
                BinOp::Pow => "pow",
                BinOp::LShift => "lshift",
                BinOp::RShift => "rshift",
                BinOp::BitOr => "bitor",
                BinOp::BitAnd => "bitand",
                BinOp::BitXor => "bitxor",
                BinOp::MatMul => "matmul",
            }
        ),
        ExprKind::UnaryOp { op, .. } => format!(
            "unary_{}",
            match op {
                UnaryOp::Neg => "neg",
                UnaryOp::Pos => "pos",
                UnaryOp::Invert => "invert",
                UnaryOp::Not => "not",
            }
        ),
        ExprKind::BoolOp { op, .. } => match op {
            BoolOp::And => "bool_and".into(),
            BoolOp::Or => "bool_or".into(),
        },
        ExprKind::Compare { .. } => "compare".into(),
        ExprKind::Call { .. } => "call".into(),
        ExprKind::Attribute { .. } => "attribute".into(),
        ExprKind::Subscript { .. } => "subscript".into(),
        ExprKind::Slice { .. } => "slice_expr".into(),
        ExprKind::Lambda { .. } => "lambda_expr".into(),
        ExprKind::IfExp { .. } => "if_expr".into(),
        ExprKind::Starred(_) => "starred".into(),
        ExprKind::Comprehension { kind, .. } => match kind {
            typilus_pyast::ast::CompKind::List => "list_comp".into(),
            typilus_pyast::ast::CompKind::Set => "set_comp".into(),
            typilus_pyast::ast::CompKind::Dict => "dict_comp".into(),
            typilus_pyast::ast::CompKind::Generator => "generator_expr".into(),
        },
        ExprKind::Yield(_) => "yield_expr".into(),
        ExprKind::YieldFrom(_) => "yield_from".into(),
        ExprKind::Await(_) => "await_expr".into(),
        ExprKind::Walrus { .. } => "walrus".into(),
    }
}

/// Direct children of a statement in source order.
///
/// `skip_annotations` omits annotation expressions (used when graphs are
/// built from annotation-erased code).
pub fn stmt_children(stmt: &Stmt, skip_annotations: bool) -> Vec<ChildRef<'_>> {
    let mut out = Vec::new();
    match &stmt.kind {
        StmtKind::FunctionDef(f) => {
            for d in &f.decorators {
                out.push(ChildRef::Expr(d));
            }
            for p in &f.params {
                if !skip_annotations {
                    if let Some(a) = &p.annotation {
                        out.push(ChildRef::Expr(a));
                    }
                }
                if let Some(d) = &p.default {
                    out.push(ChildRef::Expr(d));
                }
            }
            if !skip_annotations {
                if let Some(r) = &f.returns {
                    out.push(ChildRef::Expr(r));
                }
            }
            out.extend(f.body.iter().map(ChildRef::Stmt));
        }
        StmtKind::ClassDef(c) => {
            for d in &c.decorators {
                out.push(ChildRef::Expr(d));
            }
            for b in &c.bases {
                out.push(ChildRef::Expr(b));
            }
            for k in &c.keywords {
                out.push(ChildRef::Expr(&k.value));
            }
            out.extend(c.body.iter().map(ChildRef::Stmt));
        }
        StmtKind::Return(v) => {
            if let Some(e) = v {
                out.push(ChildRef::Expr(e));
            }
        }
        StmtKind::Assign { targets, value } => {
            out.extend(targets.iter().map(ChildRef::Expr));
            out.push(ChildRef::Expr(value));
        }
        StmtKind::AugAssign { target, value, .. } => {
            out.push(ChildRef::Expr(target));
            out.push(ChildRef::Expr(value));
        }
        StmtKind::AnnAssign {
            target,
            annotation,
            value,
        } => {
            out.push(ChildRef::Expr(target));
            if !skip_annotations {
                out.push(ChildRef::Expr(annotation));
            }
            if let Some(v) = value {
                out.push(ChildRef::Expr(v));
            }
        }
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
            ..
        } => {
            out.push(ChildRef::Expr(target));
            out.push(ChildRef::Expr(iter));
            out.extend(body.iter().map(ChildRef::Stmt));
            out.extend(orelse.iter().map(ChildRef::Stmt));
        }
        StmtKind::While { test, body, orelse } | StmtKind::If { test, body, orelse } => {
            out.push(ChildRef::Expr(test));
            out.extend(body.iter().map(ChildRef::Stmt));
            out.extend(orelse.iter().map(ChildRef::Stmt));
        }
        StmtKind::With { items, body } => {
            for item in items {
                out.push(ChildRef::Expr(&item.context));
                if let Some(t) = &item.target {
                    out.push(ChildRef::Expr(t));
                }
            }
            out.extend(body.iter().map(ChildRef::Stmt));
        }
        StmtKind::Raise { exc, cause } => {
            for e in [exc, cause].into_iter().flatten() {
                out.push(ChildRef::Expr(e));
            }
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            out.extend(body.iter().map(ChildRef::Stmt));
            for h in handlers {
                if let Some(e) = &h.exc_type {
                    out.push(ChildRef::Expr(e));
                }
                out.extend(h.body.iter().map(ChildRef::Stmt));
            }
            out.extend(orelse.iter().map(ChildRef::Stmt));
            out.extend(finalbody.iter().map(ChildRef::Stmt));
        }
        StmtKind::Assert { test, msg } => {
            out.push(ChildRef::Expr(test));
            if let Some(m) = msg {
                out.push(ChildRef::Expr(m));
            }
        }
        StmtKind::Expr(e) => out.push(ChildRef::Expr(e)),
        StmtKind::Delete(targets) => out.extend(targets.iter().map(ChildRef::Expr)),
        StmtKind::Import(_)
        | StmtKind::ImportFrom { .. }
        | StmtKind::Global(_)
        | StmtKind::Nonlocal(_)
        | StmtKind::Pass
        | StmtKind::Break
        | StmtKind::Continue => {}
    }
    out
}

/// Direct children of an expression in source order.
pub fn expr_children(expr: &Expr) -> Vec<ChildRef<'_>> {
    let mut out = Vec::new();
    match &expr.kind {
        ExprKind::Name(_)
        | ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::FString(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit
        | ExprKind::EllipsisLit => {}
        ExprKind::Tuple(items) | ExprKind::List(items) | ExprKind::Set(items) => {
            out.extend(items.iter().map(ChildRef::Expr));
        }
        ExprKind::Dict { keys, values } => {
            // Interleave key/value in source order.
            for (k, v) in keys.iter().zip(values) {
                if let Some(k) = k {
                    out.push(ChildRef::Expr(k));
                }
                out.push(ChildRef::Expr(v));
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            out.push(ChildRef::Expr(left));
            out.push(ChildRef::Expr(right));
        }
        ExprKind::UnaryOp { operand, .. } => out.push(ChildRef::Expr(operand)),
        ExprKind::BoolOp { values, .. } => out.extend(values.iter().map(ChildRef::Expr)),
        ExprKind::Compare {
            left, comparators, ..
        } => {
            out.push(ChildRef::Expr(left));
            out.extend(comparators.iter().map(ChildRef::Expr));
        }
        ExprKind::Call {
            func,
            args,
            keywords,
        } => {
            out.push(ChildRef::Expr(func));
            out.extend(args.iter().map(ChildRef::Expr));
            out.extend(keywords.iter().map(|k| ChildRef::Expr(&k.value)));
        }
        ExprKind::Attribute { value, .. } => out.push(ChildRef::Expr(value)),
        ExprKind::Subscript { value, index } => {
            out.push(ChildRef::Expr(value));
            out.push(ChildRef::Expr(index));
        }
        ExprKind::Slice { lower, upper, step } => {
            for e in [lower, upper, step].into_iter().flatten() {
                out.push(ChildRef::Expr(e));
            }
        }
        ExprKind::Lambda { params, body } => {
            for p in params {
                if let Some(d) = &p.default {
                    out.push(ChildRef::Expr(d));
                }
            }
            out.push(ChildRef::Expr(body));
        }
        ExprKind::IfExp { test, body, orelse } => {
            out.push(ChildRef::Expr(body));
            out.push(ChildRef::Expr(test));
            out.push(ChildRef::Expr(orelse));
        }
        ExprKind::Starred(inner) => out.push(ChildRef::Expr(inner)),
        ExprKind::Comprehension {
            element,
            value,
            clauses,
            ..
        } => {
            out.push(ChildRef::Expr(element));
            if let Some(v) = value {
                out.push(ChildRef::Expr(v));
            }
            for c in clauses {
                out.push(ChildRef::Expr(&c.target));
                out.push(ChildRef::Expr(&c.iter));
                out.extend(c.ifs.iter().map(ChildRef::Expr));
            }
        }
        ExprKind::Yield(v) => {
            if let Some(e) = v {
                out.push(ChildRef::Expr(e));
            }
        }
        ExprKind::YieldFrom(e) | ExprKind::Await(e) => out.push(ChildRef::Expr(e)),
        ExprKind::Walrus { target, value } => {
            out.push(ChildRef::Expr(target));
            out.push(ChildRef::Expr(value));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use typilus_pyast::parse;

    #[test]
    fn function_children_skip_annotations_when_asked() {
        let parsed = parse("def f(a: int, b=2) -> str:\n    return a\n").unwrap();
        let stmt = &parsed.module.body[0];
        let with_ann = stmt_children(stmt, false);
        let without_ann = stmt_children(stmt, true);
        // annotation(a) + default(b) + returns + body vs default(b) + body.
        assert_eq!(with_ann.len(), 4);
        assert_eq!(without_ann.len(), 2);
    }

    #[test]
    fn labels_distinguish_operators() {
        let parsed = parse("x = a + b\ny = a * b\n").unwrap();
        let exprs: Vec<String> = parsed
            .module
            .body
            .iter()
            .map(|s| match &s.kind {
                typilus_pyast::StmtKind::Assign { value, .. } => expr_label(value),
                other => panic!("expected assign, got {other:?}"),
            })
            .collect();
        assert_eq!(exprs, vec!["binop_add", "binop_mul"]);
    }

    #[test]
    fn children_cover_call_parts() {
        let parsed = parse("r = f(x, key=y)\n").unwrap();
        match &parsed.module.body[0].kind {
            typilus_pyast::StmtKind::Assign { value, .. } => {
                let kids = expr_children(value);
                assert_eq!(kids.len(), 3); // func, x, y
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }
}
