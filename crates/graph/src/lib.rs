//! # typilus-graph
//!
//! Program-graph extraction for the Typilus reproduction: converts a
//! parsed Python file into the graph representation of the paper
//! (Sec. 5.1) — token, non-terminal, vocabulary and symbol nodes,
//! connected by the eight edge labels of Table 1 — with annotations
//! erased so models predict rather than read them. Edge-set filters
//! support the Table 4 ablations.
//!
//! ```
//! use typilus_graph::{build_graph, GraphConfig};
//! use typilus_pyast::{parse, SymbolTable};
//!
//! # fn main() -> Result<(), typilus_pyast::ParseError> {
//! let parsed = parse("def double(n: int) -> int:\n    return n * 2\n")?;
//! let table = SymbolTable::build(&parsed.module);
//! let graph = build_graph(&parsed, &table, &GraphConfig::default(), "example.py");
//! // `n` (parameter) and the function return are prediction targets.
//! assert_eq!(graph.targets.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod dataflow;
pub mod edge;
pub mod shape;
pub mod subtoken;

pub use builder::{build_graph, GraphConfig, GraphNode, NodeKind, ProgramGraph, TargetSymbol};
pub use edge::{Edge, EdgeLabel, EdgeSet};
pub use subtoken::subtokens;

#[cfg(test)]
mod tests;
