//! Program-graph construction (paper Sec. 5.1, Fig. 3).
//!
//! Builds the four-node-category, eight-edge-label graph from a parsed
//! file and its symbol table. Annotations are erased by default so that a
//! model trained on these graphs predicts the original annotations rather
//! than reading them off.

use crate::dataflow::may_use_edges;
use crate::edge::{Edge, EdgeLabel, EdgeSet};
use crate::shape::{expr_children, expr_label, stmt_children, stmt_label, ChildRef};
use crate::subtoken::subtokens;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use typilus_pyast::ast::{Expr, ExprKind, NodeId, Stmt, StmtKind};
use typilus_pyast::symtable::{SymbolId, SymbolKind, SymbolTable};
use typilus_pyast::{Parsed, Span, TokenKind};

/// The category of a graph node (paper Sec. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A raw lexeme of the program.
    Token,
    /// A non-terminal of the syntax tree.
    NonTerminal,
    /// A subtoken vocabulary node shared across identifiers.
    Vocabulary,
    /// A unique symbol from the symbol table (the "supernode").
    Symbol,
}

/// One node of the program graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Node category.
    pub kind: NodeKind,
    /// Text used to derive the node's initial representation: a lexeme
    /// for tokens, a non-terminal label for syntax nodes, the subtoken
    /// for vocabulary nodes, the symbol name for symbol nodes.
    pub label: String,
}

/// A prediction target: an annotatable symbol and its ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetSymbol {
    /// Index of the symbol's graph node.
    pub node: u32,
    /// Symbol id in the file's symbol table.
    pub symbol: SymbolId,
    /// Symbol name.
    pub name: String,
    /// Variable / parameter / return.
    pub kind: SymbolKind,
    /// Ground-truth annotation text, if the source was annotated.
    pub annotation: Option<String>,
}

/// The program graph of one source file.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramGraph {
    /// All nodes; indices are edge endpoints.
    pub nodes: Vec<GraphNode>,
    /// All directed labelled edges.
    pub edges: Vec<Edge>,
    /// Prediction targets (annotatable symbols).
    pub targets: Vec<TargetSymbol>,
    /// Source-file label, for provenance in corpora.
    pub file: String,
}

impl ProgramGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges of one label.
    pub fn edges_with(&self, label: EdgeLabel) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.label == label)
    }
}

/// Configuration of the graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Erase type annotations from the graph (the default for training
    /// and prediction; the model must not see the labels).
    pub erase_annotations: bool,
    /// Which edge labels to emit (ablation studies disable some).
    pub edges: EdgeSet,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            erase_annotations: true,
            edges: EdgeSet::all(),
        }
    }
}

/// Builds the program graph of a parsed file.
pub fn build_graph(
    parsed: &Parsed,
    table: &SymbolTable,
    config: &GraphConfig,
    file: &str,
) -> ProgramGraph {
    Builder::new(parsed, table, *config).run(file)
}

struct Builder<'a> {
    parsed: &'a Parsed,
    table: &'a SymbolTable,
    config: GraphConfig,
    graph: ProgramGraph,
    /// token index -> graph node (only for included tokens).
    token_nodes: HashMap<usize, u32>,
    /// token start offset -> graph node.
    token_by_offset: HashMap<usize, u32>,
    /// AST node id -> graph node.
    ast_nodes: HashMap<NodeId, u32>,
    /// subtoken -> vocabulary node.
    vocab_nodes: HashMap<String, u32>,
    /// symbol -> symbol node.
    symbol_nodes: HashMap<SymbolId, u32>,
    /// Spans of erased annotation expressions.
    erased_spans: Vec<Span>,
    /// Node ids of erased annotation expressions.
    erased_nodes: HashSet<NodeId>,
    /// Included token indices in order.
    included_tokens: Vec<usize>,
    /// Sorted start offsets of included tokens (parallel to included_tokens).
    token_offsets: Vec<usize>,
}

impl<'a> Builder<'a> {
    fn new(parsed: &'a Parsed, table: &'a SymbolTable, config: GraphConfig) -> Self {
        Builder {
            parsed,
            table,
            config,
            graph: ProgramGraph::default(),
            token_nodes: HashMap::new(),
            token_by_offset: HashMap::new(),
            ast_nodes: HashMap::new(),
            vocab_nodes: HashMap::new(),
            symbol_nodes: HashMap::new(),
            erased_spans: Vec::new(),
            erased_nodes: HashSet::new(),
            included_tokens: Vec::new(),
            token_offsets: Vec::new(),
        }
    }

    fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> u32 {
        let idx = self.graph.nodes.len() as u32;
        self.graph.nodes.push(GraphNode {
            kind,
            label: label.into(),
        });
        idx
    }

    fn add_edge(&mut self, src: u32, dst: u32, label: EdgeLabel) {
        if self.config.edges.contains(label) {
            self.graph.edges.push(Edge { src, dst, label });
        }
    }

    fn run(mut self, file: &str) -> ProgramGraph {
        let parsed = self.parsed;
        self.graph.file = file.to_string();
        if self.config.erase_annotations {
            self.collect_erased();
        }
        self.build_token_nodes();
        // Module root node.
        let root = self.add_node(NodeKind::NonTerminal, "module");
        let body: Vec<ChildRef<'a>> = parsed.module.body.iter().map(ChildRef::Stmt).collect();
        for child in &body {
            let c = self.build_ast(*child);
            self.add_edge(root, c, EdgeLabel::Child);
        }
        self.attach_tokens(root, parsed.module.meta.span, &body);
        self.build_symbol_nodes();
        self.build_use_edges();
        self.build_returns_to();
        self.build_assigned_from_stmts(&parsed.module.body);
        self.collect_targets();
        self.graph
    }

    /// Records annotation spans and node ids so they are skipped.
    fn collect_erased(&mut self) {
        fn visit(stmts: &[Stmt], spans: &mut Vec<Span>, ids: &mut HashSet<NodeId>) {
            fn mark(e: &Expr, spans: &mut Vec<Span>, ids: &mut HashSet<NodeId>) {
                spans.push(e.meta.span);
                ids.insert(e.meta.id);
            }
            for stmt in stmts {
                match &stmt.kind {
                    StmtKind::FunctionDef(f) => {
                        for p in &f.params {
                            if let Some(a) = &p.annotation {
                                mark(a, spans, ids);
                            }
                        }
                        if let Some(r) = &f.returns {
                            mark(r, spans, ids);
                        }
                        visit(&f.body, spans, ids);
                    }
                    StmtKind::ClassDef(c) => visit(&c.body, spans, ids),
                    StmtKind::AnnAssign { annotation, .. } => {
                        mark(annotation, spans, ids);
                    }
                    StmtKind::If { body, orelse, .. }
                    | StmtKind::While { body, orelse, .. }
                    | StmtKind::For { body, orelse, .. } => {
                        visit(body, spans, ids);
                        visit(orelse, spans, ids);
                    }
                    StmtKind::With { body, .. } => visit(body, spans, ids),
                    StmtKind::Try {
                        body,
                        handlers,
                        orelse,
                        finalbody,
                    } => {
                        visit(body, spans, ids);
                        for h in handlers {
                            visit(&h.body, spans, ids);
                        }
                        visit(orelse, spans, ids);
                        visit(finalbody, spans, ids);
                    }
                    _ => {}
                }
            }
        }
        let mut spans = Vec::new();
        let mut ids = HashSet::new();
        visit(&self.parsed.module.body, &mut spans, &mut ids);
        self.erased_spans = spans;
        self.erased_nodes = ids;
    }

    fn is_erased_offset(&self, offset: usize) -> bool {
        self.erased_spans
            .iter()
            .any(|s| offset >= s.start.offset && offset < s.end.offset)
    }

    fn build_token_nodes(&mut self) {
        let mut prev: Option<u32> = None;
        for (i, tok) in self.parsed.tokens.iter().enumerate() {
            if tok.kind.is_layout() {
                continue;
            }
            if self.config.erase_annotations {
                if tok.kind == TokenKind::Arrow {
                    continue;
                }
                if self.is_erased_offset(tok.span.start.offset) {
                    continue;
                }
            }
            let node = self.add_node(NodeKind::Token, tok.lexeme.clone());
            self.token_nodes.insert(i, node);
            self.token_by_offset.insert(tok.span.start.offset, node);
            self.included_tokens.push(i);
            self.token_offsets.push(tok.span.start.offset);
            if let Some(p) = prev {
                self.add_edge(p, node, EdgeLabel::NextToken);
            }
            prev = Some(node);
            // SUBTOKEN_OF for identifiers.
            if tok.kind == TokenKind::Name {
                for sub in subtokens(&tok.lexeme) {
                    let v = match self.vocab_nodes.get(&sub) {
                        Some(&v) => v,
                        None => {
                            let v = self.add_node(NodeKind::Vocabulary, sub.clone());
                            self.vocab_nodes.insert(sub, v);
                            v
                        }
                    };
                    self.add_edge(node, v, EdgeLabel::SubtokenOf);
                }
            }
        }
    }

    /// Builds the non-terminal node for one AST element and recurses.
    fn build_ast(&mut self, child: ChildRef<'_>) -> u32 {
        let (label, id, span, kids) = match child {
            ChildRef::Stmt(s) => (
                stmt_label(s),
                s.meta.id,
                s.meta.span,
                stmt_children(s, self.config.erase_annotations),
            ),
            ChildRef::Expr(e) => (expr_label(e), e.meta.id, e.meta.span, expr_children(e)),
        };
        let node = self.add_node(NodeKind::NonTerminal, label);
        self.ast_nodes.insert(id, node);
        let mut kept = Vec::new();
        for k in kids {
            if self.erased_nodes.contains(&k.node_id()) {
                continue;
            }
            let c = self.build_ast(k);
            self.add_edge(node, c, EdgeLabel::Child);
            kept.push(k);
        }
        self.attach_tokens(node, span, &kept);
        node
    }

    /// CHILD edges from a syntax node to the tokens in its span that are
    /// not covered by any of its children.
    fn attach_tokens(&mut self, node: u32, span: Span, children: &[ChildRef<'_>]) {
        let lo = self
            .token_offsets
            .partition_point(|&o| o < span.start.offset);
        let hi = self.token_offsets.partition_point(|&o| o < span.end.offset);
        let child_spans: Vec<Span> = children.iter().map(|c| c.span()).collect();
        for i in lo..hi {
            let off = self.token_offsets[i];
            if child_spans
                .iter()
                .any(|s| off >= s.start.offset && off < s.end.offset)
            {
                continue;
            }
            let tok_idx = self.included_tokens[i];
            if let Some(&t) = self.token_nodes.get(&tok_idx) {
                self.add_edge(node, t, EdgeLabel::Child);
            }
        }
    }

    fn build_symbol_nodes(&mut self) {
        for sym in self.table.symbols() {
            let needs_node = !sym.occurrences.is_empty()
                || sym.kind == SymbolKind::Return
                || sym.is_annotatable();
            if !needs_node {
                continue;
            }
            let node = self.add_node(NodeKind::Symbol, sym.name.clone());
            self.symbol_nodes.insert(sym.id, node);
            // OCCURRENCE_OF from every bound token to the symbol node.
            for span in sym.occurrences.clone() {
                if let Some(&t) = self.token_by_offset.get(&span.start.offset) {
                    self.add_edge(t, node, EdgeLabel::OccurrenceOf);
                }
            }
        }
        // Return symbols: connect the function-def syntax node.
        let parsed = self.parsed;
        for stmt in collect_function_defs(&parsed.module.body) {
            if let Some(ret) = self.table.return_symbol(stmt) {
                if let (Some(&f), Some(&s)) =
                    (self.ast_nodes.get(&stmt), self.symbol_nodes.get(&ret.id))
                {
                    self.add_edge(f, s, EdgeLabel::OccurrenceOf);
                }
            }
        }
    }

    fn build_use_edges(&mut self) {
        // NEXT_LEXICAL_USE: consecutive occurrences of a symbol. Free
        // (unresolved) names are still variables from the graph's view.
        for sym in self.table.symbols() {
            if !matches!(
                sym.kind,
                SymbolKind::Variable
                    | SymbolKind::Parameter
                    | SymbolKind::ClassMember
                    | SymbolKind::Unresolved
            ) {
                continue;
            }
            let nodes: Vec<u32> = sym
                .occurrences
                .iter()
                .filter_map(|s| self.token_by_offset.get(&s.start.offset).copied())
                .collect();
            for pair in nodes.windows(2) {
                self.add_edge(pair[0], pair[1], EdgeLabel::NextLexicalUse);
            }
        }
        // NEXT_MAY_USE via dataflow.
        if self.config.edges.contains(EdgeLabel::NextMayUse) {
            let parsed = self.parsed;
            for (from, to) in may_use_edges(&parsed.module.body, self.table) {
                if let (Some(&a), Some(&b)) = (
                    self.token_by_offset.get(&from),
                    self.token_by_offset.get(&to),
                ) {
                    self.add_edge(a, b, EdgeLabel::NextMayUse);
                }
            }
        }
    }

    fn build_returns_to(&mut self) {
        // Walk function bodies; connect return/yield statements to the
        // function definition node.
        fn walk(builder: &mut Builder<'_>, stmts: &[Stmt], current_func: Option<NodeId>) {
            for stmt in stmts {
                match &stmt.kind {
                    StmtKind::FunctionDef(f) => {
                        walk(builder, &f.body, Some(stmt.meta.id));
                    }
                    StmtKind::ClassDef(c) => walk(builder, &c.body, current_func),
                    StmtKind::Return(_) => {
                        if let Some(func) = current_func {
                            if let (Some(&r), Some(&f)) = (
                                builder.ast_nodes.get(&stmt.meta.id),
                                builder.ast_nodes.get(&func),
                            ) {
                                builder.add_edge(r, f, EdgeLabel::ReturnsTo);
                            }
                        }
                    }
                    StmtKind::Expr(e)
                        if matches!(e.kind, ExprKind::Yield(_) | ExprKind::YieldFrom(_)) =>
                    {
                        if let Some(func) = current_func {
                            if let (Some(&y), Some(&f)) = (
                                builder.ast_nodes.get(&e.meta.id),
                                builder.ast_nodes.get(&func),
                            ) {
                                builder.add_edge(y, f, EdgeLabel::ReturnsTo);
                            }
                        }
                    }
                    StmtKind::If { body, orelse, .. }
                    | StmtKind::While { body, orelse, .. }
                    | StmtKind::For { body, orelse, .. } => {
                        walk(builder, body, current_func);
                        walk(builder, orelse, current_func);
                    }
                    StmtKind::With { body, .. } => walk(builder, body, current_func),
                    StmtKind::Try {
                        body,
                        handlers,
                        orelse,
                        finalbody,
                    } => {
                        walk(builder, body, current_func);
                        for h in handlers {
                            walk(builder, &h.body, current_func);
                        }
                        walk(builder, orelse, current_func);
                        walk(builder, finalbody, current_func);
                    }
                    _ => {}
                }
            }
        }
        let parsed = self.parsed;
        walk(self, &parsed.module.body, None);
    }

    fn build_assigned_from_stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::Assign { targets, value } => {
                    for t in targets {
                        self.assigned_from(value, t);
                    }
                }
                StmtKind::AnnAssign {
                    target,
                    value: Some(v),
                    ..
                } => {
                    self.assigned_from(v, target);
                }
                StmtKind::AugAssign { target, value, .. } => {
                    self.assigned_from(value, target);
                }
                _ => {}
            }
            // Recurse uniformly; walrus assignments can occur in any
            // expression position (if tests, call arguments, ...).
            for child in stmt_children(stmt, self.config.erase_annotations) {
                match child {
                    ChildRef::Expr(e) => self.build_assigned_from_exprs(e),
                    ChildRef::Stmt(s) => self.build_assigned_from_stmts(std::slice::from_ref(s)),
                }
            }
        }
    }

    /// Walrus expressions also carry ASSIGNED_FROM edges.
    fn build_assigned_from_exprs(&mut self, expr: &Expr) {
        if let ExprKind::Walrus { target, value } = &expr.kind {
            self.assigned_from(value, target);
        }
        for child in expr_children(expr) {
            if let ChildRef::Expr(e) = child {
                self.build_assigned_from_exprs(e);
            }
        }
    }

    fn assigned_from(&mut self, value: &Expr, target: &Expr) {
        if let (Some(&v), Some(&t)) = (
            self.ast_nodes.get(&value.meta.id),
            self.ast_nodes.get(&target.meta.id),
        ) {
            self.add_edge(v, t, EdgeLabel::AssignedFrom);
        }
    }

    fn collect_targets(&mut self) {
        for sym in self.table.symbols() {
            if !sym.is_annotatable() {
                continue;
            }
            if let Some(&node) = self.symbol_nodes.get(&sym.id) {
                self.graph.targets.push(TargetSymbol {
                    node,
                    symbol: sym.id,
                    name: sym.name.clone(),
                    kind: sym.kind,
                    annotation: sym.annotation.clone(),
                });
            }
        }
    }
}

/// Node ids of all function definitions, at any nesting depth.
fn collect_function_defs(stmts: &[Stmt]) -> Vec<NodeId> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<NodeId>) {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::FunctionDef(f) => {
                    out.push(stmt.meta.id);
                    walk(&f.body, out);
                }
                StmtKind::ClassDef(c) => walk(&c.body, out),
                StmtKind::If { body, orelse, .. }
                | StmtKind::While { body, orelse, .. }
                | StmtKind::For { body, orelse, .. } => {
                    walk(body, out);
                    walk(orelse, out);
                }
                StmtKind::With { body, .. } => walk(body, out),
                StmtKind::Try {
                    body,
                    handlers,
                    orelse,
                    finalbody,
                } => {
                    walk(body, out);
                    for h in handlers {
                        walk(&h.body, out);
                    }
                    walk(orelse, out);
                    walk(finalbody, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}
