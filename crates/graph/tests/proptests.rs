//! Property-based invariants of subtokenisation and graph construction,
//! driven by the synthetic corpus generator as a source of realistic
//! programs.

use proptest::prelude::*;
use typilus_graph::{build_graph, subtokens, EdgeLabel, EdgeSet, GraphConfig, NodeKind};
use typilus_pyast::{parse, SymbolTable};

fn arb_identifier() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,20}"
}

proptest! {
    #[test]
    fn subtokens_are_lowercase_alnum(ident in arb_identifier()) {
        for t in subtokens(&ident) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(&t, &t.to_lowercase());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            // Each subtoken is purely alphabetic or purely numeric.
            prop_assert!(
                t.chars().all(|c| c.is_alphabetic()) || t.chars().all(|c| c.is_numeric())
            );
        }
    }

    #[test]
    fn subtokens_cover_all_alnum_chars(ident in arb_identifier()) {
        let expected: usize = ident.chars().filter(|c| c.is_alphanumeric()).count();
        let got: usize = subtokens(&ident).iter().map(String::len).sum();
        prop_assert_eq!(got, expected, "no characters lost or invented for {}", ident);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn graphs_of_generated_files_are_well_formed(seed in 0u64..5000) {
        let corpus = typilus_corpus::generate(&typilus_corpus::CorpusConfig {
            files: 1,
            duplicate_rate: 0.0,
            seed,
            ..typilus_corpus::CorpusConfig::default()
        });
        let source = &corpus.files[0].source;
        let parsed = parse(source).expect("generated files parse");
        let table = SymbolTable::build(&parsed.module);
        let g = build_graph(&parsed, &table, &GraphConfig::default(), "p.py");

        // All edges reference valid nodes.
        let n = g.node_count() as u32;
        for e in &g.edges {
            prop_assert!(e.src < n && e.dst < n);
        }
        // Every OCCURRENCE_OF edge ends at a symbol node.
        for e in g.edges_with(EdgeLabel::OccurrenceOf) {
            prop_assert_eq!(g.nodes[e.dst as usize].kind, NodeKind::Symbol);
        }
        // Every SUBTOKEN_OF edge goes token -> vocabulary.
        for e in g.edges_with(EdgeLabel::SubtokenOf) {
            prop_assert_eq!(g.nodes[e.src as usize].kind, NodeKind::Token);
            prop_assert_eq!(g.nodes[e.dst as usize].kind, NodeKind::Vocabulary);
        }
        // NEXT_TOKEN forms a chain over the token nodes.
        let token_count = g.nodes.iter().filter(|x| x.kind == NodeKind::Token).count();
        prop_assert_eq!(
            g.edges_with(EdgeLabel::NextToken).count(),
            token_count.saturating_sub(1)
        );
        // Annotation erasure: no annotation text survives as tokens, but
        // targets keep their ground truth.
        prop_assert!(!g.targets.is_empty());
        // Targets point at symbol nodes.
        for t in &g.targets {
            prop_assert_eq!(g.nodes[t.node as usize].kind, NodeKind::Symbol);
        }
    }

    #[test]
    fn edge_filters_are_respected(seed in 0u64..2000) {
        let corpus = typilus_corpus::generate(&typilus_corpus::CorpusConfig {
            files: 1,
            duplicate_rate: 0.0,
            seed,
            ..typilus_corpus::CorpusConfig::default()
        });
        let parsed = parse(&corpus.files[0].source).expect("parses");
        let table = SymbolTable::build(&parsed.module);
        let config = GraphConfig {
            edges: EdgeSet::without_syntactic(),
            ..GraphConfig::default()
        };
        let g = build_graph(&parsed, &table, &config, "p.py");
        prop_assert_eq!(g.edges_with(EdgeLabel::NextToken).count(), 0);
        prop_assert_eq!(g.edges_with(EdgeLabel::Child).count(), 0);
    }
}
