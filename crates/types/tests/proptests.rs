//! Property-based tests of the type representation and the subtyping
//! lattice.

use proptest::prelude::*;
use typilus_types::{PyType, TypeHierarchy};

/// A strategy generating structurally diverse Python types.
fn arb_type() -> impl Strategy<Value = PyType> {
    let leaf = prop_oneof![
        Just(PyType::Any),
        Just(PyType::None),
        prop_oneof![
            Just("int"),
            Just("str"),
            Just("bool"),
            Just("float"),
            Just("bytes"),
            Just("UserThing"),
            Just("pkg.Other")
        ]
        .prop_map(PyType::named),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![Just("List"), Just("Set"), Just("Iterable")],
                inner.clone()
            )
                .prop_map(|(n, a)| PyType::generic(n, vec![a])),
            (inner.clone(), inner.clone()).prop_map(|(k, v)| PyType::generic("Dict", vec![k, v])),
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|args| PyType::generic("Tuple", args)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(PyType::union),
            inner.prop_map(PyType::optional),
        ]
    })
}

proptest! {
    #[test]
    fn display_parse_round_trip(ty in arb_type()) {
        let text = ty.to_string();
        let parsed: PyType = text.parse().expect("display output must parse");
        prop_assert_eq!(parsed, ty);
    }

    #[test]
    fn erasure_is_idempotent(ty in arb_type()) {
        prop_assert_eq!(ty.erased().erased(), ty.erased());
        prop_assert!(!ty.erased().is_parametric());
    }

    #[test]
    fn truncation_bounds_depth(ty in arb_type(), depth in 0usize..4) {
        let truncated = ty.truncated(depth);
        prop_assert!(truncated.depth() <= depth,
            "depth {} after truncating to {}", truncated.depth(), depth);
        // Idempotent at the same bound.
        prop_assert_eq!(truncated.truncated(depth), ty.truncated(depth));
    }

    #[test]
    fn subtyping_is_reflexive(ty in arb_type()) {
        let h = TypeHierarchy::new();
        prop_assert!(h.is_subtype(&ty, &ty));
    }

    #[test]
    fn everything_below_object_and_any(ty in arb_type()) {
        let h = TypeHierarchy::new();
        prop_assert!(h.is_subtype(&ty, &PyType::named("object")));
        prop_assert!(h.is_subtype(&ty, &PyType::Any));
    }

    #[test]
    fn union_membership_subtyping(ty in arb_type(), other in arb_type()) {
        let h = TypeHierarchy::new();
        let u = PyType::union(vec![ty.clone(), other]);
        prop_assert!(h.is_subtype(&ty, &u), "{} :< {}", ty, u);
    }

    #[test]
    fn neutrality_never_accepts_top(truth in arb_type()) {
        let h = TypeHierarchy::new();
        prop_assert!(!h.is_neutral(&PyType::Any, &truth));
        prop_assert!(!h.is_neutral(&PyType::named("object"), &truth));
    }

    #[test]
    fn exact_match_implies_parametric_match(a in arb_type(), b in arb_type()) {
        if a.matches_exactly(&b) {
            prop_assert!(a.matches_up_to_parametric(&b));
        }
    }

    #[test]
    fn exact_match_implies_neutral(ty in arb_type()) {
        let h = TypeHierarchy::new();
        if !ty.is_top() {
            prop_assert!(h.is_neutral(&ty, &ty), "{} should be neutral with itself", ty);
        }
    }

    #[test]
    fn union_construction_is_order_insensitive(mut members in prop::collection::vec(arb_type(), 1..4)) {
        let a = PyType::union(members.clone());
        members.reverse();
        let b = PyType::union(members);
        prop_assert_eq!(a, b);
    }
}
