//! The Python type representation used throughout the reproduction.
//!
//! A [`PyType`] is a structured form of a PEP 484 annotation string such as
//! `Dict[str, List[int]]`, `Optional[Foo]`, or `Callable[[int], str]`.
//! Types are parsed from annotation text, can be erased (type parameters
//! dropped, the paper's `Er(·)`), depth-truncated (the paper rewrites
//! components nested deeper than level 2 to `Any`), and rendered back to
//! canonical text.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A parsed Python type annotation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PyType {
    /// The dynamic top type `Any` (also produced from `object` by the
    /// neutrality lattice's perspective, though `object` parses as a
    /// [`PyType::Named`]).
    Any,
    /// The `None` type (`NoneType`).
    None,
    /// A possibly-generic nominal type: `int`, `List[str]`, `np.ndarray`.
    Named {
        /// Canonical type name, possibly dotted (`torch.Tensor`).
        name: String,
        /// Type arguments; empty for non-generic uses.
        args: Vec<PyType>,
    },
    /// A union; always flattened, deduplicated and sorted. `Optional[T]`
    /// parses to `Union[T, None]`.
    Union(Vec<PyType>),
    /// `Callable[[params...], ret]`. A `Callable` with unknown parameters
    /// (`Callable` or `Callable[..., R]`) has `params: None`.
    Callable {
        /// Parameter types, `None` when unspecified (`...`).
        params: Option<Vec<PyType>>,
        /// Return type.
        ret: Box<PyType>,
    },
}

/// Error produced when an annotation string cannot be parsed into a
/// [`PyType`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseTypeError {
    text: String,
    reason: String,
}

impl ParseTypeError {
    fn new(text: &str, reason: impl Into<String>) -> Self {
        ParseTypeError {
            text: text.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid type annotation {:?}: {}",
            self.text, self.reason
        )
    }
}

impl std::error::Error for ParseTypeError {}

impl PyType {
    /// Convenience constructor for a non-generic named type.
    pub fn named(name: impl Into<String>) -> PyType {
        PyType::Named {
            name: canonical_name(&name.into()),
            args: Vec::new(),
        }
    }

    /// Convenience constructor for a generic named type.
    pub fn generic(name: impl Into<String>, args: Vec<PyType>) -> PyType {
        PyType::Named {
            name: canonical_name(&name.into()),
            args,
        }
    }

    /// `Optional[inner]`, normalised to a union with `None`.
    pub fn optional(inner: PyType) -> PyType {
        PyType::union(vec![inner, PyType::None])
    }

    /// A union, flattened / deduplicated / sorted. A single-element union
    /// collapses to its element.
    pub fn union(members: Vec<PyType>) -> PyType {
        let mut flat = Vec::new();
        for m in members {
            match m {
                PyType::Union(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        flat.sort();
        flat.dedup();
        if flat.contains(&PyType::Any) {
            return PyType::Any;
        }
        match flat.len() {
            0 => PyType::Any,
            1 => flat.into_iter().next().expect("len checked"),
            _ => PyType::Union(flat),
        }
    }

    /// The base name of the type with all type parameters erased:
    /// the paper's `Er(·)`. `List[int]` ↦ `List`, unions ↦ `Union`,
    /// callables ↦ `Callable`.
    pub fn erased(&self) -> PyType {
        match self {
            PyType::Any => PyType::Any,
            PyType::None => PyType::None,
            PyType::Named { name, .. } => PyType::Named {
                name: name.clone(),
                args: Vec::new(),
            },
            PyType::Union(_) => PyType::Named {
                name: "Union".into(),
                args: Vec::new(),
            },
            PyType::Callable { .. } => PyType::Named {
                name: "Callable".into(),
                args: Vec::new(),
            },
        }
    }

    /// The erased base name as a string (`List`, `Union`, `int`, ...).
    pub fn base_name(&self) -> &str {
        match self {
            PyType::Any => "Any",
            PyType::None => "None",
            PyType::Named { name, .. } => name,
            PyType::Union(_) => "Union",
            PyType::Callable { .. } => "Callable",
        }
    }

    /// Whether this type takes type parameters in this occurrence.
    pub fn is_parametric(&self) -> bool {
        match self {
            PyType::Named { args, .. } => !args.is_empty(),
            PyType::Union(_) | PyType::Callable { .. } => true,
            _ => false,
        }
    }

    /// Nesting depth of the parametric structure: `int` has depth 0,
    /// `List[int]` depth 1, `List[List[int]]` depth 2.
    pub fn depth(&self) -> usize {
        match self {
            PyType::Any | PyType::None => 0,
            PyType::Named { args, .. } => args.iter().map(|a| a.depth() + 1).max().unwrap_or(0),
            PyType::Union(members) => members.iter().map(|m| m.depth() + 1).max().unwrap_or(0),
            PyType::Callable { params, ret } => {
                let p = params
                    .as_ref()
                    .map(|ps| ps.iter().map(|a| a.depth() + 1).max().unwrap_or(0))
                    .unwrap_or(0);
                p.max(ret.depth() + 1)
            }
        }
    }

    /// Rewrites every component nested deeper than `max_depth` to `Any`,
    /// the preprocessing the paper applies before building its type
    /// lattice (`List[List[List[int]]]` with `max_depth = 2` becomes
    /// `List[List[Any]]`).
    pub fn truncated(&self, max_depth: usize) -> PyType {
        if max_depth == 0 {
            return PyType::Any;
        }
        match self {
            PyType::Any => PyType::Any,
            PyType::None => PyType::None,
            PyType::Named { name, args } => PyType::Named {
                name: name.clone(),
                args: args.iter().map(|a| a.truncated(max_depth - 1)).collect(),
            },
            PyType::Union(members) => {
                PyType::union(members.iter().map(|m| m.truncated(max_depth - 1)).collect())
            }
            PyType::Callable { params, ret } => PyType::Callable {
                params: params
                    .as_ref()
                    .map(|ps| ps.iter().map(|p| p.truncated(max_depth - 1)).collect()),
                ret: Box::new(ret.truncated(max_depth - 1)),
            },
        }
    }

    /// Whether two types match exactly (the paper's *exact match*
    /// criterion) — structural equality after canonicalisation, which
    /// `PartialEq` provides since construction canonicalises.
    pub fn matches_exactly(&self, other: &PyType) -> bool {
        self == other
    }

    /// Whether two types match when all type parameters are ignored
    /// (the paper's *match up to parametric type* criterion).
    pub fn matches_up_to_parametric(&self, other: &PyType) -> bool {
        self.erased() == other.erased()
    }

    /// Whether the type is `Any` or `object` — the lattice ⊤, which the
    /// paper excludes both from the dataset and from neutral predictions.
    pub fn is_top(&self) -> bool {
        matches!(self, PyType::Any) || self.base_name() == "object"
    }

    /// Iterates over this type and all component types, outermost first.
    pub fn walk(&self) -> Vec<&PyType> {
        let mut out = vec![self];
        match self {
            PyType::Named { args, .. } => {
                for a in args {
                    out.extend(a.walk());
                }
            }
            PyType::Union(members) => {
                for m in members {
                    out.extend(m.walk());
                }
            }
            PyType::Callable { params, ret } => {
                if let Some(ps) = params {
                    for p in ps {
                        out.extend(p.walk());
                    }
                }
                out.extend(ret.walk());
            }
            _ => {}
        }
        out
    }
}

/// Maps lowercase builtin container names to their `typing` spellings and
/// resolves common aliases, so `list[int]` and `List[int]` compare equal.
pub fn canonical_name(name: &str) -> String {
    match name {
        "list" => "List".into(),
        "dict" => "Dict".into(),
        "set" => "Set".into(),
        "tuple" => "Tuple".into(),
        "frozenset" => "FrozenSet".into(),
        "type" => "Type".into(),
        "typing.List" => "List".into(),
        "typing.Dict" => "Dict".into(),
        "typing.Set" => "Set".into(),
        "typing.Tuple" => "Tuple".into(),
        "typing.Optional" => "Optional".into(),
        "typing.Union" => "Union".into(),
        "typing.Any" => "Any".into(),
        "typing.Callable" => "Callable".into(),
        "typing.Iterable" => "Iterable".into(),
        "typing.Iterator" => "Iterator".into(),
        "typing.Sequence" => "Sequence".into(),
        "typing.Mapping" => "Mapping".into(),
        "NoneType" => "None".into(),
        other => other.into(),
    }
}

impl fmt::Display for PyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyType::Any => write!(f, "Any"),
            PyType::None => write!(f, "None"),
            PyType::Named { name, args } => {
                write!(f, "{name}")?;
                if !args.is_empty() {
                    write!(f, "[")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            PyType::Union(members) => {
                // Render Union[T, None] in its idiomatic Optional form.
                let non_none: Vec<&PyType> =
                    members.iter().filter(|m| **m != PyType::None).collect();
                if non_none.len() == members.len() - 1 && non_none.len() == 1 {
                    return write!(f, "Optional[{}]", non_none[0]);
                }
                write!(f, "Union[")?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, "]")
            }
            PyType::Callable { params, ret } => match params {
                Some(ps) => {
                    write!(f, "Callable[[")?;
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, "], {ret}]")
                }
                None => write!(f, "Callable[..., {ret}]"),
            },
        }
    }
}

impl FromStr for PyType {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = TypeParser {
            text: s,
            bytes: s.as_bytes(),
            pos: 0,
        };
        let ty = p.parse_union()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ParseTypeError::new(
                s,
                format!("trailing input at byte {}", p.pos),
            ));
        }
        Ok(ty)
    }
}

struct TypeParser<'s> {
    text: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl TypeParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, reason: impl Into<String>) -> ParseTypeError {
        ParseTypeError::new(self.text, reason)
    }

    /// `atom ('|' atom)*` — PEP 604 unions.
    fn parse_union(&mut self) -> Result<PyType, ParseTypeError> {
        let first = self.parse_atom()?;
        self.skip_ws();
        if self.peek() != Some(b'|') {
            return Ok(first);
        }
        let mut members = vec![first];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            members.push(self.parse_atom()?);
            self.skip_ws();
        }
        Ok(PyType::union(members))
    }

    fn parse_atom(&mut self) -> Result<PyType, ParseTypeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'[') => {
                // A bare bracket list only appears as Callable's first arg;
                // handled inside parse_args. Elsewhere it is an error.
                Err(self.err("unexpected `[`"))
            }
            Some(b'.') if self.text[self.pos..].starts_with("...") => {
                self.pos += 3;
                Ok(PyType::Any) // `...` in Tuple[X, ...]: treated as Any
            }
            Some(b'\'') | Some(b'"') => {
                let quote = self.peek().expect("peeked");
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some_and(|b| b != quote) {
                    self.pos += 1;
                }
                let inner: String = self.text[start..self.pos].to_string();
                if self.peek() != Some(quote) {
                    return Err(self.err("unterminated quoted annotation"));
                }
                self.pos += 1;
                inner.parse()
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
                {
                    self.pos += 1;
                }
                let name = &self.text[start..self.pos];
                self.finish_named(name)
            }
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("empty annotation")),
        }
    }

    fn finish_named(&mut self, raw_name: &str) -> Result<PyType, ParseTypeError> {
        self.skip_ws();
        let name = canonical_name(raw_name);
        let args = if self.peek() == Some(b'[') {
            self.pos += 1;
            let args = self.parse_args()?;
            self.skip_ws();
            if self.peek() != Some(b']') {
                return Err(self.err("missing closing `]`"));
            }
            self.pos += 1;
            args
        } else {
            Vec::new()
        };
        Ok(match name.as_str() {
            "Any" => PyType::Any,
            "None" => PyType::None,
            "Optional" => match args.len() {
                0 => PyType::optional(PyType::Any),
                1 => PyType::optional(args.into_iter().next().expect("len checked")),
                _ => return Err(self.err("Optional takes one argument")),
            },
            "Union" => PyType::union(args),
            "Callable" => match args.len() {
                0 => PyType::Callable {
                    params: None,
                    ret: Box::new(PyType::Any),
                },
                2 => {
                    let mut it = args.into_iter();
                    let params = it.next().expect("len checked");
                    let ret = it.next().expect("len checked");
                    let params = match params {
                        // parse_args wraps [A, B] as Tuple marker below.
                        PyType::Named { name, args } if name == "__paramlist__" => Some(args),
                        PyType::Any => None, // Callable[..., R]
                        single => Some(vec![single]),
                    };
                    PyType::Callable {
                        params,
                        ret: Box::new(ret),
                    }
                }
                _ => {
                    // Callable[A, B, R] (lenient): last is return type.
                    let mut args = args;
                    let ret = args.pop().unwrap_or(PyType::Any);
                    PyType::Callable {
                        params: Some(args),
                        ret: Box::new(ret),
                    }
                }
            },
            _ => PyType::Named { name, args },
        })
    }

    fn parse_args(&mut self) -> Result<Vec<PyType>, ParseTypeError> {
        let mut args = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                break;
            }
            if self.peek() == Some(b'[') {
                // Callable parameter list.
                self.pos += 1;
                let inner = self.parse_args()?;
                self.skip_ws();
                if self.peek() != Some(b']') {
                    return Err(self.err("missing `]` closing parameter list"));
                }
                self.pos += 1;
                args.push(PyType::Named {
                    name: "__paramlist__".into(),
                    args: inner,
                });
            } else {
                args.push(self.parse_union()?);
            }
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> PyType {
        s.parse().unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(t("int"), PyType::named("int"));
        assert_eq!(t("Any"), PyType::Any);
        assert_eq!(t("None"), PyType::None);
        assert_eq!(t("NoneType"), PyType::None);
    }

    #[test]
    fn parses_generics() {
        assert_eq!(
            t("Dict[str, List[int]]"),
            PyType::generic(
                "Dict",
                vec![
                    PyType::named("str"),
                    PyType::generic("List", vec![PyType::named("int")])
                ]
            )
        );
    }

    #[test]
    fn lowercase_builtins_canonicalise() {
        assert_eq!(t("list[int]"), t("List[int]"));
        assert_eq!(t("typing.Dict[str, int]"), t("Dict[str, int]"));
    }

    #[test]
    fn optional_normalises_to_union() {
        assert_eq!(
            t("Optional[int]"),
            PyType::union(vec![PyType::named("int"), PyType::None])
        );
        assert_eq!(t("Optional[int]"), t("Union[int, None]"));
        assert_eq!(t("Optional[int]"), t("int | None"));
    }

    #[test]
    fn unions_flatten_sort_dedup() {
        assert_eq!(t("Union[int, Union[str, int]]"), t("Union[str, int]"));
        assert_eq!(t("Union[int, int]"), PyType::named("int"));
        assert_eq!(t("Union[int, Any]"), PyType::Any);
    }

    #[test]
    fn parses_callable() {
        match t("Callable[[int, str], bool]") {
            PyType::Callable {
                params: Some(ps),
                ret,
            } => {
                assert_eq!(ps.len(), 2);
                assert_eq!(*ret, PyType::named("bool"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match t("Callable[..., int]") {
            PyType::Callable { params: None, ret } => assert_eq!(*ret, PyType::named("int")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_dotted_and_quoted() {
        assert_eq!(t("torch.Tensor"), PyType::named("torch.Tensor"));
        assert_eq!(t("'Foo'"), PyType::named("Foo"));
        assert_eq!(
            t("List['Node']"),
            PyType::generic("List", vec![PyType::named("Node")])
        );
    }

    #[test]
    fn tuple_ellipsis() {
        assert_eq!(
            t("Tuple[int, ...]"),
            PyType::generic("Tuple", vec![PyType::named("int"), PyType::Any])
        );
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "int",
            "List[int]",
            "Dict[str, List[int]]",
            "Optional[int]",
            "Union[bytes, int, str]",
            "Callable[[int], str]",
            "Tuple[bool, Tuple[Foo, Any]]",
            "torch.Tensor",
        ] {
            let ty = t(s);
            assert_eq!(ty, t(&ty.to_string()), "round trip failed for {s}");
        }
    }

    #[test]
    fn erasure() {
        assert_eq!(t("List[int]").erased(), PyType::named("List"));
        assert_eq!(t("Optional[int]").erased(), PyType::named("Union"));
        assert_eq!(
            t("Callable[[int], str]").erased(),
            PyType::named("Callable")
        );
        assert_eq!(t("int").erased(), PyType::named("int"));
    }

    #[test]
    fn depth_and_truncation() {
        assert_eq!(t("int").depth(), 0);
        assert_eq!(t("List[int]").depth(), 1);
        assert_eq!(t("List[List[List[int]]]").depth(), 3);
        // The paper's example: deep nesting truncates to Any at level 2.
        assert_eq!(
            t("List[List[List[int]]]").truncated(2),
            t("List[List[Any]]")
        );
        assert_eq!(t("List[int]").truncated(2), t("List[int]"));
    }

    #[test]
    fn match_criteria() {
        assert!(t("List[int]").matches_exactly(&t("list[int]")));
        assert!(!t("List[int]").matches_exactly(&t("List[str]")));
        assert!(t("List[int]").matches_up_to_parametric(&t("List[str]")));
        assert!(!t("List[int]").matches_up_to_parametric(&t("Set[int]")));
        assert!(t("Optional[int]").matches_up_to_parametric(&t("Union[str, None]")));
    }

    #[test]
    fn top_detection() {
        assert!(t("Any").is_top());
        assert!(t("object").is_top());
        assert!(!t("int").is_top());
    }

    #[test]
    fn walk_visits_components() {
        let ty = t("Dict[str, List[int]]");
        let names: Vec<&str> = ty.walk().iter().map(|c| c.base_name()).collect();
        assert_eq!(names, vec!["Dict", "str", "List", "int"]);
    }

    #[test]
    fn errors_on_garbage() {
        assert!("".parse::<PyType>().is_err());
        assert!("List[int".parse::<PyType>().is_err());
        assert!("123".parse::<PyType>().is_err());
        assert!("List[int]]".parse::<PyType>().is_err());
    }
}
