//! # typilus-types
//!
//! Python type-annotation representation for the Typilus reproduction:
//! parsing PEP 484 annotation text into structured [`PyType`] values, the
//! paper's type-parameter erasure `Er(·)` and depth truncation, and the
//! subtyping lattice (universal covariance) behind the *type neutrality*
//! evaluation criterion.
//!
//! ```
//! use typilus_types::{PyType, TypeHierarchy};
//!
//! # fn main() -> Result<(), typilus_types::ParseTypeError> {
//! let pred: PyType = "Sequence[int]".parse()?;
//! let truth: PyType = "List[int]".parse()?;
//! let lattice = TypeHierarchy::new();
//! assert!(lattice.is_neutral(&pred, &truth));
//! assert!(pred.matches_up_to_parametric(&"Sequence[str]".parse()?));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod hierarchy;
pub mod ty;

pub use hierarchy::{TypeHierarchy, LATTICE_MAX_DEPTH};
pub use ty::{canonical_name, ParseTypeError, PyType};
