//! The type hierarchy and the neutrality relation.
//!
//! Following the paper (Sec. 6.1), all types seen in a corpus are
//! preprocessed (components nested deeper than level 2 become `Any`) and
//! organised into a lattice ordered by subtyping, **assuming universal
//! covariance**. A prediction `τp` is *type neutral* with ground truth
//! `τg` iff `τg :< τp` and `τp ≠ ⊤`. The same subtype relation backs the
//! optional type checker in `typilus-check`.

use crate::ty::PyType;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Maximum parametric nesting the lattice distinguishes; deeper structure
/// is rewritten to `Any`, as in the paper.
pub const LATTICE_MAX_DEPTH: usize = 2;

/// A registry of nominal types and their base classes.
///
/// Builtins and the common `typing` protocols are pre-registered;
/// user-defined classes are added with [`TypeHierarchy::register_class`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeHierarchy {
    /// name -> direct bases. Ordered so a serialized hierarchy is
    /// bit-stable (the determinism contract's D1; see `typilus-lint`).
    bases: BTreeMap<String, Vec<String>>,
}

impl Default for TypeHierarchy {
    fn default() -> Self {
        TypeHierarchy::new()
    }
}

impl TypeHierarchy {
    /// Creates a hierarchy pre-populated with Python builtins, the numeric
    /// tower, common containers and their `typing` protocols, and the
    /// standard exception classes.
    pub fn new() -> Self {
        let mut h = TypeHierarchy {
            bases: BTreeMap::new(),
        };
        let edges: &[(&str, &[&str])] = &[
            ("object", &[]),
            // Numeric tower: Python's optional type checkers accept an int
            // where a float is expected (PEP 484).
            ("complex", &["object"]),
            ("float", &["complex"]),
            ("int", &["float"]),
            ("bool", &["int"]),
            // Text and binary.
            ("str", &["Sequence"]),
            ("bytes", &["Sequence"]),
            ("bytearray", &["Sequence"]),
            // Protocol chain.
            ("Iterable", &["object"]),
            ("Iterator", &["Iterable"]),
            ("Generator", &["Iterator"]),
            ("Collection", &["Iterable"]),
            ("Container", &["object"]),
            ("Sequence", &["Collection"]),
            ("MutableSequence", &["Sequence"]),
            ("Mapping", &["Collection"]),
            ("MutableMapping", &["Mapping"]),
            ("AbstractSet", &["Collection"]),
            ("MutableSet", &["AbstractSet"]),
            // Concrete containers.
            ("List", &["MutableSequence"]),
            ("Tuple", &["Sequence"]),
            ("Dict", &["MutableMapping"]),
            ("Set", &["MutableSet"]),
            ("FrozenSet", &["AbstractSet"]),
            ("range", &["Sequence"]),
            // Callables and misc.
            ("Callable", &["object"]),
            ("Type", &["object"]),
            ("slice", &["object"]),
            ("Awaitable", &["object"]),
            ("Coroutine", &["Awaitable"]),
            // Exceptions.
            ("BaseException", &["object"]),
            ("Exception", &["BaseException"]),
            ("ValueError", &["Exception"]),
            ("TypeError", &["Exception"]),
            ("KeyError", &["Exception"]),
            ("IndexError", &["Exception"]),
            ("AttributeError", &["Exception"]),
            ("RuntimeError", &["Exception"]),
            ("NotImplementedError", &["RuntimeError"]),
            ("StopIteration", &["Exception"]),
            ("OSError", &["Exception"]),
            ("IOError", &["OSError"]),
            ("FileNotFoundError", &["OSError"]),
            ("ArithmeticError", &["Exception"]),
            ("ZeroDivisionError", &["ArithmeticError"]),
            ("OverflowError", &["ArithmeticError"]),
        ];
        for (name, bases) in edges {
            h.bases.insert(
                name.to_string(),
                bases.iter().map(|s| s.to_string()).collect(),
            );
        }
        h
    }

    /// Registers a user-defined class with its direct base classes.
    /// Unregistered bases are implicitly rooted at `object`.
    pub fn register_class(&mut self, name: &str, bases: &[&str]) {
        let bases: Vec<String> = if bases.is_empty() {
            vec!["object".to_string()]
        } else {
            bases.iter().map(|s| s.to_string()).collect()
        };
        self.bases.entry(name.to_string()).or_insert(bases);
    }

    /// Whether a nominal name is known to the hierarchy.
    pub fn contains(&self, name: &str) -> bool {
        self.bases.contains_key(name)
    }

    /// All ancestors of a nominal name, including itself; unknown names
    /// have ancestors `{name, object}`.
    pub fn ancestors(&self, name: &str) -> HashSet<String> {
        let mut out = HashSet::new();
        let mut stack = vec![name.to_string()];
        while let Some(n) = stack.pop() {
            if !out.insert(n.clone()) {
                continue;
            }
            match self.bases.get(&n) {
                Some(bs) => stack.extend(bs.iter().cloned()),
                None => {
                    if n != "object" {
                        out.insert("object".to_string());
                    }
                }
            }
        }
        out
    }

    /// Nominal subtyping on base names: `sub :< sup`.
    pub fn is_nominal_subtype(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "object" {
            return true;
        }
        self.ancestors(sub).contains(sup)
    }

    /// Structural subtyping with universal covariance: `sub :< sup`.
    ///
    /// `Any` is compatible in both directions (gradual typing); `None`
    /// is a subtype of `None` and of any union containing it; unions are
    /// subtypes member-wise; generics are covariant in all arguments and
    /// a bare generic (`List`) behaves as `List[Any]`.
    pub fn is_subtype(&self, sub: &PyType, sup: &PyType) -> bool {
        match (sub, sup) {
            (PyType::Any, _) | (_, PyType::Any) => true,
            (PyType::None, PyType::None) => true,
            (PyType::None, PyType::Union(members)) => {
                members.iter().any(|m| self.is_subtype(&PyType::None, m))
            }
            (PyType::None, PyType::Named { name, .. }) => name == "object",
            (PyType::Union(subs), sup) => subs.iter().all(|m| self.is_subtype(m, sup)),
            (sub, PyType::Union(sups)) => sups.iter().any(|s| self.is_subtype(sub, s)),
            (PyType::Callable { .. }, PyType::Named { name, args }) => {
                args.is_empty() && self.is_nominal_subtype("Callable", name)
            }
            (PyType::Named { name, args }, PyType::Callable { .. }) => {
                name == "Callable" && args.is_empty()
            }
            (
                PyType::Callable {
                    params: p1,
                    ret: r1,
                },
                PyType::Callable {
                    params: p2,
                    ret: r2,
                },
            ) => {
                let params_ok = match (p1, p2) {
                    (_, None) | (None, _) => true,
                    (Some(a), Some(b)) => {
                        a.len() == b.len()
                            // Universal covariance, per the paper's
                            // simplification (sound variance would be
                            // contravariant here).
                            && a.iter().zip(b).all(|(x, y)| self.is_subtype(x, y))
                    }
                };
                params_ok && self.is_subtype(r1, r2)
            }
            (PyType::Named { name: n1, args: a1 }, PyType::Named { name: n2, args: a2 }) => {
                if !self.is_nominal_subtype(n1, n2) {
                    return false;
                }
                if a1.is_empty() || a2.is_empty() {
                    // Bare generic = generic over Any.
                    return true;
                }
                if n1 == n2 && a1.len() != a2.len() {
                    return false;
                }
                // Covariant in all arguments; if arities differ across
                // different bases (List[int] :< Iterable[int]) compare the
                // common prefix.
                a1.iter().zip(a2.iter()).all(|(x, y)| self.is_subtype(x, y))
            }
            (PyType::Named { .. }, PyType::None)
            | (PyType::Callable { .. }, PyType::None)
            | (PyType::None, PyType::Callable { .. }) => false,
        }
    }

    /// The paper's *type neutrality*: `τg :< τp ∧ τp ≠ ⊤` on the
    /// depth-truncated lattice.
    pub fn is_neutral(&self, prediction: &PyType, ground_truth: &PyType) -> bool {
        if prediction.is_top() {
            return false;
        }
        let p = prediction.truncated(LATTICE_MAX_DEPTH);
        let g = ground_truth.truncated(LATTICE_MAX_DEPTH);
        self.is_subtype(&g, &p)
    }

    /// The join (least common supertype name) of two nominal names —
    /// used by the checker to type conditional expressions. Falls back to
    /// `object`.
    pub fn join_names(&self, a: &str, b: &str) -> String {
        if a == b {
            return a.to_string();
        }
        let anc_a = self.ancestors(a);
        if anc_a.contains(b) {
            return b.to_string();
        }
        let anc_b = self.ancestors(b);
        if anc_b.contains(a) {
            return a.to_string();
        }
        // Walk a's ancestor chain in BFS order for the first shared one.
        let mut queue = std::collections::VecDeque::from([a.to_string()]);
        let mut seen = HashSet::new();
        while let Some(n) = queue.pop_front() {
            if !seen.insert(n.clone()) {
                continue;
            }
            if anc_b.contains(&n) {
                return n;
            }
            if let Some(bs) = self.bases.get(&n) {
                queue.extend(bs.iter().cloned());
            }
        }
        "object".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> PyType {
        s.parse().unwrap()
    }

    #[test]
    fn numeric_tower() {
        let h = TypeHierarchy::new();
        assert!(h.is_subtype(&t("bool"), &t("int")));
        assert!(h.is_subtype(&t("int"), &t("float")));
        assert!(h.is_subtype(&t("bool"), &t("complex")));
        assert!(!h.is_subtype(&t("float"), &t("int")));
    }

    #[test]
    fn container_protocols() {
        let h = TypeHierarchy::new();
        assert!(h.is_subtype(&t("List[int]"), &t("Sequence[int]")));
        assert!(h.is_subtype(&t("List[int]"), &t("Iterable[int]")));
        assert!(h.is_subtype(&t("Dict[str, int]"), &t("Mapping[str, int]")));
        assert!(!h.is_subtype(&t("Set[int]"), &t("Sequence[int]")));
    }

    #[test]
    fn universal_covariance() {
        let h = TypeHierarchy::new();
        assert!(h.is_subtype(&t("List[bool]"), &t("List[int]")));
        assert!(h.is_subtype(&t("Dict[str, bool]"), &t("Dict[str, float]")));
        assert!(!h.is_subtype(&t("List[str]"), &t("List[int]")));
    }

    #[test]
    fn bare_generics_behave_as_any() {
        let h = TypeHierarchy::new();
        assert!(h.is_subtype(&t("List"), &t("List[int]")));
        assert!(h.is_subtype(&t("List[int]"), &t("List")));
    }

    #[test]
    fn optional_and_union() {
        let h = TypeHierarchy::new();
        assert!(h.is_subtype(&t("int"), &t("Optional[int]")));
        assert!(h.is_subtype(&t("None"), &t("Optional[int]")));
        assert!(!h.is_subtype(&t("Optional[int]"), &t("int")));
        assert!(h.is_subtype(&t("Union[int, str]"), &t("Union[int, str, bytes]")));
        assert!(h.is_subtype(&t("Union[bool, int]"), &t("float")));
    }

    #[test]
    fn user_classes() {
        let mut h = TypeHierarchy::new();
        h.register_class("Animal", &[]);
        h.register_class("Dog", &["Animal"]);
        h.register_class("Puppy", &["Dog"]);
        assert!(h.is_subtype(&t("Puppy"), &t("Animal")));
        assert!(h.is_subtype(&t("List[Puppy]"), &t("Iterable[Animal]")));
        assert!(!h.is_subtype(&t("Animal"), &t("Dog")));
    }

    #[test]
    fn unknown_classes_are_object_rooted() {
        let h = TypeHierarchy::new();
        assert!(h.is_subtype(&t("mx.nd.NDArray"), &t("object")));
        assert!(!h.is_subtype(&t("mx.nd.NDArray"), &t("torch.Tensor")));
    }

    #[test]
    fn neutrality_matches_paper_definition() {
        let h = TypeHierarchy::new();
        // τg :< τp: supertype predictions are neutral...
        assert!(h.is_neutral(&t("Sequence[int]"), &t("List[int]")));
        assert!(h.is_neutral(&t("float"), &t("int")));
        // ...but ⊤ predictions are not.
        assert!(!h.is_neutral(&t("Any"), &t("int")));
        assert!(!h.is_neutral(&t("object"), &t("int")));
        // Subtype predictions are not neutral.
        assert!(!h.is_neutral(&t("int"), &t("float")));
        // Exact types are neutral.
        assert!(h.is_neutral(&t("List[int]"), &t("List[int]")));
    }

    #[test]
    fn neutrality_truncates_depth() {
        let h = TypeHierarchy::new();
        // After truncation both sides become List[List[Any]].
        assert!(h.is_neutral(&t("List[List[List[str]]]"), &t("List[List[List[int]]]")));
    }

    #[test]
    fn joins() {
        let mut h = TypeHierarchy::new();
        h.register_class("Dog", &["Animal"]);
        h.register_class("Cat", &["Animal"]);
        h.register_class("Animal", &[]);
        assert_eq!(h.join_names("Dog", "Cat"), "Animal");
        assert_eq!(h.join_names("bool", "int"), "int");
        assert_eq!(h.join_names("int", "str"), "object");
        assert_eq!(h.join_names("List", "Tuple"), "Sequence");
    }

    #[test]
    fn callable_subtyping() {
        let h = TypeHierarchy::new();
        assert!(h.is_subtype(&t("Callable[[int], bool]"), &t("Callable[..., int]")));
        assert!(h.is_subtype(&t("Callable[[int], str]"), &t("Callable")));
        assert!(!h.is_subtype(&t("Callable[[int], str]"), &t("Callable[[int], int]")));
    }
}
