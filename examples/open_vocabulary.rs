//! One-shot open-vocabulary adaptation (paper Sec. 4.2).
//!
//! Classification models can never predict a type outside their training
//! vocabulary. Typilus' type map can: embed a *single* example of a new
//! type, bind it, and the type becomes predictable immediately — no
//! retraining. This example walks through exactly that.
//!
//! ```sh
//! cargo run --release --example open_vocabulary
//! ```

use typilus::{train, PreparedCorpus, PyType, TypilusConfig};
use typilus_corpus::{generate, CorpusConfig};

fn main() {
    let corpus = generate(&CorpusConfig {
        files: 60,
        seed: 2,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 2);
    println!("training base system...");
    let mut system = train(
        &data,
        &TypilusConfig {
            epochs: 10,
            ..TypilusConfig::default()
        },
    );

    let novel: PyType = "warp.DriveCore".parse().expect("valid type");
    println!(
        "novel type: {novel} (training annotations: {})",
        system.train_count(&novel)
    );

    let query = "\
def ignite(drive_core):
    drive_core.engage()
    return drive_core
";
    let show = |label: &str, system: &typilus::TrainedSystem| {
        let preds = system.predict_source(query).expect("query parses");
        let p = preds
            .iter()
            .find(|p| p.name == "drive_core")
            .expect("symbol exists");
        println!("\n{label}: candidates for `drive_core`:");
        for c in p.candidates.iter().take(5) {
            println!("  {:<24} p={:.3}", c.ty.to_string(), c.probability);
        }
        p.candidates.iter().any(|c| c.ty == novel)
    };

    let before = show("BEFORE binding", &system);
    assert!(!before, "novel type cannot be predicted yet");

    // One example somewhere else in the codebase is enough.
    let example = "\
def shutdown(drive_core):
    drive_core.engage()
    return drive_core
";
    println!("\nbinding one example of {novel} from a different function...");
    let bound = system.bind_type_example(example, "drive_core", novel.clone());
    assert!(bound, "binding must succeed");
    println!("type map now holds {} markers", system.type_map.len());

    let after = show("AFTER binding", &system);
    assert!(after, "novel type should now appear among candidates");
    println!("\none-shot adaptation succeeded: {novel} is now predictable.");
}
