//! Quickstart: train a small Typilus system on a synthetic corpus and
//! predict types for a fresh, unannotated snippet.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use typilus::{train, PreparedCorpus, TypilusConfig};
use typilus_corpus::{generate, CorpusConfig};

fn main() {
    // 1. A corpus of annotated Python (stands in for the paper's 600
    //    GitHub repositories).
    println!("generating corpus...");
    let corpus = generate(&CorpusConfig {
        files: 60,
        seed: 1,
        ..CorpusConfig::default()
    });

    // 2. Parse, deduplicate, build program graphs, split 70-10-20.
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 1);
    println!(
        "prepared {} files ({} train)",
        data.files.len(),
        data.split.train.len()
    );

    // 3. Train the GNN with the Typilus loss and build the TypeSpace.
    println!("training...");
    let config = TypilusConfig {
        epochs: 10,
        ..TypilusConfig::default()
    };
    let system = train(&data, &config);
    for e in &system.epochs {
        println!(
            "  epoch {:2}: loss {:.4} ({:.1}s)",
            e.epoch, e.mean_loss, e.seconds
        );
    }
    println!(
        "type map: {} markers, {} distinct types",
        system.type_map.len(),
        system.type_map.distinct_types()
    );

    // 4. Predict types for code the system has never seen.
    let snippet = "\
def summarize(entries, sep):
    count = 0
    total = 0.5
    names = []
    for entry in entries:
        names.append(entry.upper())
        count += 1
    label = sep.join(names)
    is_empty = count == 0
    return label
";
    println!("\npredictions for a fresh snippet:\n{snippet}");
    let predictions = system.predict_source(snippet).expect("snippet parses");
    for p in &predictions {
        let top = p
            .top()
            .map(|t| format!("{} (p={:.2})", t.ty, t.probability))
            .unwrap_or_else(|| "<no prediction>".to_string());
        println!("  {:12} {:9?} -> {}", p.name, p.kind, top);
    }
}
