//! A batch "editor assistant": ranked, checker-verified type suggestions
//! for the unannotated symbols of a project — the workflow the paper
//! motivates (helping developers move toward fully annotated code one
//! accepted suggestion at a time), built on [`typilus::SuggestOptions`].
//!
//! ```sh
//! cargo run --release --example suggest
//! ```

use typilus::{train, PreparedCorpus, SuggestOptions, TypilusConfig};
use typilus_corpus::{generate, CorpusConfig};

fn main() {
    let corpus = generate(&CorpusConfig {
        files: 60,
        seed: 3,
        ..CorpusConfig::default()
    });
    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 3);
    println!("training on {} files...", data.split.train.len());
    let system = train(
        &data,
        &TypilusConfig {
            epochs: 10,
            ..TypilusConfig::default()
        },
    );

    // The paper's Fig. 1 (right): TypeSpace prediction + type-checker
    // filtering, via the library's suggestion API. When the top candidate
    // fails the checker, lower-ranked candidates get their chance —
    // `rejected_above` reports how many were filtered first.
    let options = SuggestOptions {
        min_confidence: 0.5,
        ..SuggestOptions::default()
    };
    let mut all = Vec::new();
    for &idx in &data.split.test {
        let file_name = data.files[idx].name.clone();
        for s in system.suggest_file(&data, idx, &options) {
            all.push((file_name.clone(), s));
        }
    }
    all.sort_by(|a, b| b.1.confidence.total_cmp(&a.1.confidence));

    let filtered: usize = all.iter().map(|(_, s)| s.rejected_above).sum();
    println!(
        "\n{} verified suggestions ({} higher-ranked candidates rejected by the checker):",
        all.len(),
        filtered
    );
    println!(
        "{:<28} {:<18} {:<11} {:<22} conf  note",
        "file", "symbol", "kind", "suggested type"
    );
    for (file, s) in all.iter().take(25) {
        let note = if s.rejected_above > 0 {
            format!("(checker rejected {} above)", s.rejected_above)
        } else {
            String::new()
        };
        println!(
            "{file:<28} {:<18} {:<11} {:<22} {:.2}  {note}",
            s.name,
            format!("{:?}", s.kind),
            s.ty.to_string(),
            s.confidence
        );
    }
}
