//! The paper's Sec. 7 use case: finding wrong human annotations.
//!
//! Typilus found `float` annotations on integer tensor dimensions in
//! PyTorch/fairseq and a mis-annotated `Dict` in allenai/allennlp; both
//! fixes were merged. This example recreates the workflow: a corpus
//! with *planted* annotation errors, a trained system, and an audit that
//! reports confident disagreements that also survive the type checker.
//!
//! ```sh
//! cargo run --release --example annotation_audit
//! ```

use typilus::{train, CheckerProfile, PreparedCorpus, TypilusConfig};
use typilus_check::TypeChecker;
use typilus_corpus::{generate, CorpusConfig};

fn main() {
    // Corpus with 10% of annotations deliberately corrupted
    // (int↔float, str↔bytes, T↔Optional[T] — the confusions the paper
    // observed in the wild).
    let corpus = generate(&CorpusConfig {
        files: 60,
        error_rate: 0.10,
        seed: 7,
        ..CorpusConfig::default()
    });
    let planted: usize = corpus.files.iter().map(|f| f.injected_errors.len()).sum();
    println!("corpus has {planted} planted annotation errors");

    let data = PreparedCorpus::from_corpus(&corpus, &typilus::GraphConfig::default(), 7);
    println!("training on {} files...", data.split.train.len());
    let system = train(
        &data,
        &TypilusConfig {
            epochs: 10,
            ..TypilusConfig::default()
        },
    );

    // Audit every file: report symbols where the model confidently
    // disagrees with the existing annotation AND the model's type
    // type-checks in place of the original.
    let checker = TypeChecker::new(CheckerProfile::Mypy);
    let confidence_floor = 0.8;
    let mut reports = Vec::new();
    for (idx, file) in data.files.iter().enumerate() {
        for p in system.predict_file(&data, idx) {
            let (Some(original), Some(top)) = (&p.ground_truth, p.top()) else {
                continue;
            };
            if top.ty == *original || top.probability < confidence_floor {
                continue;
            }
            let issues =
                checker.check_with_override(&file.parsed, &file.table, p.symbol, top.ty.clone());
            if issues.is_empty() {
                reports.push((
                    file.name.clone(),
                    p.name.clone(),
                    original.clone(),
                    top.ty.clone(),
                    top.probability,
                ));
            }
        }
    }

    reports.sort_by(|a, b| b.4.total_cmp(&a.4));
    println!("\naudit findings (confident, type-checkable disagreements):");
    println!(
        "{:<28} {:<16} {:<18} {:<18} conf",
        "file", "symbol", "annotated", "predicted"
    );
    for (file, symbol, original, predicted, conf) in reports.iter().take(20) {
        println!("{file:<28} {symbol:<16} {original:<18} {predicted:<18} {conf:.2}");
    }

    // How many of the planted errors did the audit surface?
    let mut caught = 0usize;
    for gf in corpus.files.iter() {
        for err in &gf.injected_errors {
            if reports
                .iter()
                .any(|(f, s, _, _, _)| *f == err.file && *s == err.symbol_name)
            {
                caught += 1;
            }
        }
    }
    println!(
        "\nplanted errors: {planted}; surfaced by the audit: {caught}; reports: {}",
        reports.len()
    );
}
